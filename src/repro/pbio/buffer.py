"""Low-level wire buffer primitives.

All multi-byte quantities are little-endian on the wire (real PBIO records
native byte order in the meta-data and converts on the receiver only when
needed; we fix the wire order and note the receiver-side conversion cost is
paid symmetrically by both compared systems).

Wire message layout::

    +---------------------------- header (20 bytes) -----------------------------+
    | magic u32 | version u8 | flags u8 | reserved u16 | format_id u64 | len u32 |
    +-----------------------------------------------------------------------------+
    | payload: fields in declared order                                           |
    +-----------------------------------------------------------------------------+

* scalars: fixed width per the field declaration,
* strings: u32 byte length + UTF-8 bytes,
* fixed arrays: elements inline,
* variable arrays: elements inline; the element count is the value of the
  (earlier) count field, so no extra length prefix is spent.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.errors import DecodeError, EncodeError
from repro.obs.tracectx import (
    TRACE_BLOCK_SIZE,
    TraceContext,
    decode_block,
    encode_block,
)

MAGIC = 0x5042494F  # "PBIO"
WIRE_VERSION = 1
HEADER = struct.Struct("<IBBHQI")
HEADER_SIZE = HEADER.size  # 20 bytes: the paper's "< 30 bytes" envelope

#: Header flag bit: payload scalars are big-endian.  Real PBIO writes in
#: the sender's *native* order and lets the receiver convert only when
#: orders differ ("receiver makes right"); the flag carries that decision.
FLAG_BIG_ENDIAN = 0x01

#: Header flag bit: a 26-byte distributed trace-context block
#: (:mod:`repro.obs.tracectx`) sits between the header and the payload.
#: Messages published with tracing disabled never set this flag and
#: carry zero extra bytes — the wire is byte-identical to an untraced
#: build, so the paper's Figure 8-10 numbers are untouched.
FLAG_TRACE = 0x02

#: Byte offset of the flags field inside the packed header.
_FLAGS_OFFSET = 5

#: struct prefix characters per byte-order name.
ORDER_PREFIX = {"little": "<", "big": ">"}


@dataclass(frozen=True)
class MessageHeader:
    """Decoded wire header (plus the optional trace-context block).

    ``body_offset`` is the absolute index where the payload starts —
    ``offset + HEADER_SIZE``, plus :data:`~repro.obs.tracectx.TRACE_BLOCK_SIZE`
    when the message carries a trace block.  Every payload-slicing site
    must use it instead of assuming ``HEADER_SIZE``."""

    format_id: int
    payload_length: int
    flags: int = 0
    version: int = WIRE_VERSION
    trace: Optional[TraceContext] = None
    body_offset: int = HEADER_SIZE


def pack_header(format_id: int, payload_length: int, flags: int = 0) -> bytes:
    return HEADER.pack(MAGIC, WIRE_VERSION, flags, 0, format_id, payload_length)


def unpack_header(data: bytes, offset: int = 0) -> MessageHeader:
    if len(data) - offset < HEADER_SIZE:
        raise DecodeError(
            f"buffer too short for header: need {HEADER_SIZE} bytes, "
            f"have {len(data) - offset}"
        )
    try:
        magic, version, flags, _reserved, format_id, length = HEADER.unpack_from(
            data, offset
        )
    except struct.error as exc:
        raise DecodeError(f"unreadable header: {exc}") from None
    if magic != MAGIC:
        raise DecodeError(f"bad magic {magic:#x} (expected {MAGIC:#x})")
    if version != WIRE_VERSION:
        raise DecodeError(f"unsupported wire version {version}")
    trace: Optional[TraceContext] = None
    body = offset + HEADER_SIZE
    if flags & FLAG_TRACE:
        trace = decode_block(data, body)  # raises DecodeError when malformed
        body += TRACE_BLOCK_SIZE
    if len(data) - body < length:
        raise DecodeError(
            f"truncated payload: header declares {length} bytes, "
            f"have {len(data) - body}"
        )
    return MessageHeader(
        format_id=format_id, payload_length=length, flags=flags,
        trace=trace, body_offset=body,
    )


# ---------------------------------------------------------------------------
# Trace-context block attachment (the morphing layer's send path calls
# these; encoders themselves never emit the block, keeping every encode
# byte-identical whether tracing exists or not)
# ---------------------------------------------------------------------------


def attach_trace(wire: bytes, ctx: TraceContext) -> bytes:
    """Return *wire* with *ctx* spliced in as its trace-context block
    (header flag set, 26 bytes inserted after the header)."""
    if len(wire) < HEADER_SIZE:
        raise EncodeError("cannot attach a trace block to a truncated message")
    flags = wire[_FLAGS_OFFSET]
    if flags & FLAG_TRACE:
        raise EncodeError("wire message already carries a trace block")
    out = bytearray(wire)
    out[_FLAGS_OFFSET] = flags | FLAG_TRACE
    out[HEADER_SIZE:HEADER_SIZE] = encode_block(ctx)
    return bytes(out)


def strip_trace(wire: bytes) -> Tuple[bytes, Optional[TraceContext]]:
    """Split a wire message into its traceless form and the carried
    context (``(wire, None)`` when no block is present)."""
    if len(wire) < HEADER_SIZE or not wire[_FLAGS_OFFSET] & FLAG_TRACE:
        return wire, None
    ctx = decode_block(wire, HEADER_SIZE)
    out = bytearray(wire)
    out[_FLAGS_OFFSET] &= ~FLAG_TRACE & 0xFF
    del out[HEADER_SIZE : HEADER_SIZE + TRACE_BLOCK_SIZE]
    return bytes(out), ctx


def peek_trace(data: bytes, offset: int = 0) -> Optional[TraceContext]:
    """Best-effort trace-context sniff: the carried context when *data*
    holds a well-formed traced PBIO message at *offset*, else None.
    Never raises — the transport layers call this on arbitrary frames."""
    if len(data) - offset < HEADER_SIZE + TRACE_BLOCK_SIZE:
        return None
    if not data[offset + _FLAGS_OFFSET] & FLAG_TRACE:
        return None
    try:
        magic, version = struct.unpack_from("<IB", data, offset)
    except struct.error:
        return None
    if magic != MAGIC or version != WIRE_VERSION:
        return None
    try:
        return decode_block(data, offset + HEADER_SIZE)
    except DecodeError:
        return None


class WireWriter:
    """Append-only binary writer backed by a pre-sized bytearray.

    *order* is the struct prefix for scalar packing (``"<"`` little,
    ``">"`` big — the writer's declared native order).

    Scalars are packed **in place** with :meth:`struct.Struct.pack_into`
    against a capacity-doubling buffer, so the generic encoder's hot loop
    allocates no temporary ``bytes`` per ``write_struct`` call."""

    __slots__ = ("_buffer", "_size", "order")

    _INITIAL_CAPACITY = 256

    def __init__(self, order: str = "<") -> None:
        self._buffer = bytearray(self._INITIAL_CAPACITY)
        self._size = 0
        self.order = order

    def __len__(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        return bytes(memoryview(self._buffer)[: self._size])

    def _reserve(self, count: int) -> None:
        needed = self._size + count
        capacity = len(self._buffer)
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            self._buffer.extend(bytes(capacity - len(self._buffer)))

    def write_struct(self, packer: struct.Struct, *values: Any) -> None:
        self._reserve(packer.size)
        try:
            packer.pack_into(self._buffer, self._size, *values)
        except struct.error as exc:
            raise EncodeError(f"cannot pack {values!r}: {exc}") from None
        self._size += packer.size

    def write_scalar(self, code: str, value: Any) -> None:
        # struct module-level calls cache the compiled format internally
        fmt = self.order + code
        size = struct.calcsize(fmt)
        self._reserve(size)
        try:
            struct.pack_into(fmt, self._buffer, self._size, value)
        except struct.error as exc:
            raise EncodeError(f"cannot pack {value!r} as {code!r}: {exc}") from None
        self._size += size

    def write_string(self, value: str) -> None:
        encoded = value.encode("utf-8")
        length = len(encoded)
        self._reserve(4 + length)
        struct.pack_into(self.order + "I", self._buffer, self._size, length)
        self._buffer[self._size + 4 : self._size + 4 + length] = encoded
        self._size += 4 + length

    def write_bytes(self, data: bytes) -> None:
        count = len(data)
        self._reserve(count)
        self._buffer[self._size : self._size + count] = data
        self._size += count


class WireReader:
    """Sequential binary reader with bounds checking."""

    __slots__ = ("_data", "_view", "_offset", "_end", "order")

    def __init__(self, data: bytes, offset: int = 0, end: int = -1,
                 order: str = "<") -> None:
        self._data = data
        # strings decode straight from a memoryview slice: one copy
        # fewer than slicing the bytes object first
        self._view = memoryview(data)
        self._offset = offset
        self._end = len(data) if end < 0 else end
        self.order = order

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def remaining(self) -> int:
        return self._end - self._offset

    def _require(self, count: int) -> None:
        if self._end - self._offset < count:
            raise DecodeError(
                f"truncated buffer: need {count} bytes at offset "
                f"{self._offset}, have {self._end - self._offset}"
            )

    def read_struct(self, packer: struct.Struct) -> Tuple[Any, ...]:
        self._require(packer.size)
        try:
            values = packer.unpack_from(self._data, self._offset)
        except struct.error as exc:
            raise DecodeError(f"unreadable bytes at offset {self._offset}: {exc}") from None
        self._offset += packer.size
        return values

    def read_scalar(self, code: str, size: int) -> Any:
        self._require(size)
        try:
            (value,) = struct.unpack_from(self.order + code, self._data, self._offset)
        except struct.error as exc:
            raise DecodeError(f"unreadable scalar at offset {self._offset}: {exc}") from None
        self._offset += size
        return value

    def read_string(self) -> str:
        self._require(4)
        try:
            (length,) = struct.unpack_from(self.order + "I", self._data, self._offset)
        except struct.error as exc:
            raise DecodeError(f"unreadable string length at offset {self._offset}: {exc}") from None
        self._offset += 4
        self._require(length)
        raw = self._view[self._offset : self._offset + length]
        self._offset += length
        try:
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 in string field: {exc}") from None

    def read_bytes(self, count: int) -> bytes:
        self._require(count)
        raw = self._data[self._offset : self._offset + count]
        self._offset += count
        return bytes(raw)
