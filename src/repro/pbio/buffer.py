"""Low-level wire buffer primitives.

All multi-byte quantities are little-endian on the wire (real PBIO records
native byte order in the meta-data and converts on the receiver only when
needed; we fix the wire order and note the receiver-side conversion cost is
paid symmetrically by both compared systems).

Wire message layout::

    +---------------------------- header (20 bytes) -----------------------------+
    | magic u32 | version u8 | flags u8 | reserved u16 | format_id u64 | len u32 |
    +-----------------------------------------------------------------------------+
    | payload: fields in declared order                                           |
    +-----------------------------------------------------------------------------+

* scalars: fixed width per the field declaration,
* strings: u32 byte length + UTF-8 bytes,
* fixed arrays: elements inline,
* variable arrays: elements inline; the element count is the value of the
  (earlier) count field, so no extra length prefix is spent.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Tuple

from repro.errors import DecodeError, EncodeError

MAGIC = 0x5042494F  # "PBIO"
WIRE_VERSION = 1
HEADER = struct.Struct("<IBBHQI")
HEADER_SIZE = HEADER.size  # 20 bytes: the paper's "< 30 bytes" envelope

#: Header flag bit: payload scalars are big-endian.  Real PBIO writes in
#: the sender's *native* order and lets the receiver convert only when
#: orders differ ("receiver makes right"); the flag carries that decision.
FLAG_BIG_ENDIAN = 0x01

#: struct prefix characters per byte-order name.
ORDER_PREFIX = {"little": "<", "big": ">"}


@dataclass(frozen=True)
class MessageHeader:
    """Decoded wire header."""

    format_id: int
    payload_length: int
    flags: int = 0
    version: int = WIRE_VERSION


def pack_header(format_id: int, payload_length: int, flags: int = 0) -> bytes:
    return HEADER.pack(MAGIC, WIRE_VERSION, flags, 0, format_id, payload_length)


def unpack_header(data: bytes, offset: int = 0) -> MessageHeader:
    if len(data) - offset < HEADER_SIZE:
        raise DecodeError(
            f"buffer too short for header: need {HEADER_SIZE} bytes, "
            f"have {len(data) - offset}"
        )
    try:
        magic, version, flags, _reserved, format_id, length = HEADER.unpack_from(
            data, offset
        )
    except struct.error as exc:
        raise DecodeError(f"unreadable header: {exc}") from None
    if magic != MAGIC:
        raise DecodeError(f"bad magic {magic:#x} (expected {MAGIC:#x})")
    if version != WIRE_VERSION:
        raise DecodeError(f"unsupported wire version {version}")
    if len(data) - offset - HEADER_SIZE < length:
        raise DecodeError(
            f"truncated payload: header declares {length} bytes, "
            f"have {len(data) - offset - HEADER_SIZE}"
        )
    return MessageHeader(format_id=format_id, payload_length=length, flags=flags)


class WireWriter:
    """Append-only binary writer backed by a pre-sized bytearray.

    *order* is the struct prefix for scalar packing (``"<"`` little,
    ``">"`` big — the writer's declared native order).

    Scalars are packed **in place** with :meth:`struct.Struct.pack_into`
    against a capacity-doubling buffer, so the generic encoder's hot loop
    allocates no temporary ``bytes`` per ``write_struct`` call."""

    __slots__ = ("_buffer", "_size", "order")

    _INITIAL_CAPACITY = 256

    def __init__(self, order: str = "<") -> None:
        self._buffer = bytearray(self._INITIAL_CAPACITY)
        self._size = 0
        self.order = order

    def __len__(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        return bytes(memoryview(self._buffer)[: self._size])

    def _reserve(self, count: int) -> None:
        needed = self._size + count
        capacity = len(self._buffer)
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            self._buffer.extend(bytes(capacity - len(self._buffer)))

    def write_struct(self, packer: struct.Struct, *values: Any) -> None:
        self._reserve(packer.size)
        try:
            packer.pack_into(self._buffer, self._size, *values)
        except struct.error as exc:
            raise EncodeError(f"cannot pack {values!r}: {exc}") from None
        self._size += packer.size

    def write_scalar(self, code: str, value: Any) -> None:
        # struct module-level calls cache the compiled format internally
        fmt = self.order + code
        size = struct.calcsize(fmt)
        self._reserve(size)
        try:
            struct.pack_into(fmt, self._buffer, self._size, value)
        except struct.error as exc:
            raise EncodeError(f"cannot pack {value!r} as {code!r}: {exc}") from None
        self._size += size

    def write_string(self, value: str) -> None:
        encoded = value.encode("utf-8")
        length = len(encoded)
        self._reserve(4 + length)
        struct.pack_into(self.order + "I", self._buffer, self._size, length)
        self._buffer[self._size + 4 : self._size + 4 + length] = encoded
        self._size += 4 + length

    def write_bytes(self, data: bytes) -> None:
        count = len(data)
        self._reserve(count)
        self._buffer[self._size : self._size + count] = data
        self._size += count


class WireReader:
    """Sequential binary reader with bounds checking."""

    __slots__ = ("_data", "_view", "_offset", "_end", "order")

    def __init__(self, data: bytes, offset: int = 0, end: int = -1,
                 order: str = "<") -> None:
        self._data = data
        # strings decode straight from a memoryview slice: one copy
        # fewer than slicing the bytes object first
        self._view = memoryview(data)
        self._offset = offset
        self._end = len(data) if end < 0 else end
        self.order = order

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def remaining(self) -> int:
        return self._end - self._offset

    def _require(self, count: int) -> None:
        if self._end - self._offset < count:
            raise DecodeError(
                f"truncated buffer: need {count} bytes at offset "
                f"{self._offset}, have {self._end - self._offset}"
            )

    def read_struct(self, packer: struct.Struct) -> Tuple[Any, ...]:
        self._require(packer.size)
        try:
            values = packer.unpack_from(self._data, self._offset)
        except struct.error as exc:
            raise DecodeError(f"unreadable bytes at offset {self._offset}: {exc}") from None
        self._offset += packer.size
        return values

    def read_scalar(self, code: str, size: int) -> Any:
        self._require(size)
        try:
            (value,) = struct.unpack_from(self.order + code, self._data, self._offset)
        except struct.error as exc:
            raise DecodeError(f"unreadable scalar at offset {self._offset}: {exc}") from None
        self._offset += size
        return value

    def read_string(self) -> str:
        self._require(4)
        try:
            (length,) = struct.unpack_from(self.order + "I", self._data, self._offset)
        except struct.error as exc:
            raise DecodeError(f"unreadable string length at offset {self._offset}: {exc}") from None
        self._offset += 4
        self._require(length)
        raw = self._view[self._offset : self._offset + length]
        self._offset += length
        try:
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 in string field: {exc}") from None

    def read_bytes(self, count: int) -> bytes:
        self._require(count)
        raw = self._data[self._offset : self._offset + count]
        self._offset += count
        return bytes(raw)
