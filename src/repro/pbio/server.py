"""The format server as a fallible network service.

:mod:`repro.pbio.service` models the out-of-band meta-data channel as an
always-up JSON service on raw nodes.  This module is its
production-shaped sibling, built for the failure modes real deployments
hit: requests ride a :class:`~repro.net.reliable.ReliableEndpoint`
(retries, circuit breaking), the server can run with a **standby
replica** it mirrors registrations to, and the client is a
:class:`CachingFormatResolver` that

* serves every previously seen format from its **local cache** without
  touching the network,
* fails over to the next server in its list when a request times out,
  is rejected by an open circuit, or exhausts its retries,
* enters **degraded mode** when every server is unreachable — cached
  formats keep resolving, unknown ids report a miss instead of hanging,
  and registrations are queued for replay when a server answers again.

The wire protocol stays JSON (deliberately not PBIO: the meta-data
channel must not depend on the meta-data it serves).  Counters surface
through ``repro.obs`` as ``pbio.format_server.*`` / ``pbio.resolver.*``.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import TransportError
from repro.net.reliable import ReliableEndpoint, SendTicket
from repro.net.transport import Network
from repro.obs import OBS
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec
from repro.pbio.serialization import (
    format_from_dict,
    format_to_dict,
    transform_from_dict,
    transform_to_dict,
)

ResolveCallback = Callable[[Optional[IOFormat]], None]


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8")


def _decode(data: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed format-server message: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise TransportError("format-server message missing 'op'")
    return message


class FormatServer:
    """A format server process on the reliable transport.

    Operations (JSON, request/reply correlated by ``id``):

    * ``register`` — store formats + transforms; replied with
      ``register_ok``; mirrored to the standby *peer* when configured,
    * ``lookup`` — fetch a format by id, shipped together with its whole
      transform closure so the client can morph without extra round
      trips,
    * ``sync`` — replica mirror traffic (never re-forwarded, so two
      servers may peer with each other without loops).
    """

    def __init__(
        self,
        network: Network,
        address: str = "format-server",
        registry: Optional[FormatRegistry] = None,
        peer: Optional[str] = None,
        seed: int = 0,
        **endpoint_options: Any,
    ) -> None:
        self.endpoint = ReliableEndpoint(
            network, address, seed=seed, **endpoint_options
        )
        self.endpoint.set_handler(self._on_message)
        self.registry = registry if registry is not None else FormatRegistry()
        self.peer = peer
        self.stats = {"registers": 0, "lookups": 0, "misses": 0, "syncs": 0}

    @property
    def address(self) -> str:
        return self.endpoint.address

    @property
    def node(self):
        return self.endpoint.node

    def close(self) -> None:
        """Crash the server (its node drops all incoming traffic)."""
        self.endpoint.node.close()

    def reopen(self) -> None:
        """Bring a crashed server back up."""
        self.endpoint.node.reopen()

    # ------------------------------------------------------------------

    def _on_message(self, source: str, data: bytes) -> None:
        message = _decode(data)
        op = message["op"]
        if op == "register":
            self._ingest(message)
            self.stats["registers"] += 1
            self._count("registers")
            self.endpoint.send(
                source,
                _encode({"op": "register_ok", "id": message.get("id")}),
            )
            if self.peer is not None:
                mirror = dict(message)
                mirror["op"] = "sync"
                mirror.pop("id", None)
                self.endpoint.send(self.peer, _encode(mirror))
        elif op == "sync":
            self._ingest(message)
            self.stats["syncs"] += 1
        elif op == "lookup":
            self._handle_lookup(source, message)
        # unknown ops are dropped: the server must tolerate newer clients

    def _ingest(self, message: Dict[str, Any]) -> None:
        for fmt_dict in message.get("formats", ()):
            self.registry.register(format_from_dict(fmt_dict))
        for spec_dict in message.get("transforms", ()):
            self.registry.register_transform(transform_from_dict(spec_dict))

    def _handle_lookup(self, source: str, message: Dict[str, Any]) -> None:
        self.stats["lookups"] += 1
        self._count("lookups")
        format_id = int(message["format_id"])
        fmt = self.registry.lookup_id(format_id)
        reply: Dict[str, Any] = {
            "op": "lookup_reply",
            "id": message.get("id"),
            "format_id": str(format_id),
            "found": fmt is not None,
        }
        if fmt is None:
            self.stats["misses"] += 1
            self._count("misses")
        else:
            chains = self.registry.transform_closure(fmt)
            specs = {id(s): s for chain in chains for s in chain}
            reply["format"] = format_to_dict(fmt)
            reply["transforms"] = [
                transform_to_dict(s) for s in specs.values()
            ]
        self.endpoint.send(source, _encode(reply))

    def _count(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter(
                f"pbio.format_server.{name}", server=self.address
            ).inc()


class _Request:
    """One in-flight client request, across failover attempts."""

    __slots__ = ("message", "on_reply", "on_fail", "servers_left", "timer",
                 "done")

    def __init__(
        self,
        message: Dict[str, Any],
        on_reply: Callable[[Dict[str, Any]], None],
        on_fail: Callable[[], None],
        servers_left: List[str],
    ) -> None:
        self.message = message
        self.on_reply = on_reply
        self.on_fail = on_fail
        self.servers_left = servers_left
        self.timer = None
        self.done = False


class CachingFormatResolver:
    """A client of the format-server fleet with a local format cache.

    The cache is a full :class:`FormatRegistry` (formats *and*
    transforms), so a :class:`~repro.morph.receiver.MorphReceiver` can
    run directly against it — resolving a format once makes every
    subsequent message of that format a pure local operation.

    Parameters
    ----------
    servers:
        Server addresses in preference order; the resolver fails over
        down the list and sticks with whichever answered last.
    request_timeout:
        Virtual seconds to wait for a reply before trying the next
        server (on top of the reliable endpoint's own retry budget,
        which covers lost frames; this covers lost *servers*).
    """

    def __init__(
        self,
        network: Network,
        address: str,
        servers: Sequence[str] = ("format-server",),
        registry: Optional[FormatRegistry] = None,
        request_timeout: float = 2.0,
        seed: int = 0,
        **endpoint_options: Any,
    ) -> None:
        if not servers:
            raise TransportError("resolver needs at least one server address")
        self.network = network
        self.endpoint = ReliableEndpoint(
            network, address, seed=seed, **endpoint_options
        )
        self.endpoint.set_handler(self._on_message)
        self.registry = registry if registry is not None else FormatRegistry()
        self.servers = list(servers)
        self.request_timeout = request_timeout
        #: index into ``servers`` of the server currently trusted
        self.active_server = 0
        self.degraded = False
        self._ids = itertools.count(1)
        self._requests: Dict[int, _Request] = {}
        #: lookup callbacks coalesced per format id
        self._inflight: Dict[int, List[ResolveCallback]] = {}
        #: registration payloads queued while degraded
        self._pending_registrations: List[Dict[str, Any]] = []
        #: non-meta traffic handler (a receiver, an application...)
        self.data_handler: Optional[Callable[[str, bytes], None]] = None
        self.stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "lookups_sent": 0,
            "failovers": 0,
            "degraded_misses": 0,
            "queued_registrations": 0,
            "replayed_registrations": 0,
        }

    @property
    def address(self) -> str:
        return self.endpoint.address

    @property
    def cache(self) -> FormatRegistry:
        """Alias for :attr:`registry` — the local replica."""
        return self.registry

    @property
    def pending_registrations(self) -> int:
        return len(self._pending_registrations)

    # ------------------------------------------------------------------
    # Registration (writer side)
    # ------------------------------------------------------------------

    def register(
        self,
        *formats: IOFormat,
        transforms: Sequence[TransformSpec] = (),
    ) -> None:
        """Register formats/transforms locally (always succeeds — the
        cache is authoritative for this process) and push them to the
        format server, queueing the upload when degraded."""
        for fmt in formats:
            self.registry.register(fmt)
        for spec in transforms:
            self.registry.register_transform(spec)
        payload = {
            "op": "register",
            "formats": [format_to_dict(f) for f in formats],
            "transforms": [transform_to_dict(s) for s in transforms],
        }
        if not formats and not transforms:
            return
        self._send_registration(payload)

    def publish(self) -> None:
        """Upload the entire local registry — what a writer does at
        startup (or after recovering from degraded mode)."""
        formats = self.registry.formats()
        transforms = [
            spec
            for fmt in formats
            for spec in self.registry.transforms_from(fmt)
        ]
        self._send_registration({
            "op": "register",
            "formats": [format_to_dict(f) for f in formats],
            "transforms": [transform_to_dict(s) for s in transforms],
        })

    def _send_registration(self, payload: Dict[str, Any]) -> None:
        if self.degraded:
            self._queue_registration(payload)
            return
        self._request(
            payload,
            on_reply=lambda _reply: None,
            on_fail=lambda: self._queue_registration(payload),
        )

    def _queue_registration(self, payload: Dict[str, Any]) -> None:
        self._pending_registrations.append(payload)
        self.stats["queued_registrations"] += 1
        self._count("queued_registrations")
        self._enter_degraded()

    # ------------------------------------------------------------------
    # Resolution (reader side)
    # ------------------------------------------------------------------

    def resolve(
        self, format_id: int, on_done: Optional[ResolveCallback] = None
    ) -> Optional[IOFormat]:
        """Resolve *format_id* to a format.

        Cache hits return the format immediately (and invoke *on_done*
        synchronously).  Misses return ``None`` and fetch it from the
        server fleet; *on_done* fires with the format — or ``None`` when
        every server is unreachable or none knows the id — once the
        outcome is known.  Concurrent misses for one id are coalesced
        into a single request."""
        fmt = self.registry.lookup_id(format_id)
        if fmt is not None:
            self.stats["cache_hits"] += 1
            self._count("cache_hits")
            if on_done is not None:
                on_done(fmt)
            return fmt
        self.stats["cache_misses"] += 1
        self._count("cache_misses")
        if self.degraded:
            # Degraded mode serves only the cache; report the miss
            # instead of hanging on a fleet we know is down.
            self.stats["degraded_misses"] += 1
            self._count("degraded_misses")
            if on_done is not None:
                on_done(None)
            return None
        callbacks = self._inflight.get(format_id)
        if callbacks is not None:
            # A fetch for this id is already in flight — coalesce.
            if on_done is not None:
                callbacks.append(on_done)
            return None
        self._lookup(format_id, on_done)
        return None

    def refresh(
        self, format_id: int, on_done: Optional[ResolveCallback] = None
    ) -> None:
        """Force a server lookup for *format_id* even when it is cached,
        merging the reply's format **and transform closure** into the
        local cache.  A receiver that knows a format but has no
        transform path for it calls this to pull the writer's
        retro-transformations before falling back to lossy
        reconciliation.  *on_done* fires with the freshest locally known
        format (the cached one when the fleet is unreachable)."""
        cached = self.registry.lookup_id(format_id)
        if self.degraded:
            if on_done is not None:
                on_done(cached)
            return
        callbacks = self._inflight.get(format_id)
        wrapped: Optional[ResolveCallback] = None
        if on_done is not None:
            # A refresh is best-effort: fall back to the cached format
            # when the lookup fails instead of reporting None.
            wrapped = lambda fmt: on_done(fmt if fmt is not None else cached)
        if callbacks is not None:
            if wrapped is not None:
                callbacks.append(wrapped)
            return
        self._lookup(format_id, wrapped)

    def _lookup(
        self, format_id: int, on_done: Optional[ResolveCallback]
    ) -> None:
        self._inflight[format_id] = [on_done] if on_done is not None else []
        self.stats["lookups_sent"] += 1
        self._count("lookups_sent")
        if OBS.enabled:
            # Initiation marker only: the reply arrives asynchronously,
            # and the parked message's replay re-joins the trace from its
            # own wire-carried context.  Recorded while the triggering
            # message's context is still active, so the flight recorder
            # shows the out-of-band fetch as part of the journey.
            with OBS.tracer.span(
                "pbio.resolver.lookup",
                format_id=format_id,
                resolver=self.address,
            ):
                pass
        self._request(
            {"op": "lookup", "format_id": str(format_id)},
            on_reply=lambda reply: self._finish_resolve(format_id, reply),
            on_fail=lambda: self._finish_resolve(format_id, None),
        )

    def _finish_resolve(
        self, format_id: int, reply: Optional[Dict[str, Any]]
    ) -> None:
        fmt: Optional[IOFormat] = None
        if reply is not None and reply.get("found"):
            fmt = format_from_dict(reply["format"])
            self.registry.register(fmt)
            for spec_dict in reply.get("transforms", ()):
                self.registry.register_transform(transform_from_dict(spec_dict))
        for callback in self._inflight.pop(format_id, ()):
            callback(fmt)

    # ------------------------------------------------------------------
    # Request plumbing: correlation, timeout, failover, degradation
    # ------------------------------------------------------------------

    def _request(
        self,
        message: Dict[str, Any],
        on_reply: Callable[[Dict[str, Any]], None],
        on_fail: Callable[[], None],
    ) -> None:
        order = (
            self.servers[self.active_server:]
            + self.servers[:self.active_server]
        )
        request = _Request(dict(message), on_reply, on_fail, order)
        request.message["id"] = next(self._ids)
        self._requests[request.message["id"]] = request
        self._attempt(request, first=True)

    def _attempt(self, request: _Request, first: bool = False) -> None:
        if request.done:
            return
        if not request.servers_left:
            request.done = True
            self._requests.pop(request.message["id"], None)
            self._enter_degraded()
            request.on_fail()
            return
        server = request.servers_left.pop(0)
        if not first:
            self.stats["failovers"] += 1
            self._count("failovers")
            self.active_server = self.servers.index(server)
        if request.timer is not None:
            request.timer.cancel()
        request.timer = self.network.call_later(
            self.request_timeout, lambda: self._attempt(request)
        )

        def on_result(ticket: SendTicket) -> None:
            # Rejected (open circuit) or failed (retries exhausted):
            # don't wait for the timeout, move on immediately.
            if ticket.state in ("failed", "rejected") and not request.done:
                self._attempt(request)

        self.endpoint.send(server, _encode(request.message), on_result)

    def _on_message(self, source: str, data: bytes) -> None:
        if data[:1] == b"{" and source in self.servers:
            try:
                message = _decode(data)
            except TransportError:
                return  # hostile or truncated meta traffic: drop
            op = message.get("op")
            if op in ("lookup_reply", "register_ok"):
                self._handle_reply(message)
                return
        if self.data_handler is not None:
            self.data_handler(source, data)

    def _handle_reply(self, message: Dict[str, Any]) -> None:
        request = self._requests.pop(message.get("id"), None)
        if request is None or request.done:
            return
        request.done = True
        if request.timer is not None:
            request.timer.cancel()
        self._exit_degraded()
        request.on_reply(message)

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------

    def _enter_degraded(self) -> None:
        if not self.degraded:
            self.degraded = True
            self._count("degraded_entries")
            if OBS.enabled:
                OBS.metrics.gauge(
                    "pbio.resolver.degraded", resolver=self.address
                ).set(1)

    def _exit_degraded(self) -> None:
        if self.degraded:
            self.degraded = False
            if OBS.enabled:
                OBS.metrics.gauge(
                    "pbio.resolver.degraded", resolver=self.address
                ).set(0)
        self._flush_pending()

    def _flush_pending(self) -> None:
        """Replay registrations queued while degraded."""
        pending, self._pending_registrations = self._pending_registrations, []
        for payload in pending:
            self.stats["replayed_registrations"] += 1
            self._count("replayed_registrations")
            self._send_registration(payload)

    def retry_pending(self) -> int:
        """Probe the fleet again after degradation: re-send queued
        registrations (success flips the resolver out of degraded mode
        via the reply path).  Returns how many uploads were attempted."""
        count = len(self._pending_registrations)
        if not count:
            return 0
        # Optimistic: flip out of degraded mode so the probes go out;
        # failure re-enters it, success is confirmed by the reply path.
        self._exit_degraded()
        return count

    def _count(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter(
                f"pbio.resolver.{name}", resolver=self.address
            ).inc()
