"""The format server as a fallible network service.

:mod:`repro.pbio.service` models the out-of-band meta-data channel as an
always-up JSON service on raw nodes.  This module is its
production-shaped sibling, built for the failure modes real deployments
hit: requests ride a :class:`~repro.net.reliable.ReliableEndpoint`
(retries, circuit breaking), the server can run with a **standby
replica** it mirrors registrations to, and the client is a
:class:`CachingFormatResolver` that

* serves every previously seen format from its **local cache** without
  touching the network,
* fails over to the next server in its list when a request times out,
  is rejected by an open circuit, or exhausts its retries,
* enters **degraded mode** when every server is unreachable — cached
  formats keep resolving, unknown ids report a miss instead of hanging,
  and registrations are queued for replay when a server answers again.

The wire protocol stays JSON (deliberately not PBIO: the meta-data
channel must not depend on the meta-data it serves).  Counters surface
through ``repro.obs`` as ``pbio.format_server.*`` / ``pbio.resolver.*``.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import FormatError, TransportError
from repro.net.reliable import ReliableEndpoint, SendTicket
from repro.net.transport import Network
from repro.obs import OBS
from repro.pbio.format import IOFormat
from repro.pbio.projection import ProjectionFormat, project_format
from repro.pbio.registry import FormatRegistry, TransformSpec
from repro.pbio.serialization import (
    format_from_dict,
    format_to_dict,
    transform_from_dict,
    transform_to_dict,
)

ResolveCallback = Callable[[Optional[IOFormat]], None]

#: One negotiated projection state, as shipped to clients:
#: ``{"epoch": int, "format": Optional[ProjectionFormat], "full": bool}``.
ProjectionState = Dict[str, Any]
ProjectionCallback = Callable[[Optional[ProjectionState]], None]


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8")


def _decode(data: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed format-server message: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise TransportError("format-server message missing 'op'")
    return message


class FormatServer:
    """A format server process on the reliable transport.

    Operations (JSON, request/reply correlated by ``id``):

    * ``register`` — store formats + transforms; replied with
      ``register_ok``; mirrored to the standby *peer* when configured,
    * ``lookup`` — fetch a format by id, shipped together with its whole
      transform closure so the client can morph without extra round
      trips,
    * ``sync`` — replica mirror traffic (never re-forwarded, so two
      servers may peer with each other without loops),
    * ``interest`` — a subscriber announces (or retracts) the field set
      it can observe for a *parent* format within a *group*; the server
      recomputes the group's union projection, derives + registers a
      :class:`~repro.pbio.projection.ProjectionFormat` at a fresh epoch
      when the union changed, and replies ``interest_state``,
    * ``interest_lookup`` — a sender asks for the current projection
      state of (parent format, group) and is remembered as a *watcher*:
      every later renegotiation is pushed to it as an unsolicited
      ``projection_update``.
    """

    def __init__(
        self,
        network: Network,
        address: str = "format-server",
        registry: Optional[FormatRegistry] = None,
        peer: Optional[str] = None,
        seed: int = 0,
        interest_ttl: Optional[float] = None,
        **endpoint_options: Any,
    ) -> None:
        self.endpoint = ReliableEndpoint(
            network, address, seed=seed, **endpoint_options
        )
        self.endpoint.set_handler(self._on_message)
        self.registry = registry if registry is not None else FormatRegistry()
        self.peer = peer
        #: interests not renewed (re-announced) within this many virtual
        #: seconds are aged out at the next interest touch or
        #: :meth:`sweep_interests` call, widening the projection back —
        #: the crashed-sink-never-retracts case.  ``None`` disables aging.
        self.interest_ttl = interest_ttl
        self.stats = {
            "registers": 0,
            "lookups": 0,
            "misses": 0,
            "syncs": 0,
            "interests": 0,
            "interest_lookups": 0,
            "renegotiations": 0,
            "interest_expirations": 0,
        }
        #: per (parent format id, group): subscriber address -> announced
        #: field names (``None`` = needs the full format)
        self._interests: Dict[Tuple[int, str], Dict[str, Optional[List[str]]]] = {}
        #: per (parent format id, group): virtual time each subscriber
        #: last announced (lease stamps for interest aging)
        self._interest_renewed: Dict[Tuple[int, str], Dict[str, float]] = {}
        #: per (parent format id, group): the parent format, kept so a
        #: TTL sweep can renegotiate without a fresh announcement
        self._interest_parents: Dict[Tuple[int, str], IOFormat] = {}
        #: per (parent format id, group): the current negotiated state
        self._projections: Dict[Tuple[int, str], ProjectionState] = {}
        #: per (parent format id, group): sender addresses to push
        #: ``projection_update`` messages to on renegotiation
        self._watchers: Dict[Tuple[int, str], Set[str]] = {}

    @property
    def address(self) -> str:
        return self.endpoint.address

    @property
    def node(self):
        return self.endpoint.node

    def close(self) -> None:
        """Crash the server (its node drops all incoming traffic)."""
        self.endpoint.node.close()

    def reopen(self) -> None:
        """Bring a crashed server back up."""
        self.endpoint.node.reopen()

    # ------------------------------------------------------------------

    def _on_message(self, source: str, data: bytes) -> None:
        message = _decode(data)
        op = message["op"]
        if op == "register":
            self._ingest(message)
            self.stats["registers"] += 1
            self._count("registers")
            self.endpoint.send(
                source,
                _encode({"op": "register_ok", "id": message.get("id")}),
            )
            if self.peer is not None:
                mirror = dict(message)
                mirror["op"] = "sync"
                mirror.pop("id", None)
                self.endpoint.send(self.peer, _encode(mirror))
        elif op == "sync":
            self._ingest(message)
            self.stats["syncs"] += 1
        elif op == "lookup":
            self._handle_lookup(source, message)
        elif op == "interest":
            self._handle_interest(source, message)
        elif op == "interest_lookup":
            self._handle_interest_lookup(source, message)
        # unknown ops are dropped: the server must tolerate newer clients

    def _ingest(self, message: Dict[str, Any]) -> None:
        # ``replace`` rather than ``register``: a client re-uploading
        # different content under a cached id (a re-derived projection, a
        # hostile writer) must refresh the entry, not crash the server.
        for fmt_dict in message.get("formats", ()):
            self.registry.replace(format_from_dict(fmt_dict))
        for spec_dict in message.get("transforms", ()):
            self.registry.register_transform(transform_from_dict(spec_dict))

    def _handle_lookup(self, source: str, message: Dict[str, Any]) -> None:
        self.stats["lookups"] += 1
        self._count("lookups")
        format_id = int(message["format_id"])
        fmt = self.registry.lookup_id(format_id)
        reply: Dict[str, Any] = {
            "op": "lookup_reply",
            "id": message.get("id"),
            "format_id": str(format_id),
            "found": fmt is not None,
        }
        if fmt is None:
            self.stats["misses"] += 1
            self._count("misses")
        else:
            chains = self.registry.transform_closure(fmt)
            specs = {id(s): s for chain in chains for s in chain}
            reply["format"] = format_to_dict(fmt)
            reply["transforms"] = [
                transform_to_dict(s) for s in specs.values()
            ]
            if isinstance(fmt, ProjectionFormat):
                # Ship the parent alongside, so a subscriber that joins
                # mid-stream (first message already projected) can plan
                # the projection route through the parent immediately.
                parent = self.registry.lookup_id(fmt.parent_format_id)
                if parent is not None:
                    reply["parent"] = format_to_dict(parent)
        self.endpoint.send(source, _encode(reply))

    # ------------------------------------------------------------------
    # Interest negotiation (projection push-down)
    # ------------------------------------------------------------------

    def _handle_interest(self, source: str, message: Dict[str, Any]) -> None:
        self.stats["interests"] += 1
        self._count("interests")
        group = str(message.get("group", ""))
        try:
            parent = format_from_dict(message.get("parent") or {})
        except FormatError:
            self.endpoint.send(source, _encode({
                "op": "interest_state", "id": message.get("id"),
                "malformed": True,
            }))
            return
        self.registry.replace(parent)
        key = (parent.format_id, group)
        self._interest_parents[key] = parent
        interests = self._interests.setdefault(key, {})
        renewed = self._interest_renewed.setdefault(key, {})
        if message.get("retract"):
            interests.pop(source, None)
            renewed.pop(source, None)
        else:
            fields = message.get("fields")
            interests[source] = (
                [str(name) for name in fields] if fields is not None else None
            )
            renewed[source] = self.endpoint.network.now
        self._expire_interests(key, parent)
        self._renegotiate(key, parent)
        self.endpoint.send(
            source,
            _encode(self._state_reply(key, parent, message.get("id"))),
        )

    def _handle_interest_lookup(
        self, source: str, message: Dict[str, Any]
    ) -> None:
        self.stats["interest_lookups"] += 1
        self._count("interest_lookups")
        group = str(message.get("group", ""))
        try:
            parent = format_from_dict(message.get("parent") or {})
        except FormatError:
            self.endpoint.send(source, _encode({
                "op": "interest_state", "id": message.get("id"),
                "malformed": True,
            }))
            return
        self.registry.replace(parent)
        key = (parent.format_id, group)
        self._interest_parents[key] = parent
        self._watchers.setdefault(key, set()).add(source)
        if self._expire_interests(key, parent):
            self._renegotiate(key, parent)
        self.endpoint.send(
            source,
            _encode(self._state_reply(key, parent, message.get("id"))),
        )

    def _expire_interests(
        self, key: Tuple[int, str], parent: IOFormat
    ) -> bool:
        """Age out interests whose holder stopped re-announcing within
        :attr:`interest_ttl`.  Returns True when any expired (the caller
        renegotiates, widening the projection back toward the parent)."""
        if self.interest_ttl is None:
            return False
        renewed = self._interest_renewed.get(key)
        if not renewed:
            return False
        now = self.endpoint.network.now
        interests = self._interests.get(key, {})
        expired = [
            source for source, stamp in renewed.items()
            if now - stamp > self.interest_ttl
        ]
        for source in expired:
            renewed.pop(source, None)
            interests.pop(source, None)
            self.stats["interest_expirations"] += 1
            self._count("interest_expirations")
        return bool(expired)

    def sweep_interests(self) -> int:
        """Proactive TTL pass over every interest group (the lazy path
        only ages a group when it is next touched).  Returns the number
        of groups whose projection renegotiated."""
        changed = 0
        for key in list(self._interest_renewed):
            parent = self._interest_parents.get(key)
            if parent is None:
                continue
            if self._expire_interests(key, parent):
                before = self.stats["renegotiations"]
                self._renegotiate(key, parent)
                if self.stats["renegotiations"] != before:
                    changed += 1
        return changed

    def _renegotiate(self, key: Tuple[int, str], parent: IOFormat) -> None:
        """Recompute the union projection for *key*; on change, derive
        the next epoch's format, register it (old epochs stay registered
        so in-flight frames remain decodable) and push the new state to
        every watching sender."""
        interests = self._interests.get(key) or {}
        declared = {field.name for field in parent.fields}
        union: Optional[Set[str]] = set()
        if not interests:
            union = None
        else:
            for fields in interests.values():
                if fields is None:
                    union = None
                    break
                union.update(fields)
        if union is not None:
            # Unknown names (a subscriber announcing against a stale
            # revision) are ignored rather than rejected.
            union &= declared
            if union >= declared:
                union = None
            elif not union:
                # An all-dead subscriber group still needs decodable
                # frames; keep the parent's first field.
                union = {parent.fields[0].name}
        state = self._projections.get(key)
        previous = None if state is None else state["fields"]
        if state is not None and (
            (previous is None) == (union is None)
            and (previous is None or set(previous) == union)
        ):
            return  # no effective change
        if state is None and union is None:
            # First announcement already wants the full format: record
            # the state at epoch 0 without counting a renegotiation.
            self._projections[key] = {"epoch": 0, "fields": None, "format": None}
            return
        epoch = (state["epoch"] if state is not None else 0) + 1
        fmt: Optional[ProjectionFormat] = None
        fields_list: Optional[List[str]] = None
        if union is not None:
            fmt = project_format(parent, union, epoch)
            fields_list = fmt.field_names()
            self.registry.replace(fmt)
            if self.peer is not None:
                self.endpoint.send(self.peer, _encode({
                    "op": "sync",
                    "formats": [format_to_dict(fmt)],
                    "transforms": [],
                }))
        self._projections[key] = {
            "epoch": epoch, "fields": fields_list, "format": fmt,
        }
        self.stats["renegotiations"] += 1
        self._count("renegotiations")
        self._push_update(key, parent)

    def _state_reply(
        self, key: Tuple[int, str], parent: IOFormat, request_id: Any
    ) -> Dict[str, Any]:
        state = self._projections.get(key)
        fmt = None if state is None else state["format"]
        reply: Dict[str, Any] = {
            "op": "interest_state",
            "id": request_id,
            "group": key[1],
            "parent_format_id": str(parent.format_id),
            "epoch": 0 if state is None else state["epoch"],
            "full": fmt is None,
        }
        if fmt is not None:
            reply["projection"] = format_to_dict(fmt)
        return reply

    def _push_update(self, key: Tuple[int, str], parent: IOFormat) -> None:
        watchers = self._watchers.get(key)
        if not watchers:
            return
        update = self._state_reply(key, parent, None)
        update["op"] = "projection_update"
        del update["id"]
        wire = _encode(update)
        # sorted: push order must be reproducible under the seeded
        # fault-injection harness
        for watcher in sorted(watchers):
            self.endpoint.send(watcher, wire)

    def _count(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter(
                f"pbio.format_server.{name}", server=self.address
            ).inc()


class _Request:
    """One in-flight client request, across failover attempts."""

    __slots__ = ("message", "on_reply", "on_fail", "servers_left", "timer",
                 "done")

    def __init__(
        self,
        message: Dict[str, Any],
        on_reply: Callable[[Dict[str, Any]], None],
        on_fail: Callable[[], None],
        servers_left: List[str],
    ) -> None:
        self.message = message
        self.on_reply = on_reply
        self.on_fail = on_fail
        self.servers_left = servers_left
        self.timer = None
        self.done = False


class CachingFormatResolver:
    """A client of the format-server fleet with a local format cache.

    The cache is a full :class:`FormatRegistry` (formats *and*
    transforms), so a :class:`~repro.morph.receiver.MorphReceiver` can
    run directly against it — resolving a format once makes every
    subsequent message of that format a pure local operation.

    Parameters
    ----------
    servers:
        Server addresses in preference order; the resolver fails over
        down the list and sticks with whichever answered last.
    request_timeout:
        Virtual seconds to wait for a reply before trying the next
        server (on top of the reliable endpoint's own retry budget,
        which covers lost frames; this covers lost *servers*).
    """

    def __init__(
        self,
        network: Network,
        address: str,
        servers: Sequence[str] = ("format-server",),
        registry: Optional[FormatRegistry] = None,
        request_timeout: float = 2.0,
        seed: int = 0,
        **endpoint_options: Any,
    ) -> None:
        if not servers:
            raise TransportError("resolver needs at least one server address")
        self.network = network
        self.endpoint = ReliableEndpoint(
            network, address, seed=seed, **endpoint_options
        )
        self.endpoint.set_handler(self._on_message)
        self.registry = registry if registry is not None else FormatRegistry()
        self.servers = list(servers)
        self.request_timeout = request_timeout
        #: index into ``servers`` of the server currently trusted
        self.active_server = 0
        self.degraded = False
        self._ids = itertools.count(1)
        self._requests: Dict[int, _Request] = {}
        #: lookup callbacks coalesced per format id
        self._inflight: Dict[int, List[ResolveCallback]] = {}
        #: registration payloads queued while degraded
        self._pending_registrations: List[Dict[str, Any]] = []
        #: non-meta traffic handler (a receiver, an application...)
        self.data_handler: Optional[Callable[[str, bytes], None]] = None
        #: fired with a format id whenever a server reply displaced
        #: different cached content under that id — receivers hook this
        #: to drop their cached morph routes for the stale entry
        self.on_invalidate: Optional[Callable[[int], None]] = None
        #: last known projection state per (parent format id, group)
        self._projection_states: Dict[Tuple[int, str], ProjectionState] = {}
        #: interests this endpoint has announced (and not retracted),
        #: per (group, parent format id) — replayed by
        #: :meth:`reannounce_interests` to renew server-side TTL leases
        self._announced_interests: Dict[
            Tuple[str, int], Tuple[IOFormat, Optional[List[str]]]
        ] = {}
        #: projection-update callbacks per (parent format id, group)
        self._projection_watches: Dict[
            Tuple[int, str], List[ProjectionCallback]
        ] = {}
        self.stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "lookups_sent": 0,
            "failovers": 0,
            "degraded_misses": 0,
            "queued_registrations": 0,
            "replayed_registrations": 0,
            "invalidations": 0,
            "interests_sent": 0,
            "interest_lookups_sent": 0,
            "interest_reannounces": 0,
            "projection_updates": 0,
        }

    @property
    def address(self) -> str:
        return self.endpoint.address

    @property
    def cache(self) -> FormatRegistry:
        """Alias for :attr:`registry` — the local replica."""
        return self.registry

    @property
    def pending_registrations(self) -> int:
        return len(self._pending_registrations)

    # ------------------------------------------------------------------
    # Registration (writer side)
    # ------------------------------------------------------------------

    def register(
        self,
        *formats: IOFormat,
        transforms: Sequence[TransformSpec] = (),
    ) -> None:
        """Register formats/transforms locally (always succeeds — the
        cache is authoritative for this process) and push them to the
        format server, queueing the upload when degraded."""
        for fmt in formats:
            self.registry.register(fmt)
        for spec in transforms:
            self.registry.register_transform(spec)
        payload = {
            "op": "register",
            "formats": [format_to_dict(f) for f in formats],
            "transforms": [transform_to_dict(s) for s in transforms],
        }
        if not formats and not transforms:
            return
        self._send_registration(payload)

    def publish(self) -> None:
        """Upload the entire local registry — what a writer does at
        startup (or after recovering from degraded mode)."""
        formats = self.registry.formats()
        transforms = [
            spec
            for fmt in formats
            for spec in self.registry.transforms_from(fmt)
        ]
        self._send_registration({
            "op": "register",
            "formats": [format_to_dict(f) for f in formats],
            "transforms": [transform_to_dict(s) for s in transforms],
        })

    def _send_registration(self, payload: Dict[str, Any]) -> None:
        if self.degraded:
            self._queue_registration(payload)
            return
        self._request(
            payload,
            on_reply=lambda _reply: None,
            on_fail=lambda: self._queue_registration(payload),
        )

    def _queue_registration(self, payload: Dict[str, Any]) -> None:
        self._pending_registrations.append(payload)
        self.stats["queued_registrations"] += 1
        self._count("queued_registrations")
        self._enter_degraded()

    # ------------------------------------------------------------------
    # Resolution (reader side)
    # ------------------------------------------------------------------

    def resolve(
        self, format_id: int, on_done: Optional[ResolveCallback] = None
    ) -> Optional[IOFormat]:
        """Resolve *format_id* to a format.

        Cache hits return the format immediately (and invoke *on_done*
        synchronously).  Misses return ``None`` and fetch it from the
        server fleet; *on_done* fires with the format — or ``None`` when
        every server is unreachable or none knows the id — once the
        outcome is known.  Concurrent misses for one id are coalesced
        into a single request."""
        fmt = self.registry.lookup_id(format_id)
        if fmt is not None:
            self.stats["cache_hits"] += 1
            self._count("cache_hits")
            if on_done is not None:
                on_done(fmt)
            return fmt
        self.stats["cache_misses"] += 1
        self._count("cache_misses")
        if self.degraded:
            # Degraded mode serves only the cache; report the miss
            # instead of hanging on a fleet we know is down.
            self.stats["degraded_misses"] += 1
            self._count("degraded_misses")
            if on_done is not None:
                on_done(None)
            return None
        callbacks = self._inflight.get(format_id)
        if callbacks is not None:
            # A fetch for this id is already in flight — coalesce.
            if on_done is not None:
                callbacks.append(on_done)
            return None
        self._lookup(format_id, on_done)
        return None

    def refresh(
        self, format_id: int, on_done: Optional[ResolveCallback] = None
    ) -> None:
        """Force a server lookup for *format_id* even when it is cached,
        merging the reply's format **and transform closure** into the
        local cache.  A receiver that knows a format but has no
        transform path for it calls this to pull the writer's
        retro-transformations before falling back to lossy
        reconciliation.  *on_done* fires with the freshest locally known
        format (the cached one when the fleet is unreachable)."""
        cached = self.registry.lookup_id(format_id)
        if self.degraded:
            if on_done is not None:
                on_done(cached)
            return
        callbacks = self._inflight.get(format_id)
        wrapped: Optional[ResolveCallback] = None
        if on_done is not None:
            # A refresh is best-effort: fall back to the cached format
            # when the lookup fails instead of reporting None.
            wrapped = lambda fmt: on_done(fmt if fmt is not None else cached)
        if callbacks is not None:
            if wrapped is not None:
                callbacks.append(wrapped)
            return
        self._lookup(format_id, wrapped)

    def _lookup(
        self, format_id: int, on_done: Optional[ResolveCallback]
    ) -> None:
        self._inflight[format_id] = [on_done] if on_done is not None else []
        self.stats["lookups_sent"] += 1
        self._count("lookups_sent")
        if OBS.enabled:
            # Initiation marker only: the reply arrives asynchronously,
            # and the parked message's replay re-joins the trace from its
            # own wire-carried context.  Recorded while the triggering
            # message's context is still active, so the flight recorder
            # shows the out-of-band fetch as part of the journey.
            with OBS.tracer.span(
                "pbio.resolver.lookup",
                format_id=format_id,
                resolver=self.address,
            ):
                pass
        self._request(
            {"op": "lookup", "format_id": str(format_id)},
            on_reply=lambda reply: self._finish_resolve(format_id, reply),
            on_fail=lambda: self._finish_resolve(format_id, None),
        )

    def _finish_resolve(
        self, format_id: int, reply: Optional[Dict[str, Any]]
    ) -> None:
        fmt: Optional[IOFormat] = None
        if reply is not None and reply.get("found"):
            fmt = format_from_dict(reply["format"])
            self._ingest_format(fmt)
            parent_dict = reply.get("parent")
            if parent_dict is not None:
                # A projection lookup ships its parent alongside; cache
                # it so the receiver can plan the projection route.
                try:
                    self._ingest_format(format_from_dict(parent_dict))
                except FormatError:
                    pass  # hostile or stale provenance: keep the format
            for spec_dict in reply.get("transforms", ()):
                self.registry.register_transform(transform_from_dict(spec_dict))
        for callback in self._inflight.pop(format_id, ()):
            callback(fmt)

    def _ingest_format(self, fmt: IOFormat) -> None:
        """Merge a server-shipped format into the local cache.  The
        server is authoritative: different cached content under the same
        id is displaced (``FormatRegistry.replace``), counted as an
        invalidation, and reported through :attr:`on_invalidate` so
        receivers drop lookup/route state compiled against the stale
        entry."""
        if self.registry.replace(fmt):
            self.stats["invalidations"] += 1
            self._count("invalidations")
            if self.on_invalidate is not None:
                self.on_invalidate(fmt.format_id)

    # ------------------------------------------------------------------
    # Projection negotiation (interest push-down)
    # ------------------------------------------------------------------

    def announce_interest(
        self,
        group: str,
        parent: IOFormat,
        fields: Optional[Sequence[str]],
        retract: bool = False,
        on_state: Optional[ProjectionCallback] = None,
    ) -> None:
        """Announce (or retract) this subscriber's interest in *parent*
        within *group*: the top-level field names its handler can ever
        observe, or ``None`` when it needs every field.  The server
        unions interests across the group, derives the projection format,
        and replies with the new state (*on_state*; ``None`` when the
        fleet is unreachable — projection is an optimization, degraded
        mode simply keeps full-format traffic)."""
        self.registry.register(parent)
        self.stats["interests_sent"] += 1
        self._count("interests_sent")
        if retract:
            self._announced_interests.pop((group, parent.format_id), None)
        else:
            self._announced_interests[(group, parent.format_id)] = (
                parent, list(fields) if fields is not None else None,
            )
        if self.degraded:
            if on_state is not None:
                on_state(None)
            return
        payload: Dict[str, Any] = {
            "op": "interest",
            "group": group,
            "parent": format_to_dict(parent),
            "fields": sorted(fields) if fields is not None else None,
        }
        if retract:
            payload["retract"] = True
        self._request(
            payload,
            on_reply=lambda reply: self._ingest_projection_state(
                reply, on_state
            ),
            on_fail=lambda: on_state(None) if on_state is not None else None,
        )

    def reannounce_interests(self) -> int:
        """Replay every live interest announcement — the heartbeat-side
        half of interest aging: a subscriber that is alive keeps its
        server-side TTL lease fresh by re-announcing on its heartbeat
        cadence; a crashed one stops, and the server widens the
        projection back once the TTL lapses.  No-op while degraded
        (projection is an optimization; full-format traffic flows
        anyway).  Returns the number of announcements sent."""
        if self.degraded:
            return 0
        sent = 0
        for (group, _parent_id), (parent, fields) in sorted(
            self._announced_interests.items()
        ):
            sent += 1
            self.stats["interest_reannounces"] += 1
            self._count("interest_reannounces")
            self._request(
                {
                    "op": "interest",
                    "group": group,
                    "parent": format_to_dict(parent),
                    "fields": sorted(fields) if fields is not None else None,
                },
                on_reply=lambda reply: self._ingest_projection_state(reply),
                on_fail=lambda: None,
            )
        return sent

    def watch_projection(
        self,
        group: str,
        parent: IOFormat,
        on_update: Optional[ProjectionCallback] = None,
    ) -> None:
        """Sender side: fetch the current projection state of
        (*parent*, *group*) and register as a watcher — *on_update* fires
        for the initial state and for every later renegotiation pushed
        by the server."""
        key = (parent.format_id, group)
        if on_update is not None:
            self._projection_watches.setdefault(key, []).append(on_update)
        self.registry.register(parent)
        self.stats["interest_lookups_sent"] += 1
        self._count("interest_lookups_sent")
        if self.degraded:
            return
        self._request(
            {
                "op": "interest_lookup",
                "group": group,
                "parent": format_to_dict(parent),
            },
            on_reply=self._ingest_projection_state,
            on_fail=lambda: None,
        )

    def projection_state(
        self, parent_format_id: int, group: str
    ) -> Optional[ProjectionState]:
        """The last projection state seen for (*parent_format_id*,
        *group*) — ``None`` before any reply arrived."""
        return self._projection_states.get((parent_format_id, group))

    def _ingest_projection_state(
        self,
        message: Dict[str, Any],
        on_state: Optional[ProjectionCallback] = None,
    ) -> None:
        """Parse an ``interest_state`` reply or ``projection_update``
        push, merge the projection format into the cache, remember the
        state and fire the watchers.  Malformed messages yield ``None``
        without touching cached state."""
        state: Optional[ProjectionState] = None
        key: Optional[Tuple[int, str]] = None
        try:
            parent_id = int(message["parent_format_id"])
            epoch = int(message.get("epoch", 0))
        except (KeyError, TypeError, ValueError):
            parent_id = None
        if parent_id is not None:
            key = (parent_id, str(message.get("group", "")))
            fmt: Optional[IOFormat] = None
            proj_dict = message.get("projection")
            try:
                if proj_dict is not None:
                    fmt = format_from_dict(proj_dict)
                    self._ingest_format(fmt)
                state = {
                    "epoch": epoch,
                    "format": fmt,
                    "full": fmt is None,
                }
            except FormatError:
                state = None  # hostile projection description: drop
        if state is not None and key is not None:
            self._projection_states[key] = state
            self.stats["projection_updates"] += 1
            self._count("projection_updates")
            for callback in list(self._projection_watches.get(key, ())):
                callback(state)
        if on_state is not None:
            on_state(state)

    # ------------------------------------------------------------------
    # Request plumbing: correlation, timeout, failover, degradation
    # ------------------------------------------------------------------

    def _request(
        self,
        message: Dict[str, Any],
        on_reply: Callable[[Dict[str, Any]], None],
        on_fail: Callable[[], None],
    ) -> None:
        order = (
            self.servers[self.active_server:]
            + self.servers[:self.active_server]
        )
        request = _Request(dict(message), on_reply, on_fail, order)
        request.message["id"] = next(self._ids)
        self._requests[request.message["id"]] = request
        self._attempt(request, first=True)

    def _attempt(self, request: _Request, first: bool = False) -> None:
        if request.done:
            return
        if not request.servers_left:
            request.done = True
            self._requests.pop(request.message["id"], None)
            self._enter_degraded()
            request.on_fail()
            return
        server = request.servers_left.pop(0)
        if not first:
            self.stats["failovers"] += 1
            self._count("failovers")
            self.active_server = self.servers.index(server)
        if request.timer is not None:
            request.timer.cancel()
        request.timer = self.network.call_later(
            self.request_timeout, lambda: self._attempt(request)
        )

        def on_result(ticket: SendTicket) -> None:
            # Rejected (open circuit) or failed (retries exhausted):
            # don't wait for the timeout, move on immediately.
            if ticket.state in ("failed", "rejected") and not request.done:
                self._attempt(request)

        self.endpoint.send(server, _encode(request.message), on_result)

    def _on_message(self, source: str, data: bytes) -> None:
        if data[:1] == b"{" and source in self.servers:
            try:
                message = _decode(data)
            except TransportError:
                return  # hostile or truncated meta traffic: drop
            op = message.get("op")
            if op in ("lookup_reply", "register_ok", "interest_state"):
                self._handle_reply(message)
                return
            if op == "projection_update":
                # Unsolicited renegotiation push from the fleet — no
                # request to correlate with.
                self._ingest_projection_state(message)
                return
        if self.data_handler is not None:
            self.data_handler(source, data)

    def _handle_reply(self, message: Dict[str, Any]) -> None:
        request = self._requests.pop(message.get("id"), None)
        if request is None or request.done:
            return
        request.done = True
        if request.timer is not None:
            request.timer.cancel()
        self._exit_degraded()
        request.on_reply(message)

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------

    def _enter_degraded(self) -> None:
        if not self.degraded:
            self.degraded = True
            self._count("degraded_entries")
            if OBS.enabled:
                OBS.metrics.gauge(
                    "pbio.resolver.degraded", resolver=self.address
                ).set(1)

    def _exit_degraded(self) -> None:
        if self.degraded:
            self.degraded = False
            if OBS.enabled:
                OBS.metrics.gauge(
                    "pbio.resolver.degraded", resolver=self.address
                ).set(0)
        self._flush_pending()

    def _flush_pending(self) -> None:
        """Replay registrations queued while degraded."""
        pending, self._pending_registrations = self._pending_registrations, []
        for payload in pending:
            self.stats["replayed_registrations"] += 1
            self._count("replayed_registrations")
            self._send_registration(payload)

    def retry_pending(self) -> int:
        """Probe the fleet again after degradation: re-send queued
        registrations (success flips the resolver out of degraded mode
        via the reply path).  Returns how many uploads were attempted."""
        count = len(self._pending_registrations)
        if not count:
            return 0
        # Optimistic: flip out of degraded mode so the probes go out;
        # failure re-enters it, success is confirmed by the reply path.
        self._exit_degraded()
        return count

    def _count(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter(
                f"pbio.resolver.{name}", resolver=self.address
            ).inc()
