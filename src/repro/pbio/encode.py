"""Generic (interpretive) PBIO encoder.

Walks the format tree field by field.  The dynamic-code-generation encoder
in :mod:`repro.pbio.codegen` produces specialized routines that do the same
job faster; this module is the reference implementation the generated code
is property-tested against, and the baseline for the DCG ablation bench.
"""

from __future__ import annotations

import struct
from typing import Any, Mapping

from repro.errors import EncodeError
from repro.pbio.buffer import FLAG_BIG_ENDIAN, ORDER_PREFIX, WireWriter, pack_header
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.types import (
    SIGNED_RANGES,
    STRUCT_CODES,
    TypeKind,
    UNSIGNED_RANGES,
)


def encode_record(
    fmt: IOFormat, rec: Mapping[str, Any], byte_order: str = "little"
) -> bytes:
    """Encode *rec* against *fmt*, returning a full wire message
    (header + payload).

    *byte_order* is the writer's declared native order ("little"/"big");
    it is recorded in the header flags so the receiver converts only when
    its own order differs (PBIO's receiver-makes-right rule)."""
    try:
        order = ORDER_PREFIX[byte_order]
    except KeyError:
        raise EncodeError(f"unknown byte order {byte_order!r}") from None
    writer = WireWriter(order)
    encode_payload(writer, fmt, rec)
    payload = writer.getvalue()
    flags = FLAG_BIG_ENDIAN if byte_order == "big" else 0
    return pack_header(fmt.format_id, len(payload), flags=flags) + payload


def encode_payload(writer: WireWriter, fmt: IOFormat, rec: Mapping[str, Any]) -> None:
    """Encode only the payload of *rec* into *writer* (no header)."""
    for field in fmt.fields:
        try:
            value = rec[field.name]
        except (KeyError, TypeError):
            raise EncodeError(
                f"record missing field {field.name!r} of format {fmt.name!r}"
            ) from None
        _encode_field(writer, field, value, rec)


def _encode_field(
    writer: WireWriter, field: IOField, value: Any, rec: Mapping[str, Any]
) -> None:
    if field.is_array:
        spec = field.array
        assert spec is not None
        if not isinstance(value, (list, tuple)):
            raise EncodeError(f"field {field.name!r} must be a sequence")
        if spec.fixed_length is not None:
            if len(value) != spec.fixed_length:
                raise EncodeError(
                    f"fixed array {field.name!r} needs {spec.fixed_length} "
                    f"elements, got {len(value)}"
                )
        else:
            declared = rec.get(spec.length_field)
            if declared != len(value):
                raise EncodeError(
                    f"variable array {field.name!r} has {len(value)} elements "
                    f"but count field {spec.length_field!r} == {declared!r}"
                )
        for element in value:
            _encode_element(writer, field, element)
    else:
        _encode_element(writer, field, value)


def _encode_element(writer: WireWriter, field: IOField, value: Any) -> None:
    kind = field.kind
    if kind is TypeKind.COMPLEX:
        assert field.subformat is not None
        encode_payload(writer, field.subformat, value)
        return
    if kind is TypeKind.STRING:
        if not isinstance(value, str):
            raise EncodeError(f"string field {field.name!r} got {type(value).__name__}")
        writer.write_string(value)
        return
    if kind is TypeKind.CHAR:
        text = value if isinstance(value, str) else str(value)
        if len(text) != 1:
            raise EncodeError(f"char field {field.name!r} needs 1 character")
        writer.write_bytes(text.encode("latin-1", errors="replace")[:1])
        return
    code = STRUCT_CODES[(kind, field.size)]
    if kind is TypeKind.INTEGER:
        value = _check_range(field, int(value), SIGNED_RANGES[field.size])
    elif kind in (TypeKind.UNSIGNED, TypeKind.ENUMERATION):
        value = _check_range(field, int(value), UNSIGNED_RANGES[field.size])
    elif kind is TypeKind.FLOAT:
        value = float(value)
    elif kind is TypeKind.BOOLEAN:
        value = bool(value)
    writer.write_scalar(code, value)


def _check_range(field: IOField, value: int, bounds: "tuple[int, int]") -> int:
    low, high = bounds
    if not low <= value <= high:
        raise EncodeError(
            f"value {value} out of range [{low}, {high}] for field "
            f"{field.name!r} ({field.kind.value}:{field.size})"
        )
    return value


def encoded_size(fmt: IOFormat, rec: Mapping[str, Any]) -> int:
    """Size in bytes of the wire message `encode_record(fmt, rec)` would
    produce, without building the buffer."""
    from repro.pbio.buffer import HEADER_SIZE

    return HEADER_SIZE + _payload_size(fmt, rec)


def _payload_size(fmt: IOFormat, rec: Mapping[str, Any]) -> int:
    total = 0
    for field in fmt.fields:
        value = rec[field.name]
        elements = value if field.is_array else (value,)
        for element in elements:
            if field.is_complex:
                assert field.subformat is not None
                total += _payload_size(field.subformat, element)
            elif field.kind is TypeKind.STRING:
                total += 4 + len(str(element).encode("utf-8"))
            else:
                total += field.size
    return total


def native_size(fmt: IOFormat, rec: Mapping[str, Any]) -> int:
    """The "unencoded" size the paper reports: the bytes the record would
    occupy as packed C structs (scalar wire sizes, strings as
    NUL-terminated char data, arrays as element data).  Used as the x-axis
    of Figures 8-10 and the baseline row of Table 1."""
    total = 0
    for field in fmt.fields:
        value = rec[field.name]
        elements = value if field.is_array else (value,)
        for element in elements:
            if field.is_complex:
                assert field.subformat is not None
                total += native_size(field.subformat, element)
            elif field.kind is TypeKind.STRING:
                total += len(str(element).encode("utf-8")) + 1
            else:
                total += field.size
    return total
