"""PBIOContext — one endpoint's encode/decode state.

Ties together the format registry (out-of-band meta-data), the generated
specialized encoders/decoders (cached per format, created on first use —
the DCG behaviour the paper measures), and the generic fallback paths.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import UnknownFormatError
from repro.obs import OBS
from repro.pbio import codegen
from repro.pbio.buffer import unpack_header
from repro.pbio.decode import decode_record as generic_decode_record
from repro.pbio.encode import encode_record as generic_encode_record
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry


#: Bound on each context's generated encoder/decoder cache.  A decoder is
#: cheap to regenerate but holds compiled code; endpoints that register
#: and unregister formats for years must stay flat.  (The per-order
#: ``payload_decoders`` inside one generated decoder is naturally bounded
#: at two entries — "<" and ">".)
CODEC_CACHE_MAX = 1024


class PBIOContext:
    """Encode and decode wire messages for one endpoint.

    Parameters
    ----------
    registry:
        The shared (or replicated) :class:`FormatRegistry`; defaults to a
        fresh private registry.
    use_codegen:
        When True (default) encode/decode run through dynamically generated
        specialized routines; when False the generic interpretive paths are
        used.  The flag exists for the DCG ablation benchmarks.
    byte_order:
        The writer's native byte order ("little"/"big"), recorded in every
        outgoing header.  Decoding always honours the *incoming* header's
        flag — PBIO's receiver-makes-right rule — generating an
        opposite-order decoder on first need.
    """

    def __init__(
        self,
        registry: Optional[FormatRegistry] = None,
        use_codegen: bool = True,
        byte_order: str = "little",
    ) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.use_codegen = use_codegen
        self.byte_order = byte_order
        self._lock = threading.Lock()
        self._encoders: Dict[int, codegen.EncoderFn] = {}
        self._decoders: Dict[int, codegen.DecoderFn] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_format(self, fmt: IOFormat) -> int:
        return self.registry.register(fmt)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, fmt: IOFormat, rec: Mapping[str, Any]) -> bytes:
        """Encode *rec* as a wire message of *fmt* (registering it)."""
        if not OBS.enabled:
            return self._encode(fmt, rec)
        path = "specialized" if self.use_codegen else "generic"
        with OBS.tracer.span("pbio.encode", format=fmt.name, path=path):
            start = time.perf_counter()
            wire = self._encode(fmt, rec)
            elapsed = time.perf_counter() - start
        metrics = OBS.metrics
        metrics.counter("pbio.encode.messages", path=path).inc()
        metrics.counter("pbio.encode.bytes").inc(len(wire))
        metrics.histogram("pbio.encode.seconds").observe(elapsed)
        return wire

    def _encode(self, fmt: IOFormat, rec: Mapping[str, Any]) -> bytes:
        self.registry.register(fmt)
        if not self.use_codegen:
            return generic_encode_record(fmt, rec, byte_order=self.byte_order)
        encoder = self._encoders.get(fmt.format_id)
        if encoder is None:
            with self._lock:
                encoder = self._encoders.get(fmt.format_id)
                if encoder is None:
                    start = time.perf_counter()
                    encoder = codegen.make_encoder(fmt, byte_order=self.byte_order)
                    if OBS.enabled:
                        metrics = OBS.metrics
                        metrics.counter("pbio.codegen.encoders").inc()
                        metrics.histogram("pbio.codegen.seconds").observe(
                            time.perf_counter() - start
                        )
                    self._cache_codec(self._encoders, fmt.format_id, encoder,
                                      "pbio.context.encoder_cache_size")
        return encoder(rec)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, data: bytes) -> Tuple[IOFormat, Record]:
        """Decode a wire message, resolving its format via the registry.

        Returns ``(format, record)``; raises :class:`UnknownFormatError`
        for unregistered format ids."""
        header = unpack_header(data)
        fmt = self.registry.lookup_id(header.format_id)
        if fmt is None:
            raise UnknownFormatError(header.format_id)
        return fmt, self.decode_as(fmt, data)

    def decode_as(self, fmt: IOFormat, data: bytes) -> Record:
        """Decode *data* with the (possibly generated) decoder for *fmt*."""
        if not OBS.enabled:
            return self._decode_as(fmt, data)
        path = "specialized" if self.use_codegen else "generic"
        with OBS.tracer.span("pbio.decode", format=fmt.name, path=path):
            start = time.perf_counter()
            record = self._decode_as(fmt, data)
            elapsed = time.perf_counter() - start
        metrics = OBS.metrics
        metrics.counter("pbio.decode.messages", path=path).inc()
        metrics.counter("pbio.decode.bytes").inc(len(data))
        metrics.histogram("pbio.decode.seconds").observe(elapsed)
        return record

    def _decode_as(self, fmt: IOFormat, data: bytes) -> Record:
        if not self.use_codegen:
            return generic_decode_record(fmt, data)
        decoder = self._decoders.get(fmt.format_id)
        if decoder is None:
            with self._lock:
                decoder = self._decoders.get(fmt.format_id)
                if decoder is None:
                    start = time.perf_counter()
                    decoder = codegen.make_decoder(fmt)
                    if OBS.enabled:
                        metrics = OBS.metrics
                        metrics.counter("pbio.codegen.decoders").inc()
                        metrics.histogram("pbio.codegen.seconds").observe(
                            time.perf_counter() - start
                        )
                    self._cache_codec(self._decoders, fmt.format_id, decoder,
                                      "pbio.context.decoder_cache_size")
        return decoder(data)

    def _cache_codec(
        self, cache: Dict[int, Any], format_id: int, codec: Any, gauge: str
    ) -> None:
        """Insert a generated routine under ``self._lock``, evicting FIFO
        at :data:`CODEC_CACHE_MAX` so format churn cannot leak compiled
        code; the cache size is exported as an obs gauge."""
        while len(cache) >= CODEC_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[format_id] = codec
        if OBS.enabled:
            OBS.metrics.gauge(gauge).set(len(cache))

    def peek_format(self, data: bytes) -> Optional[IOFormat]:
        """Resolve the format of a wire message without decoding it."""
        return self.registry.lookup_id(unpack_header(data).format_id)

    # ------------------------------------------------------------------
    # Introspection (for tests / ablations)
    # ------------------------------------------------------------------

    @property
    def generated_decoder_count(self) -> int:
        return len(self._decoders)

    @property
    def generated_encoder_count(self) -> int:
        return len(self._encoders)
