"""Meta-data serialization.

Message morphing "can address components separated in space and/or
time" (Section 1): the out-of-band meta-data — formats and their
transformations — must be able to outlive a process, travel over a wire,
or sit in a file next to archived messages.  This module round-trips
formats, transform specs, and whole registries through plain
JSON-compatible dictionaries.

The encoding is self-describing and versioned, so a registry snapshot
written today can be re-hydrated by a later release.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import FormatError
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.projection import ProjectionFormat
from repro.pbio.registry import FormatRegistry, TransformSpec
from repro.pbio.types import TypeKind

SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Formats
# ---------------------------------------------------------------------------


def format_to_dict(fmt: IOFormat) -> Dict[str, Any]:
    """A JSON-compatible description of *fmt* (recursing into nested
    complex subformats).  Projection formats carry their provenance in an
    optional ``projection`` key, so a derived format survives the trip
    through the format server without losing its parent link."""
    out: Dict[str, Any] = {
        "name": fmt.name,
        "version": fmt.version,
        "fields": [_field_to_dict(field) for field in fmt.fields],
    }
    if isinstance(fmt, ProjectionFormat):
        out["projection"] = {
            "parent_format_id": fmt.parent_format_id,
            "epoch": fmt.projection_epoch,
        }
    return out


def _field_to_dict(field: IOField) -> Dict[str, Any]:
    out: Dict[str, Any] = {"name": field.name, "kind": field.kind.value}
    if field.is_basic and field.size:
        out["size"] = field.size
    if field.subformat is not None:
        out["subformat"] = format_to_dict(field.subformat)
    if field.array is not None:
        if field.array.fixed_length is not None:
            out["array"] = {"fixed_length": field.array.fixed_length}
        else:
            out["array"] = {"length_field": field.array.length_field}
    if field.importance != 1.0:
        out["importance"] = field.importance
    if field._default is not None:
        out["default"] = field._default
    return out


def format_from_dict(data: Dict[str, Any]) -> IOFormat:
    """Rebuild an :class:`IOFormat` from :func:`format_to_dict` output.

    Raises :class:`FormatError` on malformed input."""
    try:
        name = data["name"]
        field_dicts = data["fields"]
    except (KeyError, TypeError) as exc:
        raise FormatError(f"malformed format description: {exc!r}") from None
    fields = [_field_from_dict(fd) for fd in field_dicts]
    provenance = data.get("projection")
    if provenance is not None:
        try:
            parent_id = int(provenance["parent_format_id"])
            epoch = int(provenance.get("epoch", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(
                f"malformed projection provenance: {exc!r}"
            ) from None
        return ProjectionFormat(
            name,
            fields,
            version=data.get("version"),
            parent_format_id=parent_id,
            projection_epoch=epoch,
        )
    return IOFormat(name, fields, version=data.get("version"))


def _field_from_dict(data: Dict[str, Any]) -> IOField:
    try:
        name = data["name"]
        kind = TypeKind(data["kind"])
    except (KeyError, ValueError, TypeError) as exc:
        raise FormatError(f"malformed field description: {exc!r}") from None
    subformat = None
    if "subformat" in data:
        subformat = format_from_dict(data["subformat"])
    array = None
    if "array" in data:
        spec = data["array"]
        if "fixed_length" in spec:
            array = ArraySpec(fixed_length=spec["fixed_length"])
        else:
            array = ArraySpec(length_field=spec.get("length_field"))
    return IOField(
        name,
        kind,
        size=data.get("size", 0),
        subformat=subformat,
        array=array,
        default=data.get("default"),
        importance=data.get("importance", 1.0),
    )


# ---------------------------------------------------------------------------
# Transform specs
# ---------------------------------------------------------------------------


def transform_to_dict(spec: TransformSpec) -> Dict[str, Any]:
    return {
        "source": format_to_dict(spec.source),
        "target": format_to_dict(spec.target),
        "code": spec.code,
        "description": spec.description,
    }


def transform_from_dict(data: Dict[str, Any]) -> TransformSpec:
    try:
        return TransformSpec(
            source=format_from_dict(data["source"]),
            target=format_from_dict(data["target"]),
            code=data["code"],
            description=data.get("description", ""),
        )
    except (KeyError, TypeError) as exc:
        raise FormatError(f"malformed transform description: {exc!r}") from None


# ---------------------------------------------------------------------------
# Whole registries
# ---------------------------------------------------------------------------


def registry_to_dict(registry: FormatRegistry) -> Dict[str, Any]:
    """Snapshot every format and transformation in *registry*."""
    formats = registry.formats()
    transforms: List[TransformSpec] = []
    for fmt in formats:
        transforms.extend(registry.transforms_from(fmt))
    return {
        "schema_version": SCHEMA_VERSION,
        "formats": [format_to_dict(fmt) for fmt in formats],
        "transforms": [transform_to_dict(spec) for spec in transforms],
    }


def registry_from_dict(data: Dict[str, Any]) -> FormatRegistry:
    """Re-hydrate a :func:`registry_to_dict` snapshot."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise FormatError(
            f"unsupported meta-data schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    registry = FormatRegistry()
    for fmt_dict in data.get("formats", ()):
        registry.register(format_from_dict(fmt_dict))
    for spec_dict in data.get("transforms", ()):
        registry.register_transform(transform_from_dict(spec_dict))
    return registry


def dump_registry(registry: FormatRegistry, indent: int = 2) -> str:
    """Serialize *registry* to a JSON string."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


def load_registry(text: str) -> FormatRegistry:
    """Parse a :func:`dump_registry` string back into a registry."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"registry snapshot is not valid JSON: {exc}") from None
    return registry_from_dict(data)
