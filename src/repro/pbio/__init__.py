"""PBIO — Portable Binary Input/Output.

A record-oriented binary communication substrate with *out-of-band*
meta-data (format descriptions travel through a shared
:class:`FormatRegistry`, not inline with the data) and dynamic code
generation of specialized encode/decode routines.

Quick use::

    from repro.pbio import IOField, IOFormat, PBIOContext

    fmt = IOFormat("Msg", [
        IOField("load", "integer"),
        IOField("mem", "integer"),
        IOField("net", "integer"),
    ])
    ctx = PBIOContext()
    wire = ctx.encode(fmt, fmt.make_record(load=1, mem=2, net=3))
    decoded_fmt, record = ctx.decode(wire)
"""

from repro.pbio.buffer import (
    FLAG_BIG_ENDIAN,
    HEADER_SIZE,
    MessageHeader,
    pack_header,
    unpack_header,
)
from repro.pbio.context import PBIOContext
from repro.pbio.decode import decode_message, decode_record, peek_format_id
from repro.pbio.encode import encode_record, encoded_size, native_size
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record, make_record, records_equal, trusted_record
from repro.pbio.registry import FormatRegistry, TransformSpec
from repro.pbio.server import CachingFormatResolver, FormatServer
from repro.pbio.serialization import (
    dump_registry,
    format_from_dict,
    format_to_dict,
    load_registry,
    registry_from_dict,
    registry_to_dict,
)
from repro.pbio.types import TypeKind

__all__ = [
    "ArraySpec",
    "CachingFormatResolver",
    "FLAG_BIG_ENDIAN",
    "FormatRegistry",
    "FormatServer",
    "HEADER_SIZE",
    "IOField",
    "IOFormat",
    "MessageHeader",
    "PBIOContext",
    "Record",
    "TransformSpec",
    "TypeKind",
    "decode_message",
    "decode_record",
    "dump_registry",
    "encode_record",
    "encoded_size",
    "format_from_dict",
    "format_to_dict",
    "load_registry",
    "registry_from_dict",
    "registry_to_dict",
    "make_record",
    "native_size",
    "pack_header",
    "peek_format_id",
    "records_equal",
    "trusted_record",
    "unpack_header",
]
