"""IOField — one field of a PBIO record format.

Mirrors the paper's ``IOField`` declaration (Figure 2)::

    IOField Msg_field[] = {
        {"load", integer, sizeof(int), IOOffset(MsgP, load)},
        ...
    };

We drop the C struct offset (Python records are name-addressed) and add two
features present in real PBIO but elided in the figure: nested complex
fields and arrays.  Variable-length arrays take their element count from a
sibling integer field, exactly like PBIO var-arrays (the ECho member list
is ``member_list`` counted by ``member_count``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import FormatError
from repro.pbio.types import TypeKind, default_value, validate_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.pbio.format import IOFormat


@dataclass(frozen=True)
class ArraySpec:
    """Array-ness of a field.

    Exactly one of ``fixed_length`` / ``length_field`` is set:

    * ``fixed_length=n``  — a static array of *n* elements,
    * ``length_field=s``  — a variable array whose element count is carried
      by the integer field named *s* in the same record.
    """

    fixed_length: Optional[int] = None
    length_field: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.fixed_length is None) == (self.length_field is None):
            raise FormatError(
                "ArraySpec requires exactly one of fixed_length/length_field"
            )
        if self.fixed_length is not None and self.fixed_length < 0:
            raise FormatError("fixed array length must be >= 0")

    @property
    def is_variable(self) -> bool:
        return self.length_field is not None


class IOField:
    """One named, typed field of an :class:`~repro.pbio.format.IOFormat`.

    Parameters
    ----------
    name:
        Wire name of the field.  Morphing matches fields by this name
        (XML-style name-based type mapping, Section 2 of the paper).
    kind:
        A :class:`TypeKind` or its string value (``"integer"``...).
    size:
        Scalar wire size in bytes; 0/None selects the kind's default.
    subformat:
        For ``COMPLEX`` fields, the nested :class:`IOFormat`.
    array:
        Optional :class:`ArraySpec` making this field an array of its base
        type.
    default:
        Value morphing fills in when this field is missing from an incoming
        message; falls back to the kind's zero value.
    importance:
        Relative weight of this field for the *weighted* MaxMatch variant
        (the paper's future-work extension: "the ability to weight
        different fields and sub-fields based on some measure of
        importance").  Defaults to 1.0; a field a deployment cannot live
        without gets a high value, an optional annotation a low one.
        Importance is matching policy, not wire structure, so it does not
        participate in format fingerprints or equality.
    """

    __slots__ = ("name", "kind", "size", "subformat", "array", "_default",
                 "importance")

    def __init__(
        self,
        name: str,
        kind: "TypeKind | str",
        size: int = 0,
        subformat: "Optional[IOFormat]" = None,
        array: Optional[ArraySpec] = None,
        default: Any = None,
        importance: float = 1.0,
    ) -> None:
        if not name or not isinstance(name, str):
            raise FormatError(f"field name must be a non-empty string, got {name!r}")
        if isinstance(kind, str):
            try:
                kind = TypeKind(kind)
            except ValueError:
                raise FormatError(f"unknown field kind {kind!r}") from None
        self.name = name
        self.kind = kind
        if kind is TypeKind.COMPLEX:
            if subformat is None:
                raise FormatError(f"complex field {name!r} requires a subformat")
            self.size = 0
        else:
            if subformat is not None:
                raise FormatError(f"basic field {name!r} cannot have a subformat")
            self.size = validate_size(kind, size)
        self.subformat = subformat
        self.array = array
        self._default = default
        if importance < 0:
            raise FormatError(f"field {name!r} importance must be >= 0")
        self.importance = float(importance)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_basic(self) -> bool:
        return self.kind.is_basic

    @property
    def is_complex(self) -> bool:
        return self.kind is TypeKind.COMPLEX

    @property
    def is_array(self) -> bool:
        return self.array is not None

    def default_instance(self) -> Any:
        """A fresh default value for this field (used for morphing fill)."""
        if self.is_array:
            if self.array is not None and self.array.fixed_length is not None:
                return [self._element_default() for _ in range(self.array.fixed_length)]
            return []
        return self._element_default()

    def element_default(self) -> Any:
        """A fresh default for one *element* of this field (for arrays,
        the per-entry default rather than the whole-array default)."""
        return self._element_default()

    def min_wire_size(self) -> int:
        """Fewest payload bytes one *element* of this field can occupy.

        Strings cost at least their 4-byte length prefix; complex elements
        cost their subformat's minimum.  Decoders use this to reject
        corrupt variable-array counts before looping (a count field
        claiming more elements than the remaining bytes could possibly
        hold is malformed, not merely truncated)."""
        if self.is_complex:
            assert self.subformat is not None
            return self.subformat.min_wire_size
        if self.kind is TypeKind.STRING:
            return 4
        return self.size

    def _element_default(self) -> Any:
        if self._default is not None and not self.is_complex:
            return self._default
        if self.is_complex:
            assert self.subformat is not None
            return self.subformat.default_record()
        return default_value(self.kind)

    # ------------------------------------------------------------------
    # Structural identity (used for format fingerprints and field matching)
    # ------------------------------------------------------------------

    def signature(self) -> tuple:
        """A hashable structural description, recursing into subformats."""
        sub = self.subformat.signature() if self.subformat is not None else None
        arr = (
            (self.array.fixed_length, self.array.length_field)
            if self.array is not None
            else None
        )
        return (self.name, self.kind.value, self.size, arr, sub)

    def matches(self, other: "IOField") -> bool:
        """Name-and-kind match used by the ``diff`` algorithm.

        The paper matches fields by *name and type*; sizes may differ
        between old and new formats (e.g. a widened integer) without
        breaking the match, and array-ness must agree.
        """
        return (
            self.name == other.name
            and self.kind is other.kind
            and self.is_array == other.is_array
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arr = ""
        if self.array is not None:
            arr = (
                f"[{self.array.fixed_length}]"
                if self.array.fixed_length is not None
                else f"[{self.array.length_field}]"
            )
        if self.is_complex:
            assert self.subformat is not None
            return f"IOField({self.name!r}, {self.subformat.name}{arr})"
        return f"IOField({self.name!r}, {self.kind.value}:{self.size}{arr})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOField):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())
