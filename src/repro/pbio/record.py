"""Record — the in-memory representation of a PBIO message.

The C implementation hands applications raw structs; our Python analogue is
a dict subclass with attribute access, so application code (and generated
ECode) can write either ``rec["member_count"]`` or ``rec.member_count`` —
the latter keeps transformation snippets looking like the paper's Figure 5
(``old.member_count = new.member_count``).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping


_SCALAR_TYPES = (int, float, str, bool, bytes, type(None))


class Record(dict):
    """A dict with attribute-style access to its keys.

    Unknown attribute reads raise :class:`AttributeError` (so ``hasattr``
    works); attribute writes create keys.  Nested mappings passed to the
    constructor are converted to :class:`Record` recursively so that
    ``rec.member_list[0].info`` works on plain-dict input.

    .. caution:: Attribute access is a convenience layered over ``dict``:
       a field whose name collides with a dict method (``items``,
       ``keys``, ``get``, ...) resolves to the method, not the field.
       Use subscripting (``rec["items"]``) for such names — generated
       ECode and all library internals always do.
    """

    __slots__ = ()

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        for key, value in list(self.items()):
            self[key] = _convert(value)

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        self[name] = value

    def __delattr__(self, name: str) -> None:
        try:
            del self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setitem__(self, key: str, value: Any) -> None:
        # fast path: scalar writes dominate generated transform code
        if value.__class__ in _SCALAR_TYPES:
            super().__setitem__(key, value)
        else:
            super().__setitem__(key, _convert(value))

    def copy(self) -> "Record":
        return Record(self)

    def deepcopy(self) -> "Record":
        """A structural deep copy (records and lists; scalars shared)."""
        return Record({key: _deepcopy(value) for key, value in self.items()})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.items())
        return f"Record({inner})"


def _convert(value: Any) -> Any:
    """Convert nested plain mappings/sequences into Record/list.

    List *subclasses* (notably the ECode runtime's auto-growing
    ``AutoList``) pass through untouched — they manage their own element
    conversion and must keep their type."""
    if isinstance(value, Record):
        return value
    if isinstance(value, Mapping):
        return Record(value)
    if type(value) is list or type(value) is tuple:
        return [_convert(item) for item in value]
    return value


def _deepcopy(value: Any) -> Any:
    if isinstance(value, Record):
        return value.deepcopy()
    if isinstance(value, list):
        return [_deepcopy(item) for item in value]
    return value


def trusted_record(mapping: Mapping[str, Any]) -> Record:
    """Build a :class:`Record` without recursive conversion.

    Used by generated (DCG) decode routines whose nested values are already
    Records/lists; skipping ``__setitem__`` conversion is a measurable part
    of the specialized decoder's advantage.
    """
    rec = Record.__new__(Record)
    dict.update(rec, mapping)
    return rec


def records_equal(a: Any, b: Any) -> bool:
    """Structural equality that tolerates Record-vs-dict differences and
    int/float identity (4-byte float round-trips compare approximately)."""
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if set(a.keys()) != set(b.keys()):
            return False
        return all(records_equal(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return False
        return all(records_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) or isinstance(b, float):
        try:
            af, bf = float(a), float(b)
        except (TypeError, ValueError):
            return False
        if af == bf:
            return True
        if math.isnan(af) and math.isnan(bf):
            # Two NaN payloads decoded from the same bytes are the same
            # value for structural purposes.
            return True
        scale = max(abs(af), abs(bf), 1.0)
        return abs(af - bf) / scale < 1e-6
    return bool(a == b)


def make_record(values: "Mapping[str, Any] | Iterable[tuple]" = (), **kwargs: Any) -> Record:
    """Convenience constructor: ``make_record(cpu=1, memory=2)``."""
    rec = Record(values)
    for key, value in kwargs.items():
        rec[key] = value
    return rec
