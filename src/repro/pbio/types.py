"""PBIO type system.

The paper (Section 3.2) distinguishes two kinds of fields:

* **basic** types: integer, unsigned integer, float, char, enumeration and
  string (we also carry an explicit boolean, used by the ECho v2.0
  ``ChannelOpenResponse`` format's ``is_Source``/``is_Sink`` flags),
* **complex** types: records composed of other basic and complex fields.

Each basic kind has a set of legal wire sizes and a Python-side default
value used when morphing has to fill in a missing field.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Tuple

from repro.errors import FormatError


class TypeKind(enum.Enum):
    """The kind of a PBIO field."""

    INTEGER = "integer"
    UNSIGNED = "unsigned"
    FLOAT = "float"
    CHAR = "char"
    ENUMERATION = "enumeration"
    STRING = "string"
    BOOLEAN = "boolean"
    COMPLEX = "complex"

    @property
    def is_basic(self) -> bool:
        """True for the scalar kinds the paper calls *basic*."""
        return self is not TypeKind.COMPLEX


#: Legal wire sizes (bytes) per scalar kind; strings are length-prefixed and
#: have no fixed size, so they accept size 0 only.
LEGAL_SIZES: Dict[TypeKind, Tuple[int, ...]] = {
    TypeKind.INTEGER: (1, 2, 4, 8),
    TypeKind.UNSIGNED: (1, 2, 4, 8),
    TypeKind.FLOAT: (4, 8),
    TypeKind.CHAR: (1,),
    TypeKind.ENUMERATION: (1, 2, 4, 8),
    TypeKind.BOOLEAN: (1,),
    TypeKind.STRING: (0,),
}

#: Default wire size per scalar kind (mirrors common C sizes on the paper's
#: 32-bit-era testbed: ``sizeof(int) == 4``).
DEFAULT_SIZES: Dict[TypeKind, int] = {
    TypeKind.INTEGER: 4,
    TypeKind.UNSIGNED: 4,
    TypeKind.FLOAT: 8,
    TypeKind.CHAR: 1,
    TypeKind.ENUMERATION: 4,
    TypeKind.BOOLEAN: 1,
    TypeKind.STRING: 0,
}

#: ``struct`` pack codes keyed by (kind, size).  Little-endian is applied by
#: the buffer layer.
STRUCT_CODES: Dict[Tuple[TypeKind, int], str] = {
    (TypeKind.INTEGER, 1): "b",
    (TypeKind.INTEGER, 2): "h",
    (TypeKind.INTEGER, 4): "i",
    (TypeKind.INTEGER, 8): "q",
    (TypeKind.UNSIGNED, 1): "B",
    (TypeKind.UNSIGNED, 2): "H",
    (TypeKind.UNSIGNED, 4): "I",
    (TypeKind.UNSIGNED, 8): "Q",
    (TypeKind.ENUMERATION, 1): "B",
    (TypeKind.ENUMERATION, 2): "H",
    (TypeKind.ENUMERATION, 4): "I",
    (TypeKind.ENUMERATION, 8): "Q",
    (TypeKind.FLOAT, 4): "f",
    (TypeKind.FLOAT, 8): "d",
    (TypeKind.BOOLEAN, 1): "?",
    (TypeKind.CHAR, 1): "c",
}

#: Signed integer value ranges keyed by size, for encode-time validation.
SIGNED_RANGES: Dict[int, Tuple[int, int]] = {
    1: (-(2**7), 2**7 - 1),
    2: (-(2**15), 2**15 - 1),
    4: (-(2**31), 2**31 - 1),
    8: (-(2**63), 2**63 - 1),
}

UNSIGNED_RANGES: Dict[int, Tuple[int, int]] = {
    1: (0, 2**8 - 1),
    2: (0, 2**16 - 1),
    4: (0, 2**32 - 1),
    8: (0, 2**64 - 1),
}


def validate_size(kind: TypeKind, size: int) -> int:
    """Return *size* (or the kind's default when size is 0/None) after
    checking it is legal for *kind*.

    Raises :class:`FormatError` for illegal (kind, size) combinations.
    """
    if kind is TypeKind.COMPLEX:
        raise FormatError("complex fields have no scalar size")
    if not size:
        return DEFAULT_SIZES[kind]
    if size not in LEGAL_SIZES[kind]:
        raise FormatError(f"illegal size {size} for {kind.value} field")
    return size


def default_value(kind: TypeKind) -> Any:
    """The fill-in value used by morphing when a field has no explicit
    default (XML-style type mapping semantics, Section 2)."""
    if kind in (TypeKind.INTEGER, TypeKind.UNSIGNED, TypeKind.ENUMERATION):
        return 0
    if kind is TypeKind.FLOAT:
        return 0.0
    if kind is TypeKind.BOOLEAN:
        return False
    if kind is TypeKind.CHAR:
        return "\x00"
    if kind is TypeKind.STRING:
        return ""
    raise FormatError(f"no scalar default for {kind.value}")


def coerce_value(kind: TypeKind, value: Any) -> Any:
    """Coerce a Python value to the canonical runtime representation of
    *kind* (e.g. ints for enumerations, single-char str for char)."""
    if kind in (TypeKind.INTEGER, TypeKind.UNSIGNED, TypeKind.ENUMERATION):
        return int(value)
    if kind is TypeKind.FLOAT:
        return float(value)
    if kind is TypeKind.BOOLEAN:
        return bool(value)
    if kind is TypeKind.CHAR:
        text = str(value) if not isinstance(value, bytes) else value.decode("latin-1")
        if len(text) != 1:
            raise FormatError(f"char field requires a single character, got {value!r}")
        return text
    if kind is TypeKind.STRING:
        return str(value)
    raise FormatError(f"cannot coerce scalar for {kind.value}")
