"""Dynamic code generation of specialized PBIO encode/decode routines.

This is the Python analogue of PBIO's dynamic binary code generation
(Section 1 and [12] of the paper): on first contact with a format, the
library *generates source code* for a conversion routine specialized to
that exact format, compiles it, and caches the resulting callable.  All
subsequent messages of the format run the specialized routine.

Key specializations performed (mirroring what PBIO's DCG buys over a
field-walking interpreter):

* consecutive fixed-width scalar fields are fused into a single
  ``struct`` pack/unpack call with a precompiled ``Struct`` object,
* the format tree is fully inlined — no per-field dispatch, no recursion,
* records are built through a trusted constructor that skips conversion.

The generated source for any format can be inspected via
:func:`decoder_source` / :func:`encoder_source`, which is also how the
test suite audits the generated code.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DecodeError, EncodeError
from repro.obs.tracectx import TraceContext, encode_block
from repro.pbio.decode import ZERO_SIZE_ELEMENT_CAP
from repro.pbio.buffer import (
    FLAG_BIG_ENDIAN,
    HEADER_SIZE,
    ORDER_PREFIX,
    pack_header,
    unpack_header,
)
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record, trusted_record
from repro.pbio.types import STRUCT_CODES, TypeKind

DecoderFn = Callable[[bytes], Record]
EncoderFn = Callable[[Any], bytes]


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self._counter = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _scalar_runs(fields: Tuple[IOField, ...]) -> List[List[IOField]]:
    """Group the top-level fields into runs of fuse-able scalars and
    singleton non-fusable fields, preserving order.

    A field is fuse-able when it is a non-array basic scalar with a fixed
    struct code (everything except strings and chars; chars decode to str
    so they stay singletons)."""
    runs: List[List[IOField]] = []
    current: List[IOField] = []
    for field in fields:
        fusable = (
            field.is_basic
            and not field.is_array
            and field.kind not in (TypeKind.STRING, TypeKind.CHAR)
        )
        if fusable:
            current.append(field)
        else:
            if current:
                runs.append(current)
                current = []
            runs.append([field])
    if current:
        runs.append(current)
    return runs


def _struct_for_run(
    run: List[IOField], structs: "_StructTable"
) -> Tuple[int, int]:
    """Register a precompiled Struct for a scalar run; returns its index in
    *structs* and its packed size."""
    codes = "".join(STRUCT_CODES[(f.kind, f.size)] for f in run)
    packer = struct.Struct(structs.order + codes)
    structs.append(packer)
    return len(structs) - 1, packer.size


class _StructTable(list):
    """The per-routine table of precompiled Structs, tagged with the
    byte-order prefix its entries were built with."""

    def __init__(self, order: str) -> None:
        super().__init__()
        self.order = order


# ---------------------------------------------------------------------------
# Decoder generation
# ---------------------------------------------------------------------------


def _gen_decode_format(
    em: _Emitter,
    fmt: IOFormat,
    structs: "_StructTable",
    data: str,
    end: str,
    out_var: str,
    live: Optional[Set[str]] = None,
) -> None:
    """Emit code decoding one record of *fmt* into dict var *out_var*.

    Uses the running local ``off`` as the cursor.  Field values land in
    fresh locals, then a single dict literal builds the record.

    When *live* is given (whole-route fusion), only those top-level
    fields are materialized in the record.  Dead fields still advance the
    cursor and keep every validation the full decode performs — count
    guards, bounds checks, UTF-8 decoding of strings — so hostile wires
    produce byte-for-byte the same accept/reject outcome; fixed-width
    dead fields are *skipped arithmetically* instead of unpacked, which
    is where the win comes from.  Variable-array count fields are always
    unpacked (the skip arithmetic needs them) but stay out of the record
    unless live themselves.
    """
    value_vars: Dict[str, str] = {}
    count_fields = {
        f.array.length_field
        for f in fmt.fields
        if f.array is not None and f.array.length_field
    }

    def _needed(f: IOField) -> bool:
        return live is None or f.name in live or f.name in count_fields

    for run in _scalar_runs(fmt.fields):
        field = run[0]
        if len(run) > 1 or (
            field.is_basic
            and not field.is_array
            and field.kind not in (TypeKind.STRING, TypeKind.CHAR)
        ):
            if live is not None and not any(_needed(f) for f in run):
                codes = "".join(STRUCT_CODES[(f.kind, f.size)] for f in run)
                size = struct.calcsize(structs.order + codes)
                _gen_skip_bytes(em, str(size), data, end,
                                f"truncated message in format {fmt.name}")
                continue
            idx, size = _struct_for_run(run, structs)
            targets = [em.fresh("v") for _ in run]
            for f, var in zip(run, targets):
                value_vars[f.name] = var
            lhs = ", ".join(targets)
            if len(targets) == 1:
                lhs += ","
            em.emit(f"{lhs} = _S[{idx}].unpack_from({data}, off)")
            em.emit(f"off += {size}")
            continue
        dead = live is not None and not _needed(field)
        var = em.fresh("v")
        if not dead:
            value_vars[field.name] = var
        if field.is_array:
            if dead and _arith_skippable(field):
                _gen_skip_array(em, field, structs, data, end, value_vars)
            else:
                _gen_decode_array(em, field, structs, data, end, var, value_vars)
        elif dead and field.kind is TypeKind.CHAR:
            _gen_skip_bytes(em, "1", data, end,
                            f"truncated char field {field.name}")
        else:
            # dead strings are still UTF-8-decoded (into a throwaway) and
            # dead complex fields still walked: their validation is part
            # of the accept/reject contract.
            _gen_decode_single(em, field, structs, data, end, var)
    items = ", ".join(
        f"{f.name!r}: {value_vars[f.name]}"
        for f in fmt.fields
        if f.name in value_vars and (live is None or f.name in live)
    )
    em.emit(f"{out_var} = _mk({{{items}}})")


def _arith_skippable(field: IOField) -> bool:
    """Arrays whose elements have a fixed wire width and need no
    validation beyond a bounds check."""
    return field.is_basic and field.kind is not TypeKind.STRING


def _element_width(field: IOField, structs: "_StructTable") -> int:
    if field.kind is TypeKind.CHAR:
        return 1
    return struct.calcsize(structs.order + STRUCT_CODES[(field.kind, field.size)])


def _gen_skip_bytes(
    em: _Emitter, size_expr: str, data: str, end: str, message: str
) -> None:
    """Advance the cursor over dead fixed-width bytes.

    The guard checks both the claimed payload end *and* the real buffer
    length: the full decoder's ``unpack_from`` raises on short buffers
    even when the header over-claims, and the skip must reject the exact
    same wires."""
    em.emit(f"if off + {size_expr} > {end} or off + {size_expr} > len({data}):")
    em.indent += 1
    em.emit(f"raise _DecodeError({message!r})")
    em.indent -= 1
    em.emit(f"off += {size_expr}")


def _gen_skip_array(
    em: _Emitter,
    field: IOField,
    structs: "_StructTable",
    data: str,
    end: str,
    value_vars: Dict[str, str],
) -> None:
    """Skip a dead array of fixed-width elements: same count guard as the
    decoding path, then one cursor bump instead of a per-element loop."""
    spec = field.array
    assert spec is not None
    width = _element_width(field, structs)
    if spec.fixed_length is not None:
        _gen_skip_bytes(em, str(spec.fixed_length * width), data, end,
                        f"truncated array field {field.name}")
        return
    count_expr = value_vars.get(spec.length_field)
    if count_expr is None:  # count field precedes array per IOFormat check
        raise DecodeError(
            f"array {field.name!r} count field decoded after the array"
        )
    per_element = field.min_wire_size()
    if per_element:
        budget = f"({end} - off) // {per_element}"
    else:  # pragma: no cover - fixed-width elements are never zero-size
        budget = str(ZERO_SIZE_ELEMENT_CAP)
    em.emit(f"if {count_expr} < 0 or {count_expr} > {budget}:")
    em.indent += 1
    em.emit(
        f"raise _DecodeError('bad element count %r for {field.name}'"
        f" % ({count_expr},))"
    )
    em.indent -= 1
    # the count guard bounds the elements against the claimed end; the
    # real buffer may still be shorter than the header claims
    em.emit(f"if off + {count_expr} * {width} > len({data}):")
    em.indent += 1
    em.emit(f"raise _DecodeError('truncated array field {field.name}')")
    em.indent -= 1
    em.emit(f"off += {count_expr} * {width}")


def _gen_decode_array(
    em: _Emitter,
    field: IOField,
    structs: List[struct.Struct],
    data: str,
    end: str,
    var: str,
    value_vars: Dict[str, str],
) -> None:
    spec = field.array
    assert spec is not None
    if spec.fixed_length is not None:
        count_expr = str(spec.fixed_length)
    else:
        count_var = value_vars.get(spec.length_field)
        if count_var is None:  # count field precedes array per IOFormat check
            raise DecodeError(
                f"array {field.name!r} count field decoded after the array"
            )
        count_expr = count_var
        # Mirror the generic decoder's corrupt-count guard: the count must
        # be non-negative and must fit the remaining payload bytes given
        # the element's minimum wire footprint.
        per_element = field.min_wire_size()
        if per_element:
            budget = f"({end} - off) // {per_element}"
        else:
            budget = str(ZERO_SIZE_ELEMENT_CAP)
        em.emit(f"if {count_expr} < 0 or {count_expr} > {budget}:")
        em.indent += 1
        em.emit(
            f"raise _DecodeError('bad element count %r for {field.name}'"
            f" % ({count_expr},))"
        )
        em.indent -= 1
    em.emit(f"{var} = []")
    append = em.fresh("app")
    em.emit(f"{append} = {var}.append")
    loop = em.fresh("i")
    em.emit(f"for {loop} in range({count_expr}):")
    em.indent += 1
    element = em.fresh("e")
    _gen_decode_single(em, field, structs, data, end, element)
    em.emit(f"{append}({element})")
    em.indent -= 1


def _gen_decode_single(
    em: _Emitter,
    field: IOField,
    structs: List[struct.Struct],
    data: str,
    end: str,
    var: str,
) -> None:
    kind = field.kind
    if kind is TypeKind.COMPLEX:
        assert field.subformat is not None
        _gen_decode_format(em, field.subformat, structs, data, end, var)
        return
    if kind is TypeKind.STRING:
        length = em.fresh("n")
        em.emit(f"({length},) = _U32.unpack_from({data}, off)")
        em.emit("off += 4")
        em.emit(f"if off + {length} > {end}:")
        em.indent += 1
        em.emit(f"raise _DecodeError('truncated string field {field.name}')")
        em.indent -= 1
        # str(buf, 'utf-8') instead of buf.decode so the generated code
        # accepts memoryview slices (the zero-copy batch path) as well as
        # bytes; both raise UnicodeDecodeError on invalid input
        em.emit(f"{var} = str({data}[off:off + {length}], 'utf-8')")
        em.emit(f"off += {length}")
        return
    if kind is TypeKind.CHAR:
        em.emit(f"if off >= {end}:")
        em.indent += 1
        em.emit(f"raise _DecodeError('truncated char field {field.name}')")
        em.indent -= 1
        em.emit(f"{var} = chr({data}[off])")
        em.emit("off += 1")
        return
    # lone scalar (inside an array loop)
    idx, size = _struct_for_run([field], structs)
    em.emit(f"({var},) = _S[{idx}].unpack_from({data}, off)")
    em.emit(f"off += {size}")


def decoder_source(
    fmt: IOFormat,
    order: str = "<",
    live: Optional[Set[str]] = None,
) -> Tuple[str, List[struct.Struct]]:
    """Generate the Python source of a specialized decoder for *fmt*.

    Returns ``(source, structs)`` where *structs* is the table of
    precompiled Struct objects the source references as ``_S[i]``.
    *order* is the payload byte order the routine is specialized for.
    *live*, when given, restricts the materialized top-level fields (see
    :func:`_gen_decode_format`); the full-record decoders used outside
    route fusion always pass ``None``.
    """
    structs = _StructTable(order)
    em = _Emitter()
    em.emit(f"def _decode(data, off, end):")
    em.indent += 1
    em.emit(f'"""Specialized decoder for format {fmt.name!r} '
            f"(id {fmt.format_id:#x}).\"\"\"")
    _gen_decode_format(em, fmt, structs, "data", "end", "_result", live=live)
    em.emit("return _result, off")
    return em.source(), structs


def make_payload_decoder(
    fmt: IOFormat, order: str = "<"
) -> Callable[[bytes, int, int], Tuple[Record, int]]:
    """Compile and return ``decode(data, off, end) -> (record, new_off)``
    specialized for payloads in *order*."""
    source, structs = decoder_source(fmt, order)
    namespace: Dict[str, Any] = {
        "_S": structs,
        "_U32": struct.Struct(order + "I"),
        "_mk": trusted_record,
        "_DecodeError": DecodeError,
    }
    code = compile(source, f"<pbio-decoder:{fmt.name}:{order}>", "exec")
    exec(code, namespace)
    return namespace["_decode"]


def make_checked_payload_decoder(
    fmt: IOFormat, order: str = "<"
) -> Callable[[bytes, int, int], Tuple[Record, int]]:
    """A :func:`make_payload_decoder` routine wrapped with the full
    decoder's error mapping and trailing-bytes validation, still taking
    ``(data, off, end)`` and returning ``(record, consumed_offset)`` —
    the zero-copy entry point for batch receivers that have already
    parsed the message header themselves."""
    payload_decoder = make_payload_decoder(fmt, order)

    def decode(data: bytes, start: int, end: int) -> Tuple[Record, int]:
        try:
            record, off = payload_decoder(data, start, end)
        except struct.error as exc:
            raise DecodeError(f"truncated message for {fmt.name!r}: {exc}") from None
        except UnicodeDecodeError as exc:
            raise DecodeError(
                f"invalid UTF-8 in string field of {fmt.name!r}: {exc}"
            ) from None
        except (IndexError, KeyError, MemoryError, OverflowError) as exc:
            raise DecodeError(
                f"corrupt message for {fmt.name!r}: {exc!r}"
            ) from None
        if off != end:
            raise DecodeError(
                f"{end - off} trailing bytes after decoding format {fmt.name!r}"
            )
        return record, off

    decode.__name__ = f"decode_payload_{fmt.name}"
    return decode


def make_decoder(fmt: IOFormat) -> DecoderFn:
    """Compile a full-message decoder: checks the header, verifies the
    format id, decodes the payload with the specialized routine.

    The little-endian payload decoder is generated eagerly; a big-endian
    variant is generated lazily on first sight of the header flag
    (receiver-makes-right: the conversion cost lands on the reader, and
    only when orders actually differ)."""
    payload_decoders = {"<": make_payload_decoder(fmt, "<")}
    expected_id = fmt.format_id

    def decode(data: bytes) -> Record:
        header = unpack_header(data)
        if header.format_id != expected_id:
            raise DecodeError(
                f"message format id {header.format_id:#x} does not match "
                f"decoder for {fmt.name!r} ({expected_id:#x})"
            )
        order = ">" if header.flags & FLAG_BIG_ENDIAN else "<"
        payload_decoder = payload_decoders.get(order)
        if payload_decoder is None:
            payload_decoder = make_payload_decoder(fmt, order)
            payload_decoders[order] = payload_decoder
        start = header.body_offset
        end = start + header.payload_length
        try:
            record, off = payload_decoder(data, start, end)
        except struct.error as exc:
            raise DecodeError(f"truncated message for {fmt.name!r}: {exc}") from None
        except UnicodeDecodeError as exc:
            raise DecodeError(
                f"invalid UTF-8 in string field of {fmt.name!r}: {exc}"
            ) from None
        except (IndexError, KeyError, MemoryError, OverflowError) as exc:
            raise DecodeError(
                f"corrupt message for {fmt.name!r}: {exc!r}"
            ) from None
        if off != end:
            raise DecodeError(
                f"{end - off} trailing bytes after decoding format {fmt.name!r}"
            )
        return record

    decode.__name__ = f"decode_{fmt.name}"
    return decode


# ---------------------------------------------------------------------------
# Encoder generation
# ---------------------------------------------------------------------------


def _gen_encode_format(
    em: _Emitter,
    fmt: IOFormat,
    structs: List[struct.Struct],
    rec: str,
) -> None:
    for run in _scalar_runs(fmt.fields):
        field = run[0]
        if len(run) > 1 or (
            field.is_basic
            and not field.is_array
            and field.kind not in (TypeKind.STRING, TypeKind.CHAR)
        ):
            idx, _size = _struct_for_run(run, structs)
            args = ", ".join(_coerced_load(rec, f) for f in run)
            em.emit(f"_ext(_S[{idx}].pack({args}))")
            continue
        if field.is_array:
            _gen_encode_array(em, field, structs, rec)
        else:
            _gen_encode_single(em, field, structs, f"{rec}[{field.name!r}]")


def _coerced_load(rec: str, field: IOField) -> str:
    expr = f"{rec}[{field.name!r}]"
    if field.kind is TypeKind.BOOLEAN:
        return f"bool({expr})"
    if field.kind is TypeKind.FLOAT:
        return expr
    return expr


def _gen_encode_array(
    em: _Emitter, field: IOField, structs: List[struct.Struct], rec: str
) -> None:
    spec = field.array
    assert spec is not None
    lst = em.fresh("lst")
    em.emit(f"{lst} = {rec}[{field.name!r}]")
    if spec.fixed_length is not None:
        em.emit(f"if len({lst}) != {spec.fixed_length}:")
        em.indent += 1
        em.emit(
            f"raise _EncodeError('fixed array {field.name} needs "
            f"{spec.fixed_length} elements, got %d' % len({lst}))"
        )
        em.indent -= 1
    else:
        em.emit(f"if len({lst}) != {rec}[{spec.length_field!r}]:")
        em.indent += 1
        em.emit(
            f"raise _EncodeError('variable array {field.name} length does "
            f"not match count field {spec.length_field}')"
        )
        em.indent -= 1
    element = em.fresh("el")
    em.emit(f"for {element} in {lst}:")
    em.indent += 1
    _gen_encode_single(em, field, structs, element)
    em.indent -= 1


def _gen_encode_single(
    em: _Emitter, field: IOField, structs: List[struct.Struct], expr: str
) -> None:
    kind = field.kind
    if kind is TypeKind.COMPLEX:
        assert field.subformat is not None
        sub = em.fresh("sub")
        em.emit(f"{sub} = {expr}")
        _gen_encode_format(em, field.subformat, structs, sub)
        return
    if kind is TypeKind.STRING:
        raw = em.fresh("b")
        em.emit(f"{raw} = {expr}.encode('utf-8')")
        em.emit(f"_ext(_U32.pack(len({raw})))")
        em.emit(f"_ext({raw})")
        return
    if kind is TypeKind.CHAR:
        raw = em.fresh("c")
        em.emit(f"{raw} = {expr}.encode('latin-1')")
        em.emit(f"if len({raw}) != 1:")
        em.indent += 1
        em.emit(f"raise _EncodeError('char field {field.name} needs 1 character')")
        em.indent -= 1
        em.emit(f"_ext({raw})")
        return
    idx, _size = _struct_for_run([field], structs)
    if kind is TypeKind.BOOLEAN:
        em.emit(f"_ext(_S[{idx}].pack(bool({expr})))")
    else:
        em.emit(f"_ext(_S[{idx}].pack({expr}))")


def encoder_source(fmt: IOFormat, order: str = "<") -> Tuple[str, List[struct.Struct]]:
    """Generate the Python source of a specialized payload encoder."""
    structs = _StructTable(order)
    em = _Emitter()
    em.emit("def _encode(rec):")
    em.indent += 1
    em.emit(f'"""Specialized encoder for format {fmt.name!r} '
            f"(id {fmt.format_id:#x}).\"\"\"")
    em.emit("buf = bytearray()")
    em.emit("_ext = buf.extend")
    _gen_encode_format(em, fmt, structs, "rec")
    em.emit("return buf")
    return em.source(), structs


def make_payload_encoder(fmt: IOFormat, order: str = "<") -> Callable[[Any], bytearray]:
    source, structs = encoder_source(fmt, order)
    namespace: Dict[str, Any] = {
        "_S": structs,
        "_U32": struct.Struct(order + "I"),
        "_EncodeError": EncodeError,
    }
    code = compile(source, f"<pbio-encoder:{fmt.name}:{order}>", "exec")
    exec(code, namespace)
    return namespace["_encode"]


def make_encoder(fmt: IOFormat, byte_order: str = "little") -> EncoderFn:
    """Compile a full-message encoder (header + payload) for *fmt*,
    writing payload scalars in the writer's *byte_order*."""
    try:
        order = ORDER_PREFIX[byte_order]
    except KeyError:
        raise EncodeError(f"unknown byte order {byte_order!r}") from None
    payload_encoder = make_payload_encoder(fmt, order)
    format_id = fmt.format_id
    flags = FLAG_BIG_ENDIAN if byte_order == "big" else 0

    def encode(rec: Any) -> bytes:
        try:
            payload = payload_encoder(rec)
        except struct.error as exc:
            raise EncodeError(f"cannot encode record of {fmt.name!r}: {exc}") from None
        except (KeyError, TypeError) as exc:
            raise EncodeError(
                f"record does not conform to format {fmt.name!r}: {exc!r}"
            ) from None
        except AttributeError as exc:
            raise EncodeError(
                f"bad field value for format {fmt.name!r}: {exc}"
            ) from None
        return pack_header(format_id, len(payload), flags=flags) + bytes(payload)

    encode.__name__ = f"encode_{fmt.name}"
    return encode


# ---------------------------------------------------------------------------
# Vectorized batch encoder generation
# ---------------------------------------------------------------------------

#: Offset of the little-endian u32 payload-length word inside a packed
#: PBIO header (the last field of ``repro.pbio.buffer.HEADER``).
_PAYLOAD_LEN_OFFSET = struct.calcsize("<IBBHQ")

BatchEncoderFn = Callable[..., bytes]


def batch_encoder_source(
    fmts: Sequence[IOFormat], order: str = "<"
) -> Tuple[str, List[struct.Struct]]:
    """Generate the source of a vectorized BATCH1 frame encoder.

    The routine takes ``(rows, trace_block)`` where every *row* is a
    sequence holding one record per format in *fmts*, and packs all K
    rows straight into one BATCH1 frame held in a **single** buffer: no
    per-message ``bytes`` objects, no per-message header re-packing.
    Each segment's u32 length prefix and each contained message's header
    length word start as placeholders and are patched in place once the
    segment's fields have landed, so variable-width fields (strings,
    arrays) need no pre-measuring pass.
    """
    structs = _StructTable(order)
    em = _Emitter()
    em.emit("def _encode_batch(rows, trace_block):")
    em.indent += 1
    names = "+".join(f.name for f in fmts)
    em.emit(f'"""Vectorized BATCH1 encoder for {names!r} rows."""')
    em.emit("count = len(rows)")
    em.emit("buf = bytearray()")
    em.emit("_ext = buf.extend")
    em.emit("if trace_block is None:")
    em.indent += 1
    em.emit("_ext(_BH.pack(_BMAGIC, _BVER, 0, count))")
    em.indent -= 1
    em.emit("else:")
    em.indent += 1
    em.emit("_ext(_BH.pack(_BMAGIC, _BVER, _BTRACE, count))")
    em.emit("_ext(trace_block)")
    em.indent -= 1
    rec_vars = [f"_r{i}" for i in range(len(fmts))]
    em.emit("for _row in rows:")
    em.indent += 1
    lhs = ", ".join(rec_vars)
    if len(rec_vars) == 1:
        lhs += ","
    em.emit(f"{lhs} = _row")
    em.emit("_seg = len(buf)")
    em.emit("_ext(_ZERO4)")
    for index, fmt in enumerate(fmts):
        em.emit("_m = len(buf)")
        em.emit(f"_ext(_H{index})")
        _gen_encode_format(em, fmt, structs, rec_vars[index])
        em.emit(
            f"_PL.pack_into(buf, _m + {_PAYLOAD_LEN_OFFSET}, "
            f"len(buf) - _m - {HEADER_SIZE})"
        )
    em.emit("_SL.pack_into(buf, _seg, len(buf) - _seg - 4)")
    em.indent -= 1
    em.emit("return bytes(buf)")
    return em.source(), structs


def make_batch_encoder(
    fmts: Sequence[IOFormat], byte_order: str = "little"
) -> BatchEncoderFn:
    """Compile ``encode_batch(rows, ctx=None) -> bytes``: one call packs
    K same-shape rows into a complete BATCH1 frame.

    Each row supplies one record per format in *fmts* (the echo layer
    uses ``(envelope, payload)`` pairs); a row's messages are
    concatenated into a single batch segment, exactly the shape
    :func:`repro.net.batch.pack_batch` produces from pre-encoded wires.
    Frames are byte-identical to the compose-then-pack path, and the
    ``net.batch.packed_*`` counters advance identically."""
    try:
        order = ORDER_PREFIX[byte_order]
    except KeyError:
        raise EncodeError(f"unknown byte order {byte_order!r}") from None
    fmts = tuple(fmts)
    if not fmts:
        raise EncodeError("batch encoder needs at least one format")
    # net.batch never imports pbio, but keep the dependency lazy anyway:
    # codegen stays importable from the lowest layers.
    from repro.net.batch import (
        BATCH_FLAG_TRACE,
        BATCH_HEADER,
        BATCH_MAGIC,
        BATCH_VERSION,
        record_batch_packed,
    )

    source, structs = batch_encoder_source(fmts, order)
    flags = FLAG_BIG_ENDIAN if byte_order == "big" else 0
    namespace: Dict[str, Any] = {
        "_S": structs,
        "_U32": struct.Struct(order + "I"),
        "_EncodeError": EncodeError,
        "_BH": BATCH_HEADER,
        "_BMAGIC": BATCH_MAGIC,
        "_BVER": BATCH_VERSION,
        "_BTRACE": BATCH_FLAG_TRACE,
        "_ZERO4": b"\x00\x00\x00\x00",
        "_PL": struct.Struct("<I"),
        "_SL": struct.Struct(">I"),
    }
    for index, fmt in enumerate(fmts):
        namespace[f"_H{index}"] = pack_header(fmt.format_id, 0, flags=flags)
    label = "+".join(f.name for f in fmts)
    code = compile(source, f"<pbio-batch-encoder:{label}:{order}>", "exec")
    exec(code, namespace)
    raw = namespace["_encode_batch"]

    def encode_batch(
        rows: Sequence[Sequence[Any]], ctx: Optional[TraceContext] = None
    ) -> bytes:
        if not rows:
            # parity with pack_batch: an empty frame is invalid wire
            raise DecodeError("cannot pack an empty BATCH1 frame")
        trace_block = encode_block(ctx) if ctx is not None else None
        try:
            frame = raw(rows, trace_block)
        except struct.error as exc:
            raise EncodeError(
                f"cannot encode batch of {label!r}: {exc}"
            ) from None
        except (KeyError, TypeError, ValueError) as exc:
            raise EncodeError(
                f"batch row does not conform to ({label}): {exc!r}"
            ) from None
        except AttributeError as exc:
            raise EncodeError(
                f"bad field value in batch of {label!r}: {exc}"
            ) from None
        record_batch_packed(len(rows))
        return frame

    encode_batch.__name__ = f"encode_batch_{label}"
    return encode_batch
