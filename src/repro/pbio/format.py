"""IOFormat — a named PBIO record format (the message meta-data).

A format is the out-of-band schema a writer registers before sending
records: an ordered list of :class:`~repro.pbio.field.IOField`.  The
*base format* (paper terminology) is the top-level format describing an
entire message record; nested complex fields carry their own
:class:`IOFormat` as ``subformat``.

The module also implements the paper's **weight** metric ``W_f`` — the
total number of basic fields in a format, counting basic fields inside
complex fields recursively — which normalizes the Mismatch Ratio.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FormatError
from repro.pbio.field import IOField
from repro.pbio.record import Record
from repro.pbio.types import TypeKind, coerce_value


class IOFormat:
    """An ordered collection of fields with a wire name and a version tag.

    Parameters
    ----------
    name:
        Format name.  Morphing only considers formats *of the same name*
        as candidates for matching (Algorithm 2 line 4), so evolved
        revisions of one message keep one name.
    fields:
        Ordered :class:`IOField` sequence; names must be unique.
    version:
        Optional human-readable revision tag ("1.0", "2.0", ...).  Not part
        of the structural fingerprint semantics but carried in it so two
        structurally identical revisions get distinct wire ids.
    """

    __slots__ = ("name", "fields", "version", "_by_name", "_weight",
                 "_weighted_weight", "_format_id", "_min_wire_size")

    def __init__(
        self,
        name: str,
        fields: Sequence[IOField],
        version: Optional[str] = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise FormatError(f"format name must be a non-empty string, got {name!r}")
        fields = list(fields)
        if not fields:
            raise FormatError(f"format {name!r} must declare at least one field")
        by_name: Dict[str, IOField] = {}
        for field in fields:
            if field.name in by_name:
                raise FormatError(f"duplicate field {field.name!r} in format {name!r}")
            by_name[field.name] = field
        for field in fields:
            spec = field.array
            if spec is not None and spec.length_field is not None:
                counter = by_name.get(spec.length_field)
                if counter is None:
                    raise FormatError(
                        f"field {field.name!r} counts on missing field "
                        f"{spec.length_field!r} in format {name!r}"
                    )
                if counter.kind not in (TypeKind.INTEGER, TypeKind.UNSIGNED):
                    raise FormatError(
                        f"count field {spec.length_field!r} must be an integer kind"
                    )
                if fields.index(counter) >= fields.index(field):
                    raise FormatError(
                        f"count field {spec.length_field!r} must precede array "
                        f"{field.name!r} in format {name!r}"
                    )
        self.name = name
        self.fields = tuple(fields)
        self.version = version
        self._by_name = by_name
        self._weight: Optional[int] = None
        self._weighted_weight: Optional[float] = None
        self._format_id: Optional[int] = None
        self._min_wire_size: Optional[int] = None

    # ------------------------------------------------------------------
    # Lookup / iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[IOField]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, field_name: str) -> bool:
        return field_name in self._by_name

    def field(self, name: str) -> IOField:
        """Return the field named *name*, raising :class:`FormatError` if
        the format has no such field."""
        try:
            return self._by_name[name]
        except KeyError:
            raise FormatError(f"format {self.name!r} has no field {name!r}") from None

    def get_field(self, name: str) -> Optional[IOField]:
        return self._by_name.get(name)

    def field_names(self) -> List[str]:
        return [field.name for field in self.fields]

    def basic_fields(self) -> Iterator[IOField]:
        """Top-level basic fields, in declared order."""
        return (field for field in self.fields if field.is_basic)

    def complex_fields(self) -> Iterator[IOField]:
        return (field for field in self.fields if field.is_complex)

    def basic_field_paths(self) -> Iterator[Tuple[str, ...]]:
        """Dotted paths of every basic field, recursing through complex
        fields — the units the ``diff`` algorithm counts."""
        for field in self.fields:
            if field.is_basic:
                yield (field.name,)
            else:
                assert field.subformat is not None
                for sub_path in field.subformat.basic_field_paths():
                    yield (field.name,) + sub_path

    # ------------------------------------------------------------------
    # Weight (paper Section 3.2)
    # ------------------------------------------------------------------

    @property
    def weight(self) -> int:
        """``W_f``: total number of basic fields, recursing into complex
        fields.  Array-ness does not multiply weight — weight is a schema
        property, not a data property."""
        if self._weight is None:
            total = 0
            for field in self.fields:
                if field.is_basic:
                    total += 1
                else:
                    assert field.subformat is not None
                    total += field.subformat.weight
            self._weight = total
        return self._weight

    @property
    def weighted_weight(self) -> float:
        """Importance-weighted analogue of :attr:`weight`: the sum of
        every basic field's ``importance``, with a complex field's
        importance scaling its whole subtree.  Normalizes the weighted
        Mismatch Ratio (the paper's future-work MaxMatch refinement)."""
        if self._weighted_weight is None:
            total = 0.0
            for field in self.fields:
                if field.is_basic:
                    total += field.importance
                else:
                    assert field.subformat is not None
                    total += field.importance * field.subformat.weighted_weight
            self._weighted_weight = total
        return self._weighted_weight

    @property
    def min_wire_size(self) -> int:
        """Fewest payload bytes any record of this format can occupy on
        the wire (variable arrays may be empty, so they contribute only
        through their count fields).  Decoders use it to bound corrupt
        element counts against the remaining buffer."""
        if self._min_wire_size is None:
            total = 0
            for field in self.fields:
                per = field.min_wire_size()
                if field.is_array:
                    spec = field.array
                    assert spec is not None
                    total += per * (spec.fixed_length or 0)
                else:
                    total += per
            self._min_wire_size = total
        return self._min_wire_size

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------

    def signature(self) -> tuple:
        """Hashable structural description (includes version tag)."""
        return (
            self.name,
            self.version,
            tuple(field.signature() for field in self.fields),
        )

    @property
    def format_id(self) -> int:
        """A stable 64-bit fingerprint of the format, used as the wire
        format id.  Identical declarations on writer and reader sides
        produce identical ids without negotiation — the out-of-band
        format-server handshake of PBIO."""
        if self._format_id is None:
            digest = hashlib.sha256(repr(self.signature()).encode("utf-8")).digest()
            self._format_id = int.from_bytes(digest[:8], "big")
        return self._format_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOFormat):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ver = f" v{self.version}" if self.version else ""
        return f"IOFormat({self.name!r}{ver}, {len(self.fields)} fields)"

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def default_record(self) -> Record:
        """A record of this format with every field at its default."""
        rec = Record()
        for field in self.fields:
            rec[field.name] = field.default_instance()
        return rec

    def make_record(self, **values: Any) -> Record:
        """Build a record with defaults overridden by *values*; unknown
        names raise :class:`FormatError`."""
        rec = self.default_record()
        for key, value in values.items():
            if key not in self._by_name:
                raise FormatError(f"format {self.name!r} has no field {key!r}")
            rec[key] = value
        return rec

    def validate_record(self, rec: Mapping[str, Any], _path: str = "") -> None:
        """Check a record structurally conforms to this format.

        Verifies field presence, scalar coercibility, array shapes and the
        consistency of variable arrays with their count fields.  Raises
        :class:`FormatError` on the first violation.
        """
        prefix = f"{_path}." if _path else ""
        for field in self.fields:
            if field.name not in rec:
                raise FormatError(f"record missing field {prefix}{field.name}")
            value = rec[field.name]
            if field.is_array:
                if not isinstance(value, list):
                    raise FormatError(
                        f"field {prefix}{field.name} must be a list, got "
                        f"{type(value).__name__}"
                    )
                spec = field.array
                assert spec is not None
                if spec.fixed_length is not None and len(value) != spec.fixed_length:
                    raise FormatError(
                        f"field {prefix}{field.name} must have exactly "
                        f"{spec.fixed_length} elements, got {len(value)}"
                    )
                if spec.length_field is not None:
                    declared = rec.get(spec.length_field)
                    if declared != len(value):
                        raise FormatError(
                            f"field {prefix}{field.name} has {len(value)} elements "
                            f"but {spec.length_field} == {declared!r}"
                        )
                elements: Iterable[Any] = value
            else:
                elements = (value,)
            for element in elements:
                if field.is_complex:
                    assert field.subformat is not None
                    if not isinstance(element, Mapping):
                        raise FormatError(
                            f"field {prefix}{field.name} must hold records, got "
                            f"{type(element).__name__}"
                        )
                    field.subformat.validate_record(element, f"{prefix}{field.name}")
                else:
                    try:
                        coerce_value(field.kind, element)
                    except (TypeError, ValueError, FormatError) as exc:
                        raise FormatError(
                            f"field {prefix}{field.name} has bad value "
                            f"{element!r}: {exc}"
                        ) from None

    def describe(self, indent: int = 0) -> str:
        """Human-readable multi-line description of the format tree."""
        pad = "  " * indent
        lines = [f"{pad}format {self.name}" + (f" v{self.version}" if self.version else "")]
        for field in self.fields:
            arr = ""
            if field.array is not None:
                arr = (
                    f"[{field.array.fixed_length}]"
                    if field.array.fixed_length is not None
                    else f"[count={field.array.length_field}]"
                )
            if field.is_complex:
                assert field.subformat is not None
                lines.append(f"{pad}  {field.name}{arr}:")
                lines.append(field.subformat.describe(indent + 2))
            else:
                lines.append(f"{pad}  {field.name}{arr}: {field.kind.value}:{field.size}")
        return "\n".join(lines)
