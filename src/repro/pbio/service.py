"""The format server — out-of-band meta-data as a real protocol.

PBIO's defining trick is that meta-data travels *out-of-band*: wire
messages carry only an 8-byte format id, and readers resolve ids against
a format server.  Elsewhere in this library the server is abstracted as
a shared :class:`~repro.pbio.registry.FormatRegistry`; this module makes
it a real networked service on the simulated transport:

* :class:`FormatService` — the server process.  Writers push their
  formats and transformations to it; readers fetch a format (plus its
  whole transform closure) by id.
* :class:`MetaClient` — an endpoint's client: a local registry replica,
  `publish()` to upload it, and `fetch()` to pull missing entries.
* :class:`RemoteMetaReceiver` — a :class:`~repro.morph.receiver.
  MorphReceiver` wrapper that parks messages whose format is unknown,
  fetches the meta-data, and drains the parked messages when the reply
  arrives — so data can race ahead of meta-data without loss.

The service protocol itself is JSON over the transport (deliberately not
PBIO: the meta-data channel must not depend on the meta-data it serves).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from repro.errors import TransportError, UnknownFormatError
from repro.morph.receiver import MorphReceiver
from repro.net.transport import Network, Node
from repro.pbio.registry import FormatRegistry
from repro.pbio.serialization import (
    format_from_dict,
    format_to_dict,
    transform_from_dict,
    transform_to_dict,
)


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8")


def _decode(data: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed meta-service message: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise TransportError("meta-service message missing 'op'")
    return message


class FormatService:
    """The format server process."""

    def __init__(self, network: Network, address: str = "format-service") -> None:
        self.node: Node = network.add_node(address)
        self.node.set_handler(self._on_message)
        self.registry = FormatRegistry()
        self.stats = {"registers": 0, "fetches": 0, "misses": 0}

    @property
    def address(self) -> str:
        return self.node.address

    def _on_message(self, source: str, data: bytes) -> None:
        message = _decode(data)
        op = message["op"]
        if op == "register":
            for fmt_dict in message.get("formats", ()):
                self.registry.register(format_from_dict(fmt_dict))
            for spec_dict in message.get("transforms", ()):
                self.registry.register_transform(transform_from_dict(spec_dict))
            self.stats["registers"] += 1
        elif op == "fetch":
            self._handle_fetch(source, message)
        # unknown ops are dropped: the service must tolerate new clients

    def _handle_fetch(self, source: str, message: Dict[str, Any]) -> None:
        self.stats["fetches"] += 1
        format_id = int(message["format_id"])
        fmt = self.registry.lookup_id(format_id)
        if fmt is None:
            self.stats["misses"] += 1
            reply: Dict[str, Any] = {
                "op": "fetch_reply",
                "format_id": str(format_id),
                "found": False,
            }
        else:
            # ship the format AND its transform closure so the fetcher
            # can morph without a second round trip
            chains = self.registry.transform_closure(fmt)
            specs = {id(s): s for chain in chains for s in chain}
            reply = {
                "op": "fetch_reply",
                "format_id": str(format_id),
                "found": True,
                "format": format_to_dict(fmt),
                "transforms": [transform_to_dict(s) for s in specs.values()],
            }
        self.node.send(source, _encode(reply))


class MetaClient:
    """One endpoint's connection to the format server."""

    def __init__(
        self,
        network: Network,
        address: str,
        service: str = "format-service",
        registry: Optional[FormatRegistry] = None,
    ) -> None:
        self.node: Node = network.add_node(address)
        self.node.set_handler(self._on_message)
        self.service = service
        self.registry = registry if registry is not None else FormatRegistry()
        self._pending_fetches: Dict[int, List[Callable[[bool], None]]] = {}
        #: non-meta traffic handler (a receiver, an application...)
        self.data_handler: Optional[Callable[[str, bytes], None]] = None

    @property
    def address(self) -> str:
        return self.node.address

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------

    def publish(self) -> None:
        """Upload the local registry (formats + transforms) to the
        server — what a writer does at startup."""
        formats = self.registry.formats()
        transforms = [
            spec for fmt in formats for spec in self.registry.transforms_from(fmt)
        ]
        self.node.send(
            self.service,
            _encode(
                {
                    "op": "register",
                    "formats": [format_to_dict(f) for f in formats],
                    "transforms": [transform_to_dict(s) for s in transforms],
                }
            ),
        )

    def fetch(
        self, format_id: int, on_done: Optional[Callable[[bool], None]] = None
    ) -> None:
        """Request meta-data for *format_id*; *on_done(found)* fires when
        the reply lands (duplicate in-flight fetches are coalesced)."""
        callbacks = self._pending_fetches.setdefault(format_id, [])
        if on_done is not None:
            callbacks.append(on_done)
        if len(callbacks) <= 1:
            self.node.send(
                self.service,
                _encode({"op": "fetch", "format_id": str(format_id)}),
            )

    def send(self, destination: str, data: bytes) -> None:
        self.node.send(destination, data)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    def _on_message(self, source: str, data: bytes) -> None:
        if source == self.service and data[:1] == b"{":
            message = _decode(data)
            if message.get("op") == "fetch_reply":
                self._handle_fetch_reply(message)
                return
        if self.data_handler is not None:
            self.data_handler(source, data)

    def _handle_fetch_reply(self, message: Dict[str, Any]) -> None:
        format_id = int(message["format_id"])
        found = bool(message.get("found"))
        if found:
            self.registry.register(format_from_dict(message["format"]))
            for spec_dict in message.get("transforms", ()):
                self.registry.register_transform(transform_from_dict(spec_dict))
        for callback in self._pending_fetches.pop(format_id, ()):
            callback(found)


class RemoteMetaReceiver:
    """A morphing receiver whose meta-data arrives over the network.

    Wire messages whose format id is unknown locally are parked, a fetch
    goes to the format server, and the parked messages are processed when
    the meta-data lands.  Messages whose format the server does not know
    either go to the MorphReceiver's default handler path (via
    :class:`UnknownFormatError`) or are counted as drops.
    """

    def __init__(
        self,
        network: Network,
        address: str,
        service: str = "format-service",
        **receiver_kwargs: Any,
    ) -> None:
        self.client = MetaClient(network, address, service)
        self.receiver = MorphReceiver(self.client.registry, **receiver_kwargs)
        self.client.data_handler = lambda _source, data: self.process(data)
        self._parked: Dict[int, List[bytes]] = {}
        self.results: List[Any] = []
        self.unresolved: List[bytes] = []

    @property
    def address(self) -> str:
        return self.client.address

    def register_handler(self, fmt, handler) -> None:
        self.receiver.register_handler(fmt, handler)

    def process(self, data: bytes) -> None:
        """Process a wire message, fetching meta-data on demand."""
        try:
            self.results.append(self.receiver.process(data))
            return
        except UnknownFormatError as exc:
            format_id = exc.format_id
        parked = self._parked.setdefault(format_id, [])
        parked.append(data)
        if len(parked) == 1:
            self.client.fetch(format_id, lambda found: self._drain(format_id, found))

    def _drain(self, format_id: int, found: bool) -> None:
        parked = self._parked.pop(format_id, [])
        if not found:
            self.unresolved.extend(parked)
            return
        for data in parked:
            self.results.append(self.receiver.process(data))
