"""Format registry — the out-of-band meta-data channel.

In real PBIO deployments, writers register their formats with a *format
server* and readers fetch descriptions by format id, so meta-data never
rides inline with the data (the key efficiency difference from XML the
paper leans on).  Our :class:`FormatRegistry` plays that role: endpoints
share a registry instance (or replicate entries through it), and wire
messages carry only the 8-byte fingerprint id.

The registry also stores the **transformations** a writer associates with
a format (paper Section 3.2: "the writer may also specify a set of
transformations, which can convert the message from one format to the
other") as :class:`TransformSpec` entries keyed by the source format id.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from repro.errors import FormatError
from repro.pbio.format import IOFormat


@dataclass(frozen=True)
class TransformSpec:
    """A writer-supplied conversion: ECode that rewrites a record of
    ``source`` into a record of ``target``.

    The code is compiled lazily by the receiver, only if it ever needs the
    conversion (Spreitzer/Begel's code-bloat concern, handled by DCG)."""

    source: IOFormat
    target: IOFormat
    code: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise FormatError("a transform must change the format")


def _content_key(fmt: IOFormat) -> tuple:
    """Everything :meth:`FormatRegistry.replace` treats as *content*.

    The 64-bit fingerprint (and ``IOFormat.__eq__``) deliberately hash
    only the structural signature, so two declarations can share a wire
    id while disagreeing on the attributes morphing actually consumes:
    per-field defaults and importance weights, and a projection's
    provenance (parent id + epoch).  An authoritative refresh that
    changes only those must still displace the stale cached entry."""
    from repro.pbio.projection import ProjectionFormat

    extras = tuple(
        (field._default, field.importance) for field in fmt.fields
    )
    provenance = (
        (fmt.parent_format_id, fmt.projection_epoch)
        if isinstance(fmt, ProjectionFormat)
        else None
    )
    return (type(fmt).__qualname__, fmt.signature(), extras, provenance)


class FormatRegistry:
    """Thread-safe store of formats and their associated transformations."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._by_id: Dict[int, IOFormat] = {}
        self._by_name: Dict[str, List[IOFormat]] = {}
        self._transforms: Dict[int, List[TransformSpec]] = {}

    # ------------------------------------------------------------------
    # Formats
    # ------------------------------------------------------------------

    def register(self, fmt: IOFormat) -> int:
        """Register *fmt*; returns its wire format id.  Re-registering the
        same declaration is idempotent; a *different* format with a
        colliding fingerprint raises :class:`FormatError`."""
        with self._lock:
            existing = self._by_id.get(fmt.format_id)
            if existing is not None:
                if existing != fmt:
                    raise FormatError(
                        f"format id collision between {existing!r} and {fmt!r}"
                    )
                return fmt.format_id
            self._by_id[fmt.format_id] = fmt
            self._by_name.setdefault(fmt.name, []).append(fmt)
            return fmt.format_id

    def replace(self, fmt: IOFormat) -> bool:
        """Force-register *fmt*, displacing whatever different content is
        cached under its id and dropping every transform that referenced
        the displaced entry (they were compiled against the old field
        set).  Returns ``True`` when an existing, different entry was
        displaced; plain registration and idempotent re-registration
        return ``False``.

        This is the authoritative-refresh path: when the format server
        ships a description that disagrees with a cached entry — e.g. a
        re-registered derived projection — the fresh meta-data wins."""
        with self._lock:
            existing = self._by_id.get(fmt.format_id)
            if existing is not None and _content_key(existing) == _content_key(fmt):
                return False
            displaced = existing is not None
            if displaced:
                self.unregister(existing)
            self._by_id[fmt.format_id] = fmt
            self._by_name.setdefault(fmt.name, []).append(fmt)
            return displaced

    def unregister(self, fmt: IOFormat) -> bool:
        """Remove *fmt* and every transform touching it (as source or
        target).  Returns ``True`` if the format was registered.  Models a
        writer retiring a revision mid-stream: receivers holding cached
        conversion routes to it must cope with the meta-data vanishing."""
        with self._lock:
            if fmt.format_id not in self._by_id:
                return False
            del self._by_id[fmt.format_id]
            revisions = self._by_name.get(fmt.name)
            if revisions is not None:
                revisions[:] = [f for f in revisions if f.format_id != fmt.format_id]
                if not revisions:
                    del self._by_name[fmt.name]
            self._transforms.pop(fmt.format_id, None)
            for source_id in list(self._transforms):
                specs = self._transforms[source_id]
                specs[:] = [
                    s for s in specs if s.target.format_id != fmt.format_id
                ]
                if not specs:
                    del self._transforms[source_id]
            return True

    def lookup_id(self, format_id: int) -> Optional[IOFormat]:
        with self._lock:
            return self._by_id.get(format_id)

    def lookup_name(self, name: str) -> List[IOFormat]:
        """All registered formats carrying *name* (every revision)."""
        with self._lock:
            return list(self._by_name.get(name, ()))

    def formats(self) -> List[IOFormat]:
        with self._lock:
            return list(self._by_id.values())

    def __contains__(self, fmt: IOFormat) -> bool:
        with self._lock:
            return fmt.format_id in self._by_id

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def register_transform(self, spec: TransformSpec) -> None:
        """Attach *spec* to its source format's meta-data.  Both endpoint
        formats are registered as a side effect."""
        with self._lock:
            self.register(spec.source)
            self.register(spec.target)
            specs = self._transforms.setdefault(spec.source.format_id, [])
            if spec not in specs:
                specs.append(spec)

    def add_transform(
        self,
        source: IOFormat,
        target: IOFormat,
        code: str,
        description: str = "",
    ) -> TransformSpec:
        """Convenience wrapper building and registering a TransformSpec."""
        spec = TransformSpec(source=source, target=target, code=code,
                             description=description)
        self.register_transform(spec)
        return spec

    def transforms_from(self, fmt: IOFormat) -> List[TransformSpec]:
        """Transformations whose source is *fmt* (one retro-xform hop)."""
        with self._lock:
            return list(self._transforms.get(fmt.format_id, ()))

    def transform_closure(self, fmt: IOFormat) -> List[List[TransformSpec]]:
        """All acyclic transformation *chains* starting at *fmt*.

        Figure 1 of the paper chains retro-transformations across schema
        revisions (Rev 2.0 -> Rev 1.0 -> Rev 0.0); the closure enumerates
        every reachable target with the spec sequence that reaches it,
        shortest chains first."""
        with self._lock:
            chains: List[List[TransformSpec]] = []
            frontier: List[List[TransformSpec]] = [
                [spec] for spec in self._transforms.get(fmt.format_id, ())
            ]
            visited = {fmt.format_id}
            while frontier:
                next_frontier: List[List[TransformSpec]] = []
                for chain in frontier:
                    tail = chain[-1].target
                    if tail.format_id in visited:
                        continue
                    visited.add(tail.format_id)
                    chains.append(chain)
                    for spec in self._transforms.get(tail.format_id, ()):
                        next_frontier.append(chain + [spec])
                frontier = next_frontier
            return chains

    # ------------------------------------------------------------------
    # Replication (simulating the out-of-band format server protocol)
    # ------------------------------------------------------------------

    def replicate_to(self, other: "FormatRegistry") -> None:
        """Push every format and transform into *other* — the out-of-band
        meta-data exchange between a writer's and a reader's context."""
        with self._lock:
            formats = list(self._by_id.values())
            transforms = [s for specs in self._transforms.values() for s in specs]
        for fmt in formats:
            other.register(fmt)
        for spec in transforms:
            other.register_transform(spec)
