"""Derived projection formats — subscriber interest push-down.

The morphing layer's whole-route fusion (``repro.morph.fusion``) proves,
per subscriber, which top-level fields of a wire format its handler can
ever observe.  That backward liveness set normally only saves *decode*
work; the sender still encodes and ships every byte.  This module makes
the liveness set a first-class wire artifact: a **projection format** — a
real :class:`~repro.pbio.format.IOFormat` carrying only the live fields
of a *parent* format, plus provenance back to the parent — that the
format-server fleet derives per (source format x subscriber group) and
senders encode to directly.

Design points:

* A projection keeps the parent's **name** and field declarations, so the
  morphing machinery (MaxMatch, transform closures, fused routes) treats
  it as just another evolved revision of the message — nothing downstream
  needs a special case to *decode* one.
* The version tag is derived from the parent's version plus the
  negotiation **epoch** (``"1.0+p3"``), so every renegotiated projection
  gets a distinct content-addressed format id.  Old epochs are never
  unregistered; in-flight frames stay decodable across a narrowing.
* Count fields of included variable arrays are auto-included: an
  :class:`IOFormat` cannot declare a counted array without its counter,
  and the counter must precede the array — both guaranteed here because
  the projection preserves the parent's field order.
* Structural identity (``signature``/``format_id``) deliberately ignores
  provenance: two endpoints deriving the same projection independently
  agree on the wire id without negotiation, exactly like plain formats.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Mapping, Optional

from repro.errors import FormatError
from repro.pbio.format import IOFormat
from repro.pbio.record import Record


class ProjectionFormat(IOFormat):
    """An :class:`IOFormat` that is a field-subset *projection* of a
    parent format, carrying provenance back to it.

    Parameters beyond the base class:

    parent_format_id:
        The 64-bit wire id of the format this projection was derived
        from.  Receivers use it to route projected messages through the
        parent's (already planned) morph route.
    projection_epoch:
        Monotonic negotiation epoch.  Bumped by the format server on
        every interest-set change, so each negotiated field set yields a
        distinct version tag and therefore a distinct format id.
    """

    __slots__ = ("parent_format_id", "projection_epoch")

    def __init__(
        self,
        name: str,
        fields: Any,
        version: Optional[str],
        parent_format_id: int,
        projection_epoch: int = 0,
    ) -> None:
        super().__init__(name, fields, version=version)
        self.parent_format_id = parent_format_id
        self.projection_epoch = projection_epoch

    @property
    def live_fields(self) -> FrozenSet[str]:
        """The field names this projection transmits."""
        return frozenset(self.field_names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ver = f" v{self.version}" if self.version else ""
        return (
            f"ProjectionFormat({self.name!r}{ver}, {len(self.fields)} fields, "
            f"parent {self.parent_format_id:#x}, epoch {self.projection_epoch})"
        )


def projection_version(parent: IOFormat, epoch: int) -> str:
    """The version tag a projection of *parent* carries at *epoch*."""
    return f"{parent.version or '0'}+p{epoch}"


def project_format(
    parent: IOFormat, live: Iterable[str], epoch: int = 0
) -> ProjectionFormat:
    """Derive the projection of *parent* onto the field names *live*.

    Keeps the parent's declared field order; auto-includes the count
    field of every included variable array.  Raises
    :class:`~repro.errors.FormatError` for names the parent does not
    declare or a selection that keeps no fields at all.
    """
    wanted = set(live)
    declared = {field.name for field in parent.fields}
    unknown = wanted - declared
    if unknown:
        raise FormatError(
            f"cannot project {parent.name!r}: unknown fields "
            f"{sorted(unknown)!r}"
        )
    include = set(wanted)
    for field in parent.fields:
        spec = field.array
        if field.name in wanted and spec is not None and spec.length_field:
            include.add(spec.length_field)
    fields = [field for field in parent.fields if field.name in include]
    if not fields:
        raise FormatError(
            f"projection of {parent.name!r} keeps no fields"
        )
    return ProjectionFormat(
        parent.name,
        fields,
        version=projection_version(parent, epoch),
        parent_format_id=parent.format_id,
        projection_epoch=epoch,
    )


def project_record(
    projection: IOFormat, rec: Mapping[str, Any]
) -> Record:
    """Restrict a full-format record to the projection's fields.

    The sender's hot path never calls this — the projection's generated
    encoder reads only its own fields straight out of the full record —
    but the differential oracle needs the explicit morph-then-project
    reference path.
    """
    out = Record()
    for field in projection.fields:
        out[field.name] = rec[field.name]
    return out


def widen_record(
    src_fmt: IOFormat, dst_fmt: IOFormat, rec: Mapping[str, Any]
) -> Record:
    """Re-inflate a projected record of *src_fmt* to the full *dst_fmt*.

    Fields present in *rec* are copied verbatim (a projection's field
    declarations are identical to the parent's, so no coercion is
    needed); missing fields get the parent's defaults.  Unlike
    :func:`repro.morph.compat.coerce_record` this never re-synchronizes
    variable-array count fields: a live count whose (dead) array was
    projected away must keep its transmitted value, or projected and
    full-format deliveries would diverge.
    """
    out = Record()
    for field in dst_fmt.fields:
        if field.name in rec:
            out[field.name] = rec[field.name]
        else:
            out[field.name] = field.default_instance()
    return out


def projection_ratio(projection: IOFormat, parent: IOFormat) -> float:
    """Negotiated-field ratio ``len(projection)/len(parent)`` — the
    number the ``net.projection.field_ratio`` histogram records."""
    return len(projection.fields) / max(1, len(parent.fields))
