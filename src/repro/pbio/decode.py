"""Generic (interpretive) PBIO decoder.

Reference implementation used to property-test the generated decode
routines of :mod:`repro.pbio.codegen` and as the slow arm of the
DCG-vs-generic ablation benchmark.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.errors import DecodeError, UnknownFormatError
from repro.pbio.buffer import (
    FLAG_BIG_ENDIAN,
    HEADER_SIZE,
    MessageHeader,
    WireReader,
    unpack_header,
)
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.types import STRUCT_CODES, TypeKind

#: Upper bound on variable-array element counts when an element can
#: legally occupy zero wire bytes (e.g. a record of empty fixed arrays):
#: without a byte-budget to check against, a corrupt count could demand an
#: absurd allocation that no honest message needs.
ZERO_SIZE_ELEMENT_CAP = 1 << 16


def peek_format_id(data: bytes) -> int:
    """Read the wire format id without decoding the payload."""
    return unpack_header(data).format_id


def decode_message(
    data: bytes, registry: "FormatRegistryLike"
) -> Tuple[IOFormat, Record]:
    """Decode a full wire message, resolving the format via *registry*.

    Returns ``(format, record)``.  Raises :class:`UnknownFormatError` when
    the registry cannot resolve the wire format id.
    """
    header = unpack_header(data)
    fmt = registry.lookup_id(header.format_id)
    if fmt is None:
        raise UnknownFormatError(header.format_id)
    record = decode_record(fmt, data, header)
    return fmt, record


def decode_record(
    fmt: IOFormat, data: bytes, header: Optional[MessageHeader] = None
) -> Record:
    """Decode the payload of *data* as a record of *fmt*."""
    if header is None:
        header = unpack_header(data)
    if header.format_id != fmt.format_id:
        # Mirrors the specialized decoder's guard: decoding a message
        # against the wrong meta-data silently misreads every field.
        raise DecodeError(
            f"message format id {header.format_id:#x} does not match "
            f"decoder for {fmt.name!r} ({fmt.format_id:#x})"
        )
    order = ">" if header.flags & FLAG_BIG_ENDIAN else "<"
    reader = WireReader(
        data, header.body_offset, header.body_offset + header.payload_length,
        order=order,
    )
    try:
        record = decode_payload(reader, fmt)
    except DecodeError:
        raise
    except (
        struct.error,
        UnicodeDecodeError,
        KeyError,
        IndexError,
        OverflowError,
        MemoryError,
    ) as exc:
        # Residual escape paths: the public contract is malformed bytes
        # always surface as DecodeError, never a raw Python error.
        raise DecodeError(f"corrupt message for {fmt.name!r}: {exc!r}") from None
    if reader.remaining:
        raise DecodeError(
            f"{reader.remaining} trailing bytes after decoding format {fmt.name!r}"
        )
    return record


def decode_payload(reader: WireReader, fmt: IOFormat) -> Record:
    record = Record()
    for field in fmt.fields:
        record[field.name] = _decode_field(reader, field, record)
    return record


def _decode_field(reader: WireReader, field: IOField, record: Record):
    if field.is_array:
        spec = field.array
        assert spec is not None
        if spec.fixed_length is not None:
            count = spec.fixed_length
        else:
            count = record.get(spec.length_field)
            if not isinstance(count, int) or count < 0:
                raise DecodeError(
                    f"bad element count {count!r} for variable array {field.name!r}"
                )
            per_element = field.min_wire_size()
            budget = (
                reader.remaining // per_element
                if per_element
                else ZERO_SIZE_ELEMENT_CAP
            )
            if count > budget:
                raise DecodeError(
                    f"element count {count} for variable array {field.name!r} "
                    f"exceeds the {reader.remaining} remaining payload bytes"
                )
        return [_decode_element(reader, field) for _ in range(count)]
    return _decode_element(reader, field)


def _decode_element(reader: WireReader, field: IOField):
    kind = field.kind
    if kind is TypeKind.COMPLEX:
        assert field.subformat is not None
        return decode_payload(reader, field.subformat)
    if kind is TypeKind.STRING:
        return reader.read_string()
    if kind is TypeKind.CHAR:
        return reader.read_bytes(1).decode("latin-1")
    code = STRUCT_CODES[(kind, field.size)]
    return reader.read_scalar(code, field.size)


class FormatRegistryLike:
    """Protocol-ish base for anything that can resolve wire format ids.

    Defined here (rather than importing the concrete registry) to keep the
    decode module free of registry dependencies; the concrete
    :class:`repro.pbio.registry.FormatRegistry` satisfies it structurally.
    """

    def lookup_id(self, format_id: int) -> Optional[IOFormat]:  # pragma: no cover
        raise NotImplementedError
