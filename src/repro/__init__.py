"""repro — Message Morphing for evolving middleware data exchanges.

A from-scratch Python reproduction of *"Lightweight Morphing Support for
Evolving Middleware Data Exchanges in Distributed Applications"*
(ICDCS 2005): the PBIO binary wire format with out-of-band meta-data, the
ECode C-subset compiler (dynamic code generation), the MaxMatch/morphing
receiver pipeline, the ECho publish/subscribe middleware, an XML/XSLT
baseline, a simulated network substrate and a B2B broker scenario.

Typical use::

    from repro import (
        ArraySpec, FormatRegistry, IOField, IOFormat,
        MorphReceiver, PBIOContext,
    )

    old_fmt = IOFormat("Reading", [IOField("celsius", "float")], version="1")
    new_fmt = IOFormat("Reading", [IOField("kelvin", "float")], version="2")

    registry = FormatRegistry()
    registry.add_transform(new_fmt, old_fmt,
                           "old.celsius = new.kelvin - 273.15;")

    receiver = MorphReceiver(registry)
    receiver.register_handler(old_fmt, print)

    sender = PBIOContext(registry)
    receiver.process(sender.encode(new_fmt, new_fmt.make_record(kelvin=300.0)))
"""

from repro.ecode import (
    ECodeProcedure,
    InterpretedProcedure,
    compile_procedure,
    interpret_procedure,
)
from repro.errors import (
    DecodeError,
    ECodeError,
    EncodeError,
    FormatError,
    MorphError,
    NoMatchError,
    PBIOError,
    ReproError,
    TransformError,
    TransportError,
    UnknownFormatError,
    XMLError,
)
from repro.morph import (
    MorphReceiver,
    TransformChain,
    Transformation,
    coerce_record,
    diff,
    generate_coercion_ecode,
    is_perfect_match,
    max_match,
    mismatch_ratio,
)
from repro.pbio import (
    ArraySpec,
    FormatRegistry,
    IOField,
    IOFormat,
    PBIOContext,
    Record,
    TransformSpec,
    TypeKind,
    encode_record,
    make_record,
    native_size,
    records_equal,
)

__version__ = "1.0.0"

__all__ = [
    "ArraySpec",
    "DecodeError",
    "ECodeError",
    "ECodeProcedure",
    "EncodeError",
    "FormatError",
    "FormatRegistry",
    "IOField",
    "IOFormat",
    "InterpretedProcedure",
    "MorphError",
    "MorphReceiver",
    "NoMatchError",
    "PBIOContext",
    "PBIOError",
    "Record",
    "ReproError",
    "TransformChain",
    "TransformError",
    "TransformSpec",
    "Transformation",
    "TransportError",
    "TypeKind",
    "UnknownFormatError",
    "XMLError",
    "__version__",
    "coerce_record",
    "compile_procedure",
    "diff",
    "encode_record",
    "generate_coercion_ecode",
    "interpret_procedure",
    "is_perfect_match",
    "make_record",
    "max_match",
    "mismatch_ratio",
    "native_size",
    "records_equal",
]
