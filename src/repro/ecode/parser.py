"""ECode recursive-descent parser.

Grammar (a C subset sufficient for message transformation snippets)::

    program        := statement* EOF
    statement      := declaration | block | if | while | do-while | for
                    | return | break ';' | continue ';' | expr? ';'
    declaration    := type-name declarator (',' declarator)* ';'
    declarator     := IDENT ('=' assignment-expr)?
    expression     := assignment-expr (',' assignment-expr)*   (for-clauses)
    assignment-expr:= ternary (ASSIGN-OP assignment-expr)?
    ternary        := logical-or ('?' expression ':' ternary)?
    ... standard C precedence down to primary ...
    postfix        := primary ('.' IDENT | '->' IDENT | '[' expr ']'
                      | '(' args ')' | '++' | '--')*

Pointer declarations (``char *s``) are accepted and the pointer-ness is
ignored — ECode strings are values.  ``struct`` tags in declarations are
accepted the same way.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ecode import ast
from repro.ecode.lexer import Token, TokenType, tokenize
from repro.errors import ECodeSyntaxError

#: Assignment operators, mapping to their arithmetic op ("" for plain "=").
ASSIGN_OPS = {
    "=": "",
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
}

_TYPE_KEYWORDS = {
    "int",
    "long",
    "short",
    "unsigned",
    "signed",
    "double",
    "float",
    "char",
    "void",
    "struct",
    "const",
}

#: (operators, ) precedence levels for binary operators, low to high.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        token = self.current
        return token.type is type_ and (value is None or token.value == value)

    def _match(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: Optional[str] = None) -> Token:
        if self._check(type_, value):
            return self._advance()
        want = value if value is not None else type_.value
        got = self.current.value or "end of input"
        raise ECodeSyntaxError(
            f"expected {want!r}, got {got!r}", self.current.line, self.current.column
        )

    def _error(self, message: str) -> ECodeSyntaxError:
        return ECodeSyntaxError(message, self.current.line, self.current.column)

    # ------------------------------------------------------------------
    # Program / statements
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        body: List[ast.Stmt] = []
        while not self._check(TokenType.EOF):
            body.append(self.parse_statement())
        return ast.Program(body=body, line=1)

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.type is TokenType.KEYWORD:
            if token.value in _TYPE_KEYWORDS:
                return self._parse_declaration()
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "do":
                return self._parse_do_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "switch":
                return self._parse_switch()
            if token.value == "return":
                return self._parse_return()
            if token.value == "break":
                self._advance()
                self._expect(TokenType.OP, ";")
                return ast.Break(line=token.line)
            if token.value == "continue":
                self._advance()
                self._expect(TokenType.OP, ";")
                return ast.Continue(line=token.line)
        if self._check(TokenType.OP, "{"):
            return self._parse_block()
        if self._match(TokenType.OP, ";"):
            return ast.Block(statements=[], line=token.line)
        expr = self.parse_expression()
        self._expect(TokenType.OP, ";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def _parse_block(self) -> ast.Block:
        open_token = self._expect(TokenType.OP, "{")
        statements: List[ast.Stmt] = []
        while not self._check(TokenType.OP, "}"):
            if self._check(TokenType.EOF):
                raise self._error("unterminated block")
            statements.append(self.parse_statement())
        self._expect(TokenType.OP, "}")
        return ast.Block(statements=statements, line=open_token.line)

    def _parse_type_name(self) -> str:
        parts: List[str] = []
        while self.current.type is TokenType.KEYWORD and self.current.value in _TYPE_KEYWORDS:
            word = self._advance().value
            if word != "const":
                parts.append(word)
            if word == "struct":
                parts.append(self._expect(TokenType.IDENT).value)
        if not parts:
            raise self._error("expected a type name")
        return " ".join(parts)

    def _parse_declaration(self) -> ast.Declaration:
        line = self.current.line
        type_name = self._parse_type_name()
        declarators: List[ast.Declarator] = []
        while True:
            while self._match(TokenType.OP, "*"):
                pass  # pointer-ness is ignored; strings are values
            name_token = self._expect(TokenType.IDENT)
            array_size: Optional[int] = None
            if self._match(TokenType.OP, "["):
                size_token = self._expect(TokenType.INT)
                array_size = int(size_token.value, 0)
                if array_size < 0:
                    raise ECodeSyntaxError(
                        "array size must be >= 0", size_token.line, size_token.column
                    )
                self._expect(TokenType.OP, "]")
            init: Optional[ast.Expr] = None
            if self._match(TokenType.OP, "="):
                if array_size is not None:
                    raise ECodeSyntaxError(
                        "local array declarators cannot take initializers",
                        name_token.line,
                        name_token.column,
                    )
                init = self.parse_assignment_expr()
            declarators.append(
                ast.Declarator(
                    name=name_token.value,
                    init=init,
                    array_size=array_size,
                    line=name_token.line,
                )
            )
            if not self._match(TokenType.OP, ","):
                break
        self._expect(TokenType.OP, ";")
        return ast.Declaration(type_name=type_name, declarators=declarators, line=line)

    def _parse_if(self) -> ast.If:
        token = self._expect(TokenType.KEYWORD, "if")
        self._expect(TokenType.OP, "(")
        condition = self.parse_expression()
        self._expect(TokenType.OP, ")")
        then_branch = self.parse_statement()
        else_branch: Optional[ast.Stmt] = None
        if self._match(TokenType.KEYWORD, "else"):
            else_branch = self.parse_statement()
        return ast.If(
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
            line=token.line,
        )

    def _parse_while(self) -> ast.While:
        token = self._expect(TokenType.KEYWORD, "while")
        self._expect(TokenType.OP, "(")
        condition = self.parse_expression()
        self._expect(TokenType.OP, ")")
        body = self.parse_statement()
        return ast.While(condition=condition, body=body, line=token.line)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect(TokenType.KEYWORD, "do")
        body = self.parse_statement()
        self._expect(TokenType.KEYWORD, "while")
        self._expect(TokenType.OP, "(")
        condition = self.parse_expression()
        self._expect(TokenType.OP, ")")
        self._expect(TokenType.OP, ";")
        return ast.DoWhile(body=body, condition=condition, line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._expect(TokenType.KEYWORD, "for")
        self._expect(TokenType.OP, "(")
        init: "Optional[ast.Stmt | List[ast.Expr]]" = None
        if not self._check(TokenType.OP, ";"):
            if (
                self.current.type is TokenType.KEYWORD
                and self.current.value in _TYPE_KEYWORDS
            ):
                init = self._parse_declaration()  # consumes the ';'
            else:
                init = self._parse_expr_list()
                self._expect(TokenType.OP, ";")
        else:
            self._expect(TokenType.OP, ";")
        condition: Optional[ast.Expr] = None
        if not self._check(TokenType.OP, ";"):
            condition = self.parse_expression()
        self._expect(TokenType.OP, ";")
        update: List[ast.Expr] = []
        if not self._check(TokenType.OP, ")"):
            update = self._parse_expr_list()
        self._expect(TokenType.OP, ")")
        body = self.parse_statement()
        return ast.For(
            init=init, condition=condition, update=update, body=body, line=token.line
        )

    def _parse_switch(self) -> ast.Switch:
        token = self._expect(TokenType.KEYWORD, "switch")
        self._expect(TokenType.OP, "(")
        subject = self.parse_expression()
        self._expect(TokenType.OP, ")")
        self._expect(TokenType.OP, "{")
        cases: List[ast.Case] = []
        while not self._check(TokenType.OP, "}"):
            if self._check(TokenType.EOF):
                raise self._error("unterminated switch")
            cases.append(self._parse_case())
        self._expect(TokenType.OP, "}")
        if not cases:
            raise self._error("switch requires at least one case")
        if sum(1 for c in cases if c.is_default) > 1:
            raise ECodeSyntaxError(
                "switch has multiple default arms", token.line, token.column
            )
        return ast.Switch(subject=subject, cases=cases, line=token.line)

    def _parse_case(self) -> ast.Case:
        labels: List[ast.Expr] = []
        is_default = False
        line = self.current.line
        # one body may carry several 'case X:' labels and/or 'default:'
        while True:
            if self._check(TokenType.KEYWORD, "case"):
                self._advance()
                labels.append(self._parse_ternary())
                self._expect(TokenType.OP, ":")
            elif self._check(TokenType.KEYWORD, "default"):
                self._advance()
                self._expect(TokenType.OP, ":")
                is_default = True
            else:
                break
        if not labels and not is_default:
            raise self._error("expected 'case' or 'default'")
        body: List[ast.Stmt] = []
        while not (
            self._check(TokenType.OP, "}")
            or self._check(TokenType.KEYWORD, "case")
            or self._check(TokenType.KEYWORD, "default")
        ):
            if self._check(TokenType.EOF):
                raise self._error("unterminated switch case")
            body.append(self.parse_statement())
        return ast.Case(labels=labels, body=body, is_default=is_default, line=line)

    def _parse_return(self) -> ast.Return:
        token = self._expect(TokenType.KEYWORD, "return")
        value: Optional[ast.Expr] = None
        if not self._check(TokenType.OP, ";"):
            value = self.parse_expression()
        self._expect(TokenType.OP, ";")
        return ast.Return(value=value, line=token.line)

    def _parse_expr_list(self) -> List[ast.Expr]:
        exprs = [self.parse_assignment_expr()]
        while self._match(TokenType.OP, ","):
            exprs.append(self.parse_assignment_expr())
        return exprs

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment_expr()

    def parse_assignment_expr(self) -> ast.Expr:
        expr = self._parse_ternary()
        if self.current.type is TokenType.OP and self.current.value in ASSIGN_OPS:
            op_token = self._advance()
            value = self.parse_assignment_expr()
            return ast.Assignment(
                target=expr, op=op_token.value, value=value, line=op_token.line
            )
        return expr

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._match(TokenType.OP, "?"):
            if_true = self.parse_expression()
            self._expect(TokenType.OP, ":")
            if_false = self._parse_ternary()
            return ast.TernaryOp(
                condition=condition,
                if_true=if_true,
                if_false=if_false,
                line=condition.line,
            )
        return condition

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.current.type is TokenType.OP and self.current.value in ops:
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(
                op=op_token.value, left=left, right=right, line=op_token.line
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.OP and token.value in ("-", "+", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.value, operand=operand, line=token.line)
        if token.type is TokenType.OP and token.value in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            return ast.IncDec(target=target, op=token.value, prefix=True, line=token.line)
        if token.type is TokenType.KEYWORD and token.value == "sizeof":
            self._advance()
            self._expect(TokenType.OP, "(")
            type_name = self._parse_type_name()
            self._expect(TokenType.OP, ")")
            return ast.SizeOf(type_name=type_name, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._match(TokenType.OP, "."):
                name = self._expect(TokenType.IDENT)
                expr = ast.FieldAccess(base=expr, name=name.value, line=name.line)
            elif self._match(TokenType.OP, "->"):
                name = self._expect(TokenType.IDENT)
                expr = ast.FieldAccess(base=expr, name=name.value, line=name.line)
            elif self._check(TokenType.OP, "["):
                bracket = self._advance()
                index = self.parse_expression()
                self._expect(TokenType.OP, "]")
                expr = ast.IndexAccess(base=expr, index=index, line=bracket.line)
            elif self._check(TokenType.OP, "(") and isinstance(expr, ast.Identifier):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokenType.OP, ")"):
                    args = self._parse_expr_list()
                self._expect(TokenType.OP, ")")
                expr = ast.Call(name=expr.name, args=args, line=expr.line)
            elif self.current.type is TokenType.OP and self.current.value in ("++", "--"):
                op_token = self._advance()
                expr = ast.IncDec(
                    target=expr, op=op_token.value, prefix=False, line=op_token.line
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.INT:
            self._advance()
            return ast.IntLiteral(value=int(token.value, 0), line=token.line)
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.FloatLiteral(value=float(token.value), line=token.line)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(value=token.value, line=token.line)
        if token.type is TokenType.CHAR:
            self._advance()
            return ast.CharLiteral(value=token.value, line=token.line)
        if token.type is TokenType.IDENT:
            self._advance()
            return ast.Identifier(name=token.value, line=token.line)
        if self._match(TokenType.OP, "("):
            expr = self.parse_expression()
            self._expect(TokenType.OP, ")")
            return expr
        raise self._error(f"unexpected token {token.value!r}")


def parse(source: str) -> ast.Program:
    """Parse ECode *source* into a :class:`~repro.ecode.ast.Program`."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single ECode expression (used by tests and the REPL-style
    examples)."""
    parser = Parser(source)
    expr = parser.parse_expression()
    if not parser._check(TokenType.EOF):
        raise parser._error("trailing input after expression")
    return expr
