"""ECode lexer.

ECode [10] is "a language subset of C" used to express message
transformations (paper Figure 5).  The lexer produces a flat token stream
with line/column positions for error reporting; ``//`` and ``/* */``
comments are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ECodeSyntaxError

KEYWORDS = frozenset(
    {
        "int",
        "long",
        "short",
        "unsigned",
        "signed",
        "double",
        "float",
        "char",
        "void",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
        "struct",
        "const",
        "switch",
        "case",
        "default",
    }
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ".",
    ",",
    ";",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CHAR = "char"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r} @{self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer over ECode source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> ECodeSyntaxError:
        return ECodeSyntaxError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, ahead: int = 0) -> str:
        """The character *ahead* positions away, or ``"\\0"`` past EOF.

        Returning a NUL (rather than ``""``) keeps membership tests like
        ``self._peek() in "eE"`` safe: the empty string is a substring of
        everything, which would turn EOF into an infinite match."""
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else "\0"

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.source):
                    if self.source[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise ECodeSyntaxError(
                        "unterminated block comment", start_line, start_col
                    )
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            line, column = self.line, self.column
            if self.pos >= len(self.source):
                yield Token(TokenType.EOF, "", line, column)
                return
            ch = self.source[self.pos]
            if ch.isalpha() or ch == "_":
                yield self._lex_word(line, column)
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._lex_number(line, column)
            elif ch == '"':
                yield self._lex_string(line, column)
            elif ch == "'":
                yield self._lex_char(line, column)
            else:
                yield self._lex_operator(line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        word = self.source[start : self.pos]
        kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
        return Token(kind, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        if self.source[self.pos] == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self.pos < len(self.source) and self.source[self.pos] in "0123456789abcdefABCDEF":
                self._advance()
            return Token(TokenType.INT, self.source[start : self.pos], line, column)
        while self.pos < len(self.source) and self.source[self.pos].isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self.pos < len(self.source) and self.source[self.pos].isdigit():
                self._advance()
        if self._peek() in "eE":
            probe = 1
            if self._peek(1) in "+-":
                probe = 2
            if self._peek(probe).isdigit():
                is_float = True
                self._advance(probe)
                while self.pos < len(self.source) and self.source[self.pos].isdigit():
                    self._advance()
        # consume C suffixes (L, U, f) without changing the value
        text = self.source[start : self.pos]
        while self._peek() in "lLuUfF":
            if self._peek() in "fF":
                is_float = True
            self._advance()
        kind = TokenType.FLOAT if is_float else TokenType.INT
        return Token(kind, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise ECodeSyntaxError("unterminated string literal", line, column)
            ch = self.source[self.pos]
            if ch == '"':
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, column)
            if ch == "\\":
                self._advance()
                chars.append(_unescape(self._peek(), line, column))
                self._advance()
            elif ch == "\n":
                raise ECodeSyntaxError("newline in string literal", line, column)
            else:
                chars.append(ch)
                self._advance()

    def _lex_char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        if self.pos >= len(self.source):
            raise ECodeSyntaxError("unterminated char literal", line, column)
        ch = self.source[self.pos]
        if ch == "\\":
            self._advance()
            value = _unescape(self._peek(), line, column)
            self._advance()
        else:
            value = ch
            self._advance()
        if self._peek() != "'":
            raise ECodeSyntaxError("unterminated char literal", line, column)
        self._advance()
        return Token(TokenType.CHAR, value, line, column)

    def _lex_operator(self, line: int, column: int) -> Token:
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenType.OP, op, line, column)
        raise self.error(f"unexpected character {self.source[self.pos]!r}")


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\x00",
    "\\": "\\",
    '"': '"',
    "'": "'",
    "b": "\b",
    "f": "\f",
}


def _unescape(ch: str, line: int, column: int) -> str:
    try:
        return _ESCAPES[ch]
    except KeyError:
        raise ECodeSyntaxError(f"unknown escape sequence \\{ch}", line, column) from None


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, returning a list ending with an EOF token."""
    return list(Lexer(source).tokens())
