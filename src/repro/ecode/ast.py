"""ECode abstract syntax tree.

Plain dataclass nodes shared by the semantic checker, the Python code
generator and the tree-walking interpreter.  Every node carries the
source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class Node:
    """Base class for all AST nodes."""

    line: int


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int
    line: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float
    line: int = 0


@dataclass
class StringLiteral(Expr):
    value: str
    line: int = 0


@dataclass
class CharLiteral(Expr):
    value: str
    line: int = 0


@dataclass
class Identifier(Expr):
    name: str
    line: int = 0


@dataclass
class FieldAccess(Expr):
    """``base.name`` (``base->name`` is normalized to this)."""

    base: Expr
    name: str
    line: int = 0


@dataclass
class IndexAccess(Expr):
    base: Expr
    index: Expr
    line: int = 0


@dataclass
class UnaryOp(Expr):
    """Prefix ``op operand`` for op in ``- ! ~ +``."""

    op: str
    operand: Expr
    line: int = 0


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class TernaryOp(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr
    line: int = 0


@dataclass
class Call(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Assignment(Expr):
    """``target op value`` for op in ``= += -= *= /= %= &= |= ^= <<= >>=``.

    Assignments parse as expressions (C semantics) but the semantic
    checker restricts them to statement positions and for-clauses."""

    target: Expr
    op: str
    value: Expr
    line: int = 0


@dataclass
class IncDec(Expr):
    """``target++ / target-- / ++target / --target``; statement-position
    only, like :class:`Assignment`."""

    target: Expr
    op: str  # "++" or "--"
    prefix: bool = False
    line: int = 0


@dataclass
class SizeOf(Expr):
    """``sizeof(type-name)`` — resolved to the C size of the named type."""

    type_name: str
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    pass


@dataclass
class Declarator:
    """One ``name [= init]`` or ``name[N]`` inside a declaration.

    ``array_size`` is the constant element count of a local array
    declarator (``int tmp[8];``); local arrays take the element type's
    zero default and cannot combine with an initializer."""

    name: str
    init: Optional[Expr] = None
    array_size: Optional[int] = None
    line: int = 0


@dataclass
class Declaration(Stmt):
    """``int i, count = 0;`` — uninitialized scalars default to the type's
    zero value (ECode guarantees deterministic locals)."""

    type_name: str
    declarators: List[Declarator] = field(default_factory=list)
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None
    line: int = 0


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt
    line: int = 0


@dataclass
class DoWhile(Stmt):
    body: Stmt
    condition: Expr
    line: int = 0


@dataclass
class For(Stmt):
    """``for (init; cond; update) body``; *init* may be a declaration or a
    comma-list of expressions, *update* a comma-list of expressions."""

    init: Optional[Union[Stmt, List[Expr]]]
    condition: Optional[Expr]
    update: List[Expr]
    body: Stmt
    line: int = 0


@dataclass
class Case:
    """One arm of a switch: shared labels, a body, or the default arm.

    ECode restricts switch to the no-fallthrough subset: every non-empty
    body ends with ``break`` or ``return`` (the trailing break is
    consumed by the translation).  Multiple labels may share one body
    (``case 1: case 2: ...``)."""

    labels: List[Expr] = field(default_factory=list)  # empty -> default
    body: List["Stmt"] = field(default_factory=list)
    is_default: bool = False
    line: int = 0


@dataclass
class Switch(Stmt):
    subject: Expr = None  # type: ignore[assignment]
    cases: List[Case] = field(default_factory=list)
    line: int = 0


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    line: int = 0


@dataclass
class Break(Stmt):
    line: int = 0


@dataclass
class Continue(Stmt):
    line: int = 0


@dataclass
class Program(Node):
    """A full ECode procedure body: a statement sequence."""

    body: List[Stmt] = field(default_factory=list)
    line: int = 0


def strip_case_terminator(body: List[Stmt]) -> "Tuple[List[Stmt], bool]":
    """Normalize a switch-case body for the no-fallthrough translation.

    Returns ``(body_without_trailing_break, properly_terminated)``.  A
    body is properly terminated when it is empty, ends with ``break`` or
    ``return``, or ends with a block that is itself properly terminated
    (``case 1: { ...; break; }``).
    """
    if not body:
        return body, True
    last = body[-1]
    if isinstance(last, Break):
        return body[:-1], True
    if isinstance(last, Return):
        return list(body), True
    if isinstance(last, Block):
        inner, ok = strip_case_terminator(last.statements)
        if ok:
            return list(body[:-1]) + [Block(statements=inner, line=last.line)], True
    return list(body), False


def stray_breaks(body: List[Stmt]) -> List[Break]:
    """``break`` statements in *body* that would bind to the switch
    itself (i.e. not to a nested loop or nested switch).  The ECode
    subset only supports the single terminating break, so these are
    check-time errors."""
    found: List[Break] = []
    for stmt in body:
        if isinstance(stmt, Break):
            found.append(stmt)
        elif isinstance(stmt, Block):
            found.extend(stray_breaks(stmt.statements))
        elif isinstance(stmt, If):
            found.extend(stray_breaks([stmt.then_branch]))
            if stmt.else_branch is not None:
                found.extend(stray_breaks([stmt.else_branch]))
        # loops and nested switches own their breaks: do not descend
    return found


def walk(node: Node):
    """Yield *node* and all of its descendants (pre-order)."""
    yield node
    for child in _children(node):
        yield from walk(child)


def _children(node: Node) -> Tuple[Node, ...]:
    out: List[Node] = []
    for value in vars(node).values():
        if isinstance(value, Node):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, Node))
        elif isinstance(value, Declarator):
            if value.init is not None:
                out.append(value.init)
    if isinstance(node, (Declaration,)):
        for decl in node.declarators:
            if decl.init is not None:
                out.append(decl.init)
    if isinstance(node, Switch):
        for case in node.cases:
            out.extend(case.labels)
            out.extend(case.body)
    return tuple(out)
