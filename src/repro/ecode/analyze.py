"""Static analyses over ECode ASTs, used by whole-route fusion.

The morph layer's route compiler (:mod:`repro.morph.fusion`) inlines
transform bodies into one generated function.  Before it can do that it
needs three facts about each program, all derivable from the AST the
compiler keeps on every :class:`~repro.ecode.codegen.ECodeProcedure`:

* :func:`has_return` — a transform with an explicit ``return`` cannot be
  spliced into a larger function body,
* :func:`fields_used` — which top-level fields of a record parameter the
  program touches (drives dead-field decode elimination),
* :func:`prune_dead_stores` — a conservative dead-store eliminator that
  removes assignments to output fields the *next* consumer of the record
  never reads (the Figure 5 transform's ``src_list``/``sink_list``
  rebuild is pure waste when the next hop is the v1.0 → v0.0 drop).

Pruning is equivalence-preserving only for statements whose evaluation
cannot raise.  The pruner therefore refuses anything containing calls,
nested assignments, C division/modulo (which trap on zero), or accesses
not rooted at a known record parameter with a statically known field.
Index reads rooted at the *input* parameter are permitted: fused routes
only ever see records produced by the bounds-checked wire decoder (or by
the preceding inlined step), where variable-array lengths match their
count fields by construction.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.ecode import ast


def has_return(program: ast.Program) -> bool:
    """True when the program contains an explicit ``return`` anywhere."""
    return any(isinstance(node, ast.Return) for node in ast.walk(program))


def declared_names(program: ast.Program) -> Set[str]:
    """Every local name introduced by a declaration in *program*."""
    names: Set[str] = set()
    for node in ast.walk(program):
        if isinstance(node, ast.Declaration):
            names.update(decl.name for decl in node.declarators)
    return names


def fields_used(program: ast.Program, param: str) -> Optional[Set[str]]:
    """Top-level fields of record parameter *param* the program touches
    (reads or writes), or ``None`` when *param* escapes field-access-base
    position (aliasing, passing to a call, ...) and every field must be
    treated as live."""
    if param in declared_names(program):
        return None  # shadowed: occurrences are not the parameter
    base_ids: Set[int] = set()
    names: Set[str] = set()
    for node in ast.walk(program):
        if (
            isinstance(node, ast.FieldAccess)
            and isinstance(node.base, ast.Identifier)
            and node.base.name == param
        ):
            base_ids.add(id(node.base))
            names.add(node.name)
    total = sum(
        1
        for node in ast.walk(program)
        if isinstance(node, ast.Identifier) and node.name == param
    )
    if total != len(base_ids):
        return None
    return names


# ---------------------------------------------------------------------------
# Dead-store elimination
# ---------------------------------------------------------------------------


def _access_root(expr: ast.Expr) -> Tuple[Optional[str], Optional[str]]:
    """For a FieldAccess/IndexAccess chain, ``(root identifier name,
    top-level field name)``; ``(None, None)`` when the chain does not
    bottom out in a plain identifier."""
    top: Optional[str] = None
    node = expr
    while True:
        if isinstance(node, ast.FieldAccess):
            top = node.name
            node = node.base
        elif isinstance(node, ast.IndexAccess):
            node = node.base
        elif isinstance(node, ast.Identifier):
            return node.name, top
        else:
            return None, None


class _Pruner:
    def __init__(
        self,
        output_param: str,
        live: Set[str],
        input_param: str,
        input_fields: Set[str],
        output_fields: Set[str],
    ) -> None:
        self.output_param = output_param
        self.live = live
        self.input_param = input_param
        self.input_fields = input_fields
        self.output_fields = output_fields

    # -- purity --------------------------------------------------------

    def pure(self, expr: Optional[ast.Expr]) -> bool:
        """Can evaluating *expr* be skipped without observable effect?
        (No side effects and, as far as statically checkable, no raise.)"""
        if expr is None:
            return True
        if isinstance(
            expr,
            (ast.IntLiteral, ast.FloatLiteral, ast.StringLiteral,
             ast.CharLiteral, ast.Identifier, ast.SizeOf),
        ):
            return True
        if isinstance(expr, ast.UnaryOp):
            return self.pure(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("/", "%"):
                return False  # c_div/c_mod raise on a zero divisor
            return self.pure(expr.left) and self.pure(expr.right)
        if isinstance(expr, ast.TernaryOp):
            return (
                self.pure(expr.condition)
                and self.pure(expr.if_true)
                and self.pure(expr.if_false)
            )
        if isinstance(expr, (ast.FieldAccess, ast.IndexAccess)):
            return self._pure_access(expr)
        # Call, Assignment, IncDec: effects (or unknown)
        return False

    def _pure_access(self, expr: ast.Expr) -> bool:
        root, top = _access_root(expr)
        if root == self.input_param:
            if top not in self.input_fields:
                return False  # would KeyError in the staged path
        elif root == self.output_param:
            if top not in self.output_fields:
                return False
        else:
            return False  # field/index access on a scalar local: TypeError
        # index expressions along the chain must themselves be pure
        node = expr
        while isinstance(node, (ast.FieldAccess, ast.IndexAccess)):
            if isinstance(node, ast.IndexAccess) and not self.pure(node.index):
                return False
            node = node.base
        return True

    # -- statement rewriting -------------------------------------------

    def _dead_target(self, target: ast.Expr) -> bool:
        """Is *target* a store into a dead field of the output record?"""
        root, top = _access_root(target)
        if root != self.output_param or top is None:
            return False
        if top in self.live or top not in self.output_fields:
            return False
        return self._pure_access(target)

    def prune_stmt(self, stmt: ast.Stmt) -> Optional[ast.Stmt]:
        if isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, ast.Assignment):
                if (
                    not isinstance(expr.value, (ast.Assignment, ast.IncDec))
                    and self._dead_target(expr.target)
                    and self.pure(expr.value)
                ):
                    return None
            elif isinstance(expr, ast.IncDec) and self._dead_target(expr.target):
                return None
            return stmt
        if isinstance(stmt, ast.Block):
            statements = self.prune_body(stmt.statements)
            return ast.Block(statements=statements, line=stmt.line)
        if isinstance(stmt, ast.If):
            then_branch = self.prune_stmt(stmt.then_branch) or ast.Block([])
            else_branch = (
                self.prune_stmt(stmt.else_branch)
                if stmt.else_branch is not None
                else None
            )
            if (
                _is_empty(then_branch)
                and (else_branch is None or _is_empty(else_branch))
                and self.pure(stmt.condition)
            ):
                return None
            return ast.If(
                condition=stmt.condition,
                then_branch=then_branch,
                else_branch=else_branch,
                line=stmt.line,
            )
        if isinstance(stmt, ast.While):
            return ast.While(
                condition=stmt.condition,
                body=self.prune_stmt(stmt.body) or ast.Block([]),
                line=stmt.line,
            )
        if isinstance(stmt, ast.DoWhile):
            return ast.DoWhile(
                body=self.prune_stmt(stmt.body) or ast.Block([]),
                condition=stmt.condition,
                line=stmt.line,
            )
        if isinstance(stmt, ast.For):
            return ast.For(
                init=stmt.init,
                condition=stmt.condition,
                update=stmt.update,
                body=self.prune_stmt(stmt.body) or ast.Block([]),
                line=stmt.line,
            )
        if isinstance(stmt, ast.Switch):
            cases = [
                ast.Case(
                    labels=case.labels,
                    body=self.prune_body(case.body),
                    is_default=case.is_default,
                    line=case.line,
                )
                for case in stmt.cases
            ]
            return ast.Switch(subject=stmt.subject, cases=cases, line=stmt.line)
        return stmt

    def prune_body(self, body: Iterable[ast.Stmt]) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for stmt in body:
            pruned = self.prune_stmt(stmt)
            if pruned is not None:
                out.append(pruned)
        return out


def _is_empty(stmt: ast.Stmt) -> bool:
    return isinstance(stmt, ast.Block) and not stmt.statements


def _local_reads(body: List[ast.Stmt], params: Set[str]) -> Set[str]:
    """Names read at least once (a plain-assignment or inc/dec *target*
    position is a write, not a read)."""
    reads: Set[str] = set()
    writes_only_roots: Set[int] = set()
    for stmt in _iter_stmts(body):
        expr = stmt.expr if isinstance(stmt, ast.ExprStmt) else None
        if isinstance(expr, ast.Assignment) and expr.op == "=":
            if isinstance(expr.target, ast.Identifier):
                writes_only_roots.add(id(expr.target))
        elif isinstance(expr, ast.IncDec):
            if isinstance(expr.target, ast.Identifier):
                writes_only_roots.add(id(expr.target))
    for stmt in _iter_stmts(body):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Identifier) and node.name not in params:
                if id(node) not in writes_only_roots:
                    reads.add(node.name)
    return reads


def _iter_stmts(body: List[ast.Stmt]):
    for stmt in body:
        yield stmt
        for node in ast.walk(stmt):
            if isinstance(node, ast.Stmt) and node is not stmt:
                yield node


def _sweep_locals(
    body: List[ast.Stmt],
    params: Set[str],
    pure: Callable[[Optional[ast.Expr]], bool],
) -> Tuple[List[ast.Stmt], bool]:
    """One pass of write-only-local elimination; returns (body, changed).

    *pure* is the field-aware purity predicate of the :class:`_Pruner`
    that ran first, so conditionals left empty by the field pass (their
    record-access conditions are readable but their bodies only fed dead
    stores) disappear here too."""
    reads = _local_reads(body, params)
    changed = False

    def keep(stmt: ast.Stmt) -> Optional[ast.Stmt]:
        nonlocal changed
        if isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if (
                isinstance(expr, ast.Assignment)
                and expr.op == "="
                and isinstance(expr.target, ast.Identifier)
                and expr.target.name not in params
                and expr.target.name not in reads
                and not isinstance(expr.value, (ast.Assignment, ast.IncDec))
                and pure(expr.value)
            ):
                changed = True
                return None
            if (
                isinstance(expr, ast.IncDec)
                and isinstance(expr.target, ast.Identifier)
                and expr.target.name not in params
                and expr.target.name not in reads
            ):
                changed = True
                return None
            return stmt
        if isinstance(stmt, ast.Declaration):
            declarators = [
                decl
                for decl in stmt.declarators
                if decl.name in reads
                or decl.name in params
                or (decl.init is not None and not pure(decl.init))
            ]
            if len(declarators) != len(stmt.declarators):
                changed = True
                if not declarators:
                    return None
            return ast.Declaration(
                type_name=stmt.type_name, declarators=declarators, line=stmt.line
            )
        if isinstance(stmt, ast.Block):
            return ast.Block(statements=_sweep_list(stmt.statements), line=stmt.line)
        if isinstance(stmt, ast.If):
            then_branch = keep(stmt.then_branch) or ast.Block([])
            else_branch = (
                keep(stmt.else_branch) if stmt.else_branch is not None else None
            )
            if (
                _is_empty(then_branch)
                and (else_branch is None or _is_empty(else_branch))
                and pure(stmt.condition)
            ):
                changed = True
                return None
            return ast.If(stmt.condition, then_branch, else_branch, line=stmt.line)
        if isinstance(stmt, ast.While):
            return ast.While(stmt.condition, keep(stmt.body) or ast.Block([]),
                             line=stmt.line)
        if isinstance(stmt, ast.DoWhile):
            return ast.DoWhile(keep(stmt.body) or ast.Block([]), stmt.condition,
                               line=stmt.line)
        if isinstance(stmt, ast.For):
            return ast.For(stmt.init, stmt.condition, stmt.update,
                           keep(stmt.body) or ast.Block([]), line=stmt.line)
        return stmt

    def _sweep_list(statements: List[ast.Stmt]) -> List[ast.Stmt]:
        out = []
        for child in statements:
            kept = keep(child)
            if kept is not None:
                out.append(kept)
        return out

    return _sweep_list(body), changed


def prune_dead_stores(
    program: ast.Program,
    output_param: str,
    live: Set[str],
    input_param: str,
    input_fields: Set[str],
    output_fields: Set[str],
) -> ast.Program:
    """A copy of *program* without stores into fields of *output_param*
    outside *live*, when removal is provably unobservable (see the module
    docstring for the exact refusal rules).  Locals that become
    write-only afterwards are swept as well, to a fixpoint, so counters
    feeding only dead stores (Figure 5's ``src_count``) disappear too."""
    pruner = _Pruner(output_param, set(live), input_param,
                     set(input_fields), set(output_fields))
    body = pruner.prune_body(program.body)
    params = {input_param, output_param}
    for _ in range(32):  # fixpoint; bound is paranoia, bodies are small
        body, changed = _sweep_locals(body, params, pruner.pure)
        if not changed:
            break
    return ast.Program(body=body, line=program.line)
