"""ECode — dynamic code generation for a C-subset transformation language.

The paper expresses message transformations in *ECode* [10], "a language
subset of C", dynamically compiled to native code.  This package is the
Python analogue: ECode source is lexed, parsed, semantically checked,
translated to Python source and compiled with :func:`compile` — a real
runtime code-generation pipeline with the same one-time-cost/cached-fast-
path structure the paper measures.

Quick use::

    from repro.ecode import compile_procedure

    xform = compile_procedure('''
        int i;
        old.total = 0;
        for (i = 0; i < new.count; i++) {
            old.total = old.total + new.values[i];
        }
    ''')
    xform(new_record, old_record)

A tree-walking interpreter (:func:`interpret_procedure`) provides the
same semantics without compilation, as the ablation baseline.
"""

from repro.ecode.codegen import ECodeProcedure, compile_procedure, generate_source
from repro.ecode.interp import InterpretedProcedure, interpret_procedure
from repro.ecode.lexer import Token, TokenType, tokenize
from repro.ecode.parser import parse, parse_expression
from repro.ecode.runtime import AutoList, BUILTINS, c_div, c_mod, sizeof
from repro.ecode.typecheck import check

__all__ = [
    "AutoList",
    "BUILTINS",
    "ECodeProcedure",
    "InterpretedProcedure",
    "Token",
    "TokenType",
    "c_div",
    "c_mod",
    "check",
    "compile_procedure",
    "generate_source",
    "interpret_procedure",
    "parse",
    "parse_expression",
    "sizeof",
    "tokenize",
]
