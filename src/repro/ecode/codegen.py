"""ECode → Python dynamic code generation.

The Python analogue of the paper's dynamic *binary* code generation: the
transformation snippet is translated into Python source specialized for
its parameter names, compiled with :func:`compile`, and the resulting
function object cached by the morph layer.  The generated source is
available via :func:`generate_source` for inspection and testing.

Translation notes (C semantics preserved):

* ``a / b`` and ``a % b`` route through :func:`repro.ecode.runtime.c_div`
  / ``c_mod`` (truncation toward zero, dividend-signed remainder),
* ``&&`` / ``||`` / ``!`` yield ``0``/``1`` like C, still short-circuit,
* field access compiles to dict subscripts (``rec['name']``) so record
  fields can never collide with Python attribute names,
* ``continue`` inside a ``for`` loop first executes the loop's update
  expressions (C jumps to the update clause; a naive ``continue`` in the
  Python ``while`` translation would skip it).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.ecode import ast
from repro.ecode.parser import parse
from repro.ecode.runtime import BUILTINS, c_div, c_mod, default_for_type, sizeof
from repro.ecode.typecheck import check
from repro.errors import ECodeRuntimeError, ECodeTypeError


class _PyEmitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 1
        self._counter = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"


class _CodeGenerator:
    def __init__(self, rename: Optional[Dict[str, str]] = None) -> None:
        self.em = _PyEmitter()
        #: identifier substitution applied to every name the program
        #: mentions (parameters *and* locals) — the route fuser maps
        #: ``new``/``old`` to its own record variables and prefixes locals
        #: so consecutive inlined steps cannot collide.
        self.rename = rename or {}
        #: stack of per-loop "before continue" emitters: a for-loop re-runs
        #: its update clause, a do-while re-tests its condition, a while
        #: loop needs nothing.
        self.loop_continue_hooks: List[Callable[[], None]] = []

    def _name(self, name: str) -> str:
        return self.rename.get(name, name)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Declaration):
            for decl in stmt.declarators:
                name = self._name(decl.name)
                if decl.array_size is not None:
                    element = repr(default_for_type(stmt.type_name))
                    self.em.emit(
                        f"{name} = [{element}] * {decl.array_size}"
                    )
                    continue
                if decl.init is not None:
                    value = self.gen_expr(decl.init)
                else:
                    value = repr(default_for_type(stmt.type_name))
                self.em.emit(f"{name} = {value}")
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_statement_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            if not stmt.statements:
                self.em.emit("pass")
            for child in stmt.statements:
                self.gen_stmt(child)
        elif isinstance(stmt, ast.If):
            self.em.emit(f"if {self.gen_expr(stmt.condition)}:")
            self._indented(stmt.then_branch)
            if stmt.else_branch is not None:
                self.em.emit("else:")
                self._indented(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self.loop_continue_hooks.append(lambda: None)
            self.em.emit(f"while {self.gen_expr(stmt.condition)}:")
            self._indented(stmt.body)
            self.loop_continue_hooks.pop()
        elif isinstance(stmt, ast.DoWhile):
            condition = self.gen_expr(stmt.condition)

            def emit_test(cond: str = condition) -> None:
                self.em.emit(f"if not ({cond}):")
                self.em.indent += 1
                self.em.emit("break")
                self.em.indent -= 1

            self.loop_continue_hooks.append(emit_test)
            self.em.emit("while True:")
            self.em.indent += 1
            self.gen_stmt(stmt.body)
            emit_test()
            self.em.indent -= 1
            self.loop_continue_hooks.pop()
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.em.emit(f"return {self.gen_expr(stmt.value)}")
            else:
                self.em.emit("return None")
        elif isinstance(stmt, ast.Break):
            self.em.emit("break")
        elif isinstance(stmt, ast.Continue):
            # C continue jumps to the update clause (for) / the condition
            # test (do-while) of the enclosing loop before re-entering it.
            self.loop_continue_hooks[-1]()
            self.em.emit("continue")
        else:  # pragma: no cover
            raise ECodeTypeError(f"cannot generate code for {stmt!r}")

    def _indented(self, stmt: ast.Stmt) -> None:
        self.em.indent += 1
        start = len(self.em.lines)
        self.gen_stmt(stmt)
        if len(self.em.lines) == start:
            self.em.emit("pass")
        self.em.indent -= 1

    def _gen_for(self, stmt: ast.For) -> None:
        if isinstance(stmt.init, ast.Declaration):
            self.gen_stmt(stmt.init)
        elif isinstance(stmt.init, list):
            for expr in stmt.init:
                self._gen_statement_expr(expr)
        condition = self.gen_expr(stmt.condition) if stmt.condition is not None else "True"

        def emit_updates(updates: List[ast.Expr] = stmt.update) -> None:
            for update in updates:
                self._gen_statement_expr(update)

        self.loop_continue_hooks.append(emit_updates)
        self.em.emit(f"while {condition}:")
        self.em.indent += 1
        start = len(self.em.lines)
        self.gen_stmt(stmt.body)
        emit_updates()
        if len(self.em.lines) == start:
            self.em.emit("pass")
        self.em.indent -= 1
        self.loop_continue_hooks.pop()

    def _gen_switch(self, stmt: ast.Switch) -> None:
        """No-fallthrough switch compiles to an if/elif chain; the checker
        guarantees each body's trailing break, which the translation
        consumes."""
        subject = self.em.fresh("sw")
        self.em.emit(f"{subject} = {self.gen_expr(stmt.subject)}")
        labeled = [case for case in stmt.cases if not case.is_default]
        default = next((case for case in stmt.cases if case.is_default), None)
        keyword = "if"
        for case in labeled:
            condition = " or ".join(
                f"{subject} == {self.gen_expr(label)}" for label in case.labels
            )
            self.em.emit(f"{keyword} {condition}:")
            self._gen_case_body(case)
            keyword = "elif"
        if default is not None:
            if keyword == "if":  # a switch of only 'default:'
                self._gen_case_body(default, header=None)
            else:
                self.em.emit("else:")
                self._gen_case_body(default)

    def _gen_case_body(self, case: ast.Case, header: str = "indent") -> None:
        body, _terminated = ast.strip_case_terminator(case.body)
        if header is None:
            for child in body:
                self.gen_stmt(child)
            return
        self.em.indent += 1
        if not body:
            self.em.emit("pass")
        for child in body:
            self.gen_stmt(child)
        self.em.indent -= 1

    def _gen_statement_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Assignment):
            # flatten plain '=' chains:  a = b = 0
            targets = [self.gen_expr(expr.target)]
            value = expr.value
            while isinstance(value, ast.Assignment):
                targets.append(self.gen_expr(value.target))
                value = value.value
            rhs = self.gen_expr(value)
            if expr.op == "=":
                self.em.emit(" = ".join(targets + [rhs]))
            else:
                target = targets[0]
                arith = expr.op[:-1]
                if arith in ("/", "%"):
                    helper = "_cdiv" if arith == "/" else "_cmod"
                    self.em.emit(f"{target} = {helper}({target}, {rhs})")
                else:
                    self.em.emit(f"{target} {expr.op} ({rhs})")
        elif isinstance(expr, ast.IncDec):
            target = self.gen_expr(expr.target)
            self.em.emit(f"{target} {'+=' if expr.op == '++' else '-='} 1")
        else:
            self.em.emit(f"{self.gen_expr(expr)}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return repr(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._name(expr.name)
        if isinstance(expr, ast.FieldAccess):
            return f"{self.gen_expr(expr.base)}[{expr.name!r}]"
        if isinstance(expr, ast.IndexAccess):
            return f"{self.gen_expr(expr.base)}[{self.gen_expr(expr.index)}]"
        if isinstance(expr, ast.UnaryOp):
            operand = self.gen_expr(expr.operand)
            if expr.op == "!":
                return f"(0 if {operand} else 1)"
            if expr.op == "+":
                return f"(+{operand})"
            return f"({expr.op}{operand})"
        if isinstance(expr, ast.BinaryOp):
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            if expr.op == "/":
                return f"_cdiv({left}, {right})"
            if expr.op == "%":
                return f"_cmod({left}, {right})"
            if expr.op == "&&":
                return f"(1 if ({left} and {right}) else 0)"
            if expr.op == "||":
                return f"(1 if ({left} or {right}) else 0)"
            return f"({left} {expr.op} {right})"
        if isinstance(expr, ast.TernaryOp):
            return (
                f"({self.gen_expr(expr.if_true)} if {self.gen_expr(expr.condition)} "
                f"else {self.gen_expr(expr.if_false)})"
            )
        if isinstance(expr, ast.Call):
            args = ", ".join(self.gen_expr(arg) for arg in expr.args)
            return f"_fn_{expr.name}({args})"
        if isinstance(expr, ast.SizeOf):
            return repr(sizeof(expr.type_name))
        raise ECodeTypeError(  # pragma: no cover - checker rejects these first
            f"cannot generate expression {expr!r}"
        )


def generate_source(
    program: ast.Program,
    params: Sequence[str],
    name: str = "_ecode_proc",
) -> str:
    """Translate a checked ECode program into Python function source."""
    gen = _CodeGenerator()
    for stmt in program.body:
        gen.gen_stmt(stmt)
    body = gen.em.lines or ["    pass"]
    header = f"def {name}({', '.join(params)}):"
    return "\n".join([header] + body) + "\n"


def generate_inline(
    program: ast.Program,
    rename: Optional[Dict[str, str]] = None,
    indent: int = 1,
) -> List[str]:
    """Translate a checked program into indented statement lines suitable
    for splicing into a larger generated function (whole-route fusion).

    *rename* substitutes identifiers wholesale — parameters to the
    caller's record variables, locals to collision-free prefixed names.
    The caller is responsible for ensuring the program has no ``return``
    (see :func:`repro.ecode.analyze.has_return`)."""
    gen = _CodeGenerator(rename=rename)
    gen.em.indent = indent
    for stmt in program.body:
        gen.gen_stmt(stmt)
    return gen.em.lines or ["    " * indent + "pass"]


def compile_procedure(
    source: str,
    params: Sequence[str] = ("new", "old"),
    name: str = "transform",
) -> "ECodeProcedure":
    """Parse, check, translate and compile an ECode procedure.

    Returns an :class:`ECodeProcedure` whose call signature matches
    *params* (default ``(new, old)`` — the paper's transform convention:
    read the incoming ``new`` record, populate the ``old`` one).
    """
    from repro.obs import OBS

    if not OBS.enabled:
        return _compile_procedure(source, params, name)
    with OBS.tracer.span("ecode.codegen", procedure=name):
        start = time.perf_counter()
        procedure = _compile_procedure(source, params, name)
        elapsed = time.perf_counter() - start
    OBS.metrics.counter("ecode.codegen.compiles").inc()
    OBS.metrics.histogram("ecode.codegen.seconds").observe(elapsed)
    return procedure


def _compile_procedure(
    source: str,
    params: Sequence[str],
    name: str,
) -> "ECodeProcedure":
    program = parse(source)
    check(program, params)
    # caller-supplied names may be arbitrary labels (channel ids, format
    # names); mangle to a valid identifier for the generated def
    mangled = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    py_source = generate_source(program, params, name=f"_ecode_{mangled}")
    namespace: Dict[str, Any] = {
        "_cdiv": c_div,
        "_cmod": c_mod,
    }
    for fn_name, fn in BUILTINS.items():
        namespace[f"_fn_{fn_name}"] = fn
    code = compile(py_source, f"<ecode:{name}>", "exec")
    exec(code, namespace)
    return ECodeProcedure(
        name=name,
        params=tuple(params),
        source=source,
        program=program,
        python_source=py_source,
        function=namespace[f"_ecode_{mangled}"],
    )


class ECodeProcedure:
    """A compiled ECode routine.

    Callable with exactly the declared parameters; keeps the original
    ECode source, the parsed AST and the generated Python source for
    inspection (tests audit the translation through these)."""

    __slots__ = ("name", "params", "source", "program", "python_source", "_function")

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        source: str,
        program: ast.Program,
        python_source: str,
        function: Callable[..., Any],
    ) -> None:
        self.name = name
        self.params = tuple(params)
        self.source = source
        self.program = program
        self.python_source = python_source
        self._function = function

    def __call__(self, *args: Any) -> Any:
        if len(args) != len(self.params):
            raise ECodeRuntimeError(
                f"{self.name} expects {len(self.params)} argument(s) "
                f"{self.params}, got {len(args)}"
            )
        try:
            return self._function(*args)
        except ECodeRuntimeError:
            raise
        except (KeyError, IndexError, TypeError, AttributeError, ValueError) as exc:
            raise ECodeRuntimeError(
                f"ECode procedure {self.name!r} failed: {exc!r}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECodeProcedure({self.name!r}, params={self.params})"
