"""ECode tree-walking interpreter.

Executes the AST directly with the same semantics as the generated Python
code (:mod:`repro.ecode.codegen`).  It exists for two reasons:

* it is the baseline arm of the DCG-vs-interpretation ablation benchmark
  (the paper's core efficiency claim is that dynamically *compiled*
  conversion routines beat interpretive approaches), and
* the test suite cross-checks the compiler against it on random programs
  — two independent implementations agreeing is strong evidence both
  match the intended C semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.ecode import ast
from repro.ecode.parser import parse
from repro.ecode.runtime import BUILTINS, c_div, c_mod, default_for_type, sizeof
from repro.ecode.typecheck import check
from repro.errors import ECodeRuntimeError


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Env:
    """Flat variable environment (the checker rejects shadowing, so block
    scoping collapses to one function-level namespace, matching the
    compiled translation)."""

    __slots__ = ("vars",)

    def __init__(self, initial: Dict[str, Any]) -> None:
        self.vars = dict(initial)

    def get(self, name: str) -> Any:
        try:
            return self.vars[name]
        except KeyError:
            raise ECodeRuntimeError(f"undefined variable {name!r}") from None

    def set(self, name: str, value: Any) -> None:
        self.vars[name] = value


class Interpreter:
    def __init__(self, program: ast.Program, params: Sequence[str]) -> None:
        self.program = program
        self.params = tuple(params)

    def run(self, *args: Any) -> Any:
        if len(args) != len(self.params):
            raise ECodeRuntimeError(
                f"expected {len(self.params)} argument(s), got {len(args)}"
            )
        env = _Env(dict(zip(self.params, args)))
        try:
            for stmt in self.program.body:
                self.exec_stmt(stmt, env)
        except _ReturnSignal as signal:
            return signal.value
        return None

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, env: _Env) -> None:
        if isinstance(stmt, ast.Declaration):
            for decl in stmt.declarators:
                if decl.array_size is not None:
                    default = default_for_type(stmt.type_name)
                    env.set(decl.name, [default] * decl.array_size)
                elif decl.init is not None:
                    env.set(decl.name, self.eval_expr(decl.init, env))
                else:
                    env.set(decl.name, default_for_type(stmt.type_name))
        elif isinstance(stmt, ast.ExprStmt):
            self._exec_expr_stmt(stmt.expr, env)
        elif isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self.exec_stmt(child, env)
        elif isinstance(stmt, ast.If):
            if self.eval_expr(stmt.condition, env):
                self.exec_stmt(stmt.then_branch, env)
            elif stmt.else_branch is not None:
                self.exec_stmt(stmt.else_branch, env)
        elif isinstance(stmt, ast.While):
            while self.eval_expr(stmt.condition, env):
                try:
                    self.exec_stmt(stmt.body, env)
                except _ContinueSignal:
                    continue
                except _BreakSignal:
                    break
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    self.exec_stmt(stmt.body, env)
                except _ContinueSignal:
                    pass
                except _BreakSignal:
                    break
                if not self.eval_expr(stmt.condition, env):
                    break
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, ast.Return):
            value = self.eval_expr(stmt.value, env) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        else:  # pragma: no cover
            raise ECodeRuntimeError(f"cannot execute {stmt!r}")

    def _exec_for(self, stmt: ast.For, env: _Env) -> None:
        if isinstance(stmt.init, ast.Declaration):
            self.exec_stmt(stmt.init, env)
        elif isinstance(stmt.init, list):
            for expr in stmt.init:
                self._exec_expr_stmt(expr, env)
        while stmt.condition is None or self.eval_expr(stmt.condition, env):
            try:
                self.exec_stmt(stmt.body, env)
            except _ContinueSignal:
                pass
            except _BreakSignal:
                break
            for update in stmt.update:
                self._exec_expr_stmt(update, env)

    def _exec_switch(self, stmt: ast.Switch, env: _Env) -> None:
        value = self.eval_expr(stmt.subject, env)
        chosen: "ast.Case | None" = None
        default: "ast.Case | None" = None
        for case in stmt.cases:
            if case.is_default:
                default = case
                continue
            if any(value == self.eval_expr(label, env) for label in case.labels):
                chosen = case
                break
        case = chosen if chosen is not None else default
        if case is None:
            return
        body, _terminated = ast.strip_case_terminator(case.body)
        for child in body:
            self.exec_stmt(child, env)

    def _exec_expr_stmt(self, expr: ast.Expr, env: _Env) -> None:
        if isinstance(expr, ast.Assignment):
            self._exec_assignment(expr, env)
        elif isinstance(expr, ast.IncDec):
            store, load = self._resolve_lvalue(expr.target, env)
            delta = 1 if expr.op == "++" else -1
            store(load() + delta)
        else:
            self.eval_expr(expr, env)

    def _exec_assignment(self, expr: ast.Assignment, env: _Env) -> None:
        # flatten plain '=' chains: a = b = 0 assigns right-to-left
        chain: List[ast.Expr] = [expr.target]
        value_expr = expr.value
        while isinstance(value_expr, ast.Assignment):
            chain.append(value_expr.target)
            value_expr = value_expr.value
        rhs = self.eval_expr(value_expr, env)
        if expr.op == "=":
            for target in reversed(chain):
                store, _load = self._resolve_lvalue(target, env)
                store(rhs)
            return
        store, load = self._resolve_lvalue(expr.target, env)
        arith = expr.op[:-1]
        store(_binary(arith, load(), rhs))

    def _resolve_lvalue(
        self, expr: ast.Expr, env: _Env
    ) -> Tuple[Callable[[Any], None], Callable[[], Any]]:
        """Resolve an lvalue into (store, load) callbacks."""
        if isinstance(expr, ast.Identifier):
            name = expr.name
            return (lambda v: env.set(name, v)), (lambda: env.get(name))
        if isinstance(expr, ast.FieldAccess):
            base = self.eval_expr(expr.base, env)
            name = expr.name
            return (
                lambda v: _setitem(base, name, v),
                lambda: _getitem(base, name),
            )
        if isinstance(expr, ast.IndexAccess):
            base = self.eval_expr(expr.base, env)
            index = self.eval_expr(expr.index, env)
            return (
                lambda v: _setitem(base, index, v),
                lambda: _getitem(base, index),
            )
        raise ECodeRuntimeError(f"not an lvalue: {expr!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, env: _Env) -> Any:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, (ast.StringLiteral, ast.CharLiteral)):
            return expr.value
        if isinstance(expr, ast.Identifier):
            return env.get(expr.name)
        if isinstance(expr, ast.FieldAccess):
            return _getitem(self.eval_expr(expr.base, env), expr.name)
        if isinstance(expr, ast.IndexAccess):
            return _getitem(
                self.eval_expr(expr.base, env), self.eval_expr(expr.index, env)
            )
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval_expr(expr.operand, env)
            try:
                if expr.op == "-":
                    return -operand
                if expr.op == "+":
                    return +operand
                if expr.op == "!":
                    return 0 if operand else 1
                if expr.op == "~":
                    return ~operand
            except TypeError as exc:
                raise ECodeRuntimeError(
                    f"bad operand for unary {expr.op!r}: {exc}"
                ) from None
            raise ECodeRuntimeError(f"unknown unary {expr.op!r}")  # pragma: no cover
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                return 1 if (self.eval_expr(expr.left, env) and self.eval_expr(expr.right, env)) else 0
            if expr.op == "||":
                return 1 if (self.eval_expr(expr.left, env) or self.eval_expr(expr.right, env)) else 0
            return _binary(
                expr.op, self.eval_expr(expr.left, env), self.eval_expr(expr.right, env)
            )
        if isinstance(expr, ast.TernaryOp):
            if self.eval_expr(expr.condition, env):
                return self.eval_expr(expr.if_true, env)
            return self.eval_expr(expr.if_false, env)
        if isinstance(expr, ast.Call):
            fn = BUILTINS[expr.name]
            args = [self.eval_expr(arg, env) for arg in expr.args]
            try:
                return fn(*args)
            except ECodeRuntimeError:
                raise
            except Exception as exc:
                raise ECodeRuntimeError(f"{expr.name}() failed: {exc!r}") from exc
        if isinstance(expr, ast.SizeOf):
            return sizeof(expr.type_name)
        raise ECodeRuntimeError(f"cannot evaluate {expr!r}")  # pragma: no cover


def _binary(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return c_div(left, right)
        if op == "%":
            return c_mod(left, right)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
    except ECodeRuntimeError:
        raise
    except (TypeError, ValueError, OverflowError) as exc:
        # ValueError covers negative shift counts; the compiled path wraps
        # these in ECodeRuntimeError too, so both arms must agree.
        raise ECodeRuntimeError(f"bad operands for {op!r}: {exc}") from None
    raise ECodeRuntimeError(f"unknown operator {op!r}")  # pragma: no cover


def _getitem(base: Any, key: Any) -> Any:
    try:
        return base[key]
    except (KeyError, IndexError, TypeError) as exc:
        raise ECodeRuntimeError(f"cannot read {key!r}: {exc!r}") from None


def _setitem(base: Any, key: Any, value: Any) -> None:
    try:
        base[key] = value
    except (KeyError, IndexError, TypeError) as exc:
        raise ECodeRuntimeError(f"cannot write {key!r}: {exc!r}") from None


def interpret_procedure(
    source: str, params: Sequence[str] = ("new", "old"), name: str = "transform"
) -> "InterpretedProcedure":
    """Parse and check *source*, returning an interpreted callable with the
    same calling convention as
    :func:`repro.ecode.codegen.compile_procedure`."""
    program = parse(source)
    check(program, params)
    return InterpretedProcedure(name, params, source, program)


class InterpretedProcedure:
    """AST-interpreting counterpart of
    :class:`~repro.ecode.codegen.ECodeProcedure`."""

    __slots__ = ("name", "params", "source", "program", "_interp")

    def __init__(
        self, name: str, params: Sequence[str], source: str, program: ast.Program
    ) -> None:
        self.name = name
        self.params = tuple(params)
        self.source = source
        self.program = program
        self._interp = Interpreter(program, params)

    def __call__(self, *args: Any) -> Any:
        return self._interp.run(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InterpretedProcedure({self.name!r}, params={self.params})"
