"""ECode runtime support.

Objects and helpers the generated Python code (and the interpreter) rely
on: C-style integer division/modulo, the builtin function table, and
:class:`AutoList` — the auto-growing array used for transform *output*
records, mirroring how ECode transforms write into PBIO variable arrays
without an explicit allocation step (paper Figure 5 assigns into
``old.src_list[src_count]`` with no malloc).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ECodeRuntimeError


class AutoList(list):
    """A list that grows on out-of-range index access.

    Reading or writing index ``i >= len`` extends the list with elements
    produced by the element *factory* (a fresh default record for complex
    arrays, the type's zero value for scalar arrays).  Negative indices
    keep normal Python semantics.
    """

    __slots__ = ("_factory",)

    def __init__(self, factory: Callable[[], Any], initial: Optional[List[Any]] = None) -> None:
        super().__init__(initial or ())
        self._factory = factory

    def _grow_to(self, index: int) -> None:
        while len(self) <= index:
            self.append(self._factory())

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, int) and index >= len(self):
            self._grow_to(index)
        return list.__getitem__(self, index)

    def __setitem__(self, index, value):  # type: ignore[override]
        if isinstance(index, int) and index >= len(self):
            self._grow_to(index)
        list.__setitem__(self, index, value)


def c_div(a: Any, b: Any) -> Any:
    """C division: truncation toward zero for two ints, float division
    otherwise.  Integer division by zero raises
    :class:`ECodeRuntimeError` (like a SIGFPE, but catchable)."""
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool) and not isinstance(b, bool):
        if b == 0:
            raise ECodeRuntimeError("integer division by zero")
        quotient = a // b
        if quotient < 0 and quotient * b != a:
            quotient += 1
        return quotient
    try:
        return a / b
    except ZeroDivisionError:
        raise ECodeRuntimeError("division by zero") from None


def c_mod(a: Any, b: Any) -> Any:
    """C remainder: sign follows the dividend for ints, ``fmod`` for
    floats."""
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool) and not isinstance(b, bool):
        if b == 0:
            raise ECodeRuntimeError("integer modulo by zero")
        return a - c_div(a, b) * b
    try:
        return math.fmod(a, b)
    except (ZeroDivisionError, ValueError):
        raise ECodeRuntimeError("modulo by zero") from None


def _printf(fmt: str, *args: Any) -> int:
    """Minimal printf: strips C length modifiers then delegates to
    Python %-formatting.  Returns the number of characters written."""
    cleaned = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        cleaned.append(ch)
        if ch == "%":
            i += 1
            while i < len(fmt) and fmt[i] in "lhqjzt":
                i += 1  # drop length modifiers: %ld -> %d
            if i < len(fmt):
                cleaned.append(fmt[i])
        i += 1
    try:
        text = "".join(cleaned) % args
    except (TypeError, ValueError) as exc:
        raise ECodeRuntimeError(f"printf format error: {exc}") from None
    print(text, end="")
    return len(text)


def _strcmp(a: str, b: str) -> int:
    return (a > b) - (a < b)


#: Functions callable from ECode source.  The semantic checker rejects
#: calls to anything not in this table.
BUILTINS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
    "fabs": abs,
    "min": min,
    "max": max,
    "floor": lambda x: int(math.floor(x)),
    "ceil": lambda x: int(math.ceil(x)),
    "sqrt": math.sqrt,
    "pow": pow,
    "exp": math.exp,
    "log": math.log,
    "atoi": lambda s: int(str(s).strip() or 0),
    "atof": lambda s: float(str(s).strip() or 0.0),
    "strlen": lambda s: len(s),
    "strcmp": _strcmp,
    "strcat": lambda a, b: a + b,
    "printf": _printf,
}

#: C scalar sizes used by ``sizeof`` (the paper's 32-bit-era ABI).
C_SIZEOF: Dict[str, int] = {
    "char": 1,
    "short": 2,
    "short int": 2,
    "int": 4,
    "unsigned": 4,
    "unsigned int": 4,
    "long": 8,
    "long int": 8,
    "long long": 8,
    "unsigned long": 8,
    "float": 4,
    "double": 8,
}


def sizeof(type_name: str) -> int:
    normalized = " ".join(type_name.split())
    try:
        return C_SIZEOF[normalized]
    except KeyError:
        raise ECodeRuntimeError(f"sizeof: unknown type {type_name!r}") from None


#: Zero values used to initialize uninitialized declarations, keyed by the
#: leading keyword of the declared type.
DEFAULT_INITIALIZERS: Dict[str, Any] = {
    "int": 0,
    "long": 0,
    "short": 0,
    "unsigned": 0,
    "signed": 0,
    "char": "",
    "float": 0.0,
    "double": 0.0,
}


def default_for_type(type_name: str) -> Any:
    head = type_name.split()[0] if type_name.split() else "int"
    return DEFAULT_INITIALIZERS.get(head, 0)
