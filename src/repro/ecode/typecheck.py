"""ECode semantic checker.

Records are dynamically typed at the field level (the format meta-data is
the type authority), so this pass enforces the *structural* rules that
keep the Python translation sound rather than full C typing:

* every identifier is declared before use (parameters are predeclared),
* no redeclaration / shadowing of a visible name,
* assignment and ``++``/``--`` appear only in statement position or in
  ``for`` clauses (C allows them anywhere; the Python target does not),
  with the single exception of chained plain assignment ``a = b = 0``,
* assignment targets are lvalues,
* ``break``/``continue`` appear inside loops,
* calls name a known builtin with a sane argument count,
* ``sizeof`` names a known C type.

Raises :class:`~repro.errors.ECodeTypeError` with the offending line.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.ecode import ast
from repro.ecode.runtime import BUILTINS, C_SIZEOF
from repro.errors import ECodeTypeError


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: Set[str] = set()

    def declare(self, name: str, line: int) -> None:
        if self.lookup(name):
            raise ECodeTypeError(f"line {line}: redeclaration of {name!r}")
        self.names.add(name)

    def lookup(self, name: str) -> bool:
        scope: "_Scope | None" = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class SemanticChecker:
    def __init__(self, params: Sequence[str]) -> None:
        self.root = _Scope()
        for param in params:
            self.root.declare(param, 0)
        self.loop_depth = 0

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def check_program(self, program: ast.Program) -> None:
        scope = _Scope(self.root)
        for stmt in program.body:
            self.check_stmt(stmt, scope)

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Declaration):
            for decl in stmt.declarators:
                if decl.init is not None:
                    self.check_expr(decl.init, scope)
                scope.declare(decl.name, decl.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_statement_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            inner = _Scope(scope)
            for child in stmt.statements:
                self.check_stmt(child, inner)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.condition, scope)
            self.check_stmt(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self.check_stmt(stmt.else_branch, scope)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.condition, scope)
            self._check_loop_body(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._check_loop_body(stmt.body, scope)
            self.check_expr(stmt.condition, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if isinstance(stmt.init, ast.Declaration):
                self.check_stmt(stmt.init, inner)
            elif isinstance(stmt.init, list):
                for expr in stmt.init:
                    self._check_statement_expr(expr, inner)
            if stmt.condition is not None:
                self.check_expr(stmt.condition, inner)
            for expr in stmt.update:
                self._check_statement_expr(expr, inner)
            self._check_loop_body(stmt.body, inner)
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise ECodeTypeError(f"line {stmt.line}: break outside a loop")
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise ECodeTypeError(f"line {stmt.line}: continue outside a loop")
        else:  # pragma: no cover - parser produces no other nodes
            raise ECodeTypeError(f"line {stmt.line}: unsupported statement {stmt!r}")

    def _check_switch(self, stmt: ast.Switch, scope: _Scope) -> None:
        """ECode switch is the no-fallthrough subset: every non-empty case
        body ends with ``break`` or ``return``, labels are integer/char
        constants, and a body may not combine ``case`` labels with
        ``default``."""
        self.check_expr(stmt.subject, scope)
        seen_labels = set()
        for case in stmt.cases:
            if case.is_default and case.labels:
                raise ECodeTypeError(
                    f"line {case.line}: a switch arm may not mix 'case' "
                    "labels with 'default'"
                )
            for label in case.labels:
                value = _constant_label(label)
                if value is _NOT_CONSTANT:
                    raise ECodeTypeError(
                        f"line {label.line}: case label must be an integer "
                        "or character constant"
                    )
                if value in seen_labels:
                    raise ECodeTypeError(
                        f"line {label.line}: duplicate case label {value!r}"
                    )
                seen_labels.add(value)
            body, terminated = ast.strip_case_terminator(case.body)
            if not terminated:
                raise ECodeTypeError(
                    f"line {case.line}: switch case must end with 'break' "
                    "or 'return' (ECode does not support fall-through)"
                )
            strays = ast.stray_breaks(body)
            if strays:
                raise ECodeTypeError(
                    f"line {strays[0].line}: 'break' inside a switch case "
                    "is only supported as the case terminator"
                )
            inner = _Scope(scope)
            for child in body:
                self.check_stmt(child, inner)

    def _check_loop_body(self, body: ast.Stmt, scope: _Scope) -> None:
        self.loop_depth += 1
        try:
            self.check_stmt(body, scope)
        finally:
            self.loop_depth -= 1

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _check_statement_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        """Expressions in statement position may be assignments/inc-dec."""
        if isinstance(expr, ast.Assignment):
            self._check_lvalue(expr.target, scope)
            # allow chains of plain '=' : a = b = 0
            value = expr.value
            while isinstance(value, ast.Assignment):
                if expr.op != "=" or value.op != "=":
                    raise ECodeTypeError(
                        f"line {value.line}: compound assignment cannot be chained"
                    )
                self._check_lvalue(value.target, scope)
                value = value.value
            self.check_expr(value, scope)
        elif isinstance(expr, ast.IncDec):
            self._check_lvalue(expr.target, scope)
        else:
            self.check_expr(expr, scope)

    def check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.StringLiteral, ast.CharLiteral)):
            return
        if isinstance(expr, ast.Identifier):
            if not scope.lookup(expr.name):
                raise ECodeTypeError(
                    f"line {expr.line}: use of undeclared identifier {expr.name!r}"
                )
            return
        if isinstance(expr, ast.FieldAccess):
            self.check_expr(expr.base, scope)
            return
        if isinstance(expr, ast.IndexAccess):
            self.check_expr(expr.base, scope)
            self.check_expr(expr.index, scope)
            return
        if isinstance(expr, ast.UnaryOp):
            self.check_expr(expr.operand, scope)
            return
        if isinstance(expr, ast.BinaryOp):
            self.check_expr(expr.left, scope)
            self.check_expr(expr.right, scope)
            return
        if isinstance(expr, ast.TernaryOp):
            self.check_expr(expr.condition, scope)
            self.check_expr(expr.if_true, scope)
            self.check_expr(expr.if_false, scope)
            return
        if isinstance(expr, ast.Call):
            if expr.name not in BUILTINS:
                raise ECodeTypeError(
                    f"line {expr.line}: call to unknown function {expr.name!r} "
                    f"(available: {', '.join(sorted(BUILTINS))})"
                )
            if expr.name in _FIXED_ARITY and len(expr.args) != _FIXED_ARITY[expr.name]:
                raise ECodeTypeError(
                    f"line {expr.line}: {expr.name}() takes "
                    f"{_FIXED_ARITY[expr.name]} argument(s), got {len(expr.args)}"
                )
            for arg in expr.args:
                self.check_expr(arg, scope)
            return
        if isinstance(expr, ast.SizeOf):
            normalized = " ".join(expr.type_name.split())
            if normalized not in C_SIZEOF:
                raise ECodeTypeError(
                    f"line {expr.line}: sizeof of unknown type {expr.type_name!r}"
                )
            return
        if isinstance(expr, ast.Assignment):
            raise ECodeTypeError(
                f"line {expr.line}: assignment used as a value; ECode restricts "
                "assignment to statement position and for-clauses"
            )
        if isinstance(expr, ast.IncDec):
            raise ECodeTypeError(
                f"line {expr.line}: ++/-- used as a value; ECode restricts them "
                "to statement position and for-clauses"
            )
        raise ECodeTypeError(  # pragma: no cover - parser produces no others
            f"line {expr.line}: unsupported expression {expr!r}"
        )

    def _check_lvalue(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, ast.Identifier):
            if not scope.lookup(expr.name):
                raise ECodeTypeError(
                    f"line {expr.line}: assignment to undeclared identifier "
                    f"{expr.name!r}"
                )
            return
        if isinstance(expr, (ast.FieldAccess, ast.IndexAccess)):
            self.check_expr(expr, scope)
            return
        raise ECodeTypeError(f"line {expr.line}: target is not assignable")


_NOT_CONSTANT = object()


def _constant_label(label: ast.Expr):
    """The constant value of a case label, or ``_NOT_CONSTANT``."""
    if isinstance(label, ast.IntLiteral):
        return label.value
    if isinstance(label, ast.CharLiteral):
        return label.value
    if isinstance(label, ast.UnaryOp) and label.op == "-" and isinstance(
        label.operand, ast.IntLiteral
    ):
        return -label.operand.value
    return _NOT_CONSTANT


_FIXED_ARITY = {
    "strlen": 1,
    "strcmp": 2,
    "strcat": 2,
    "sqrt": 1,
    "fabs": 1,
    "abs": 1,
    "floor": 1,
    "ceil": 1,
    "atoi": 1,
    "atof": 1,
    "exp": 1,
}


def check(program: ast.Program, params: Iterable[str]) -> None:
    """Run the semantic checker over *program* with the given parameter
    names predeclared."""
    SemanticChecker(list(params)).check_program(program)
