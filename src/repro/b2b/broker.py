"""B2B broker — Figures 6 and 7 of the paper.

Two operating modes:

* ``mode="xslt"`` (Figure 6, the Oracle AQ architecture): messages travel
  as XML; the broker itself applies an XSL stylesheet per
  (sender-format, receiver-format) pair before forwarding.  All
  conversion CPU concentrates at the broker — the bottleneck the paper
  criticizes.
* ``mode="morphing"`` (Figure 7): messages travel as PBIO binary; the
  broker merely *associates* the ECode transform with the message's
  format meta-data (a registry operation, already done at setup) and
  forwards the bytes untouched.  Conversion happens at each receiver.

The broker counts the transforms it executes and the virtual CPU seconds
they cost so examples/benches can show the offloading effect.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Optional, Tuple

from repro.errors import TransportError, XSLTError
from repro.net.transport import Network, Node
from repro.pbio.buffer import unpack_header
from repro.pbio.registry import FormatRegistry
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.xslt import Stylesheet


@dataclass
class BrokerStats:
    forwarded: int = 0
    transformed: int = 0
    transform_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0


class Broker:
    """Store-and-forward intermediary between retailers and suppliers."""

    def __init__(
        self,
        network: Network,
        address: str,
        registry: FormatRegistry,
        mode: str = "morphing",
    ) -> None:
        if mode not in ("morphing", "xslt"):
            raise TransportError(f"unknown broker mode {mode!r}")
        self.network = network
        self.node: Node = network.add_node(address)
        self.node.set_handler(self._on_message)
        self.registry = registry
        self.mode = mode
        self.stats = BrokerStats()
        #: destination routing: participant address -> peer address
        self._routes: Dict[str, str] = {}
        #: XSLT mode: (sender, receiver) -> compiled stylesheet
        self._stylesheets: Dict[Tuple[str, str], Stylesheet] = {}

    @property
    def address(self) -> str:
        return self.node.address

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_route(self, sender: str, receiver: str) -> None:
        """Messages arriving from *sender* forward to *receiver*."""
        self._routes[sender] = receiver

    def add_stylesheet(self, sender: str, receiver: str, stylesheet_xml: str) -> None:
        """XSLT mode: install the conversion the broker applies to
        traffic from *sender* to *receiver*."""
        self._stylesheets[(sender, receiver)] = Stylesheet.from_string(stylesheet_xml)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _on_message(self, source: str, data: bytes) -> None:
        destination = self._routes.get(source)
        if destination is None:
            return  # unroutable traffic is dropped (and visible in stats)
        self.stats.bytes_in += len(data)
        if self.mode == "xslt":
            data = self._transform_xml(source, destination, data)
        else:
            # morphing mode: verify it is a PBIO message and pass it on —
            # the transform already rides the format meta-data
            unpack_header(data)
        self.stats.bytes_out += len(data)
        self.stats.forwarded += 1
        self.node.send(destination, data)

    def _transform_xml(self, source: str, destination: str, data: bytes) -> bytes:
        stylesheet = self._stylesheets.get((source, destination))
        if stylesheet is None:
            raise XSLTError(
                f"broker has no stylesheet for {source} -> {destination}"
            )
        started = time.perf_counter()
        tree = parse_xml(data.decode("utf-8"))
        transformed = stylesheet.transform(tree)
        out = transformed.serialize().encode("utf-8")
        self.stats.transform_seconds += time.perf_counter() - started
        self.stats.transformed += 1
        return out
