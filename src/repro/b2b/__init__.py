"""Business-process messaging scenario (paper Section 4.2): retailer,
supplier and broker, in broker-transforms (XSLT) and morphing modes."""

from repro.b2b.broker import Broker, BrokerStats
from repro.b2b.formats import (
    ORDER_TRANSFORM,
    RETAILER_PO,
    RETAILER_STATUS,
    STATUS_TRANSFORM,
    SUPPLIER_PO,
    SUPPLIER_STATUS,
    register_b2b,
)
from repro.b2b.participants import Retailer, Supplier
from repro.b2b.scenario import B2BScenario, build_scenario
from repro.b2b.stylesheets import ORDER_STYLESHEET, STATUS_STYLESHEET

__all__ = [
    "B2BScenario",
    "Broker",
    "BrokerStats",
    "ORDER_STYLESHEET",
    "ORDER_TRANSFORM",
    "RETAILER_PO",
    "RETAILER_STATUS",
    "Retailer",
    "STATUS_STYLESHEET",
    "STATUS_TRANSFORM",
    "SUPPLIER_PO",
    "SUPPLIER_STATUS",
    "Supplier",
    "build_scenario",
    "register_b2b",
]
