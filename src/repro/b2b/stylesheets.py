"""XSL stylesheets for the broker's Figure 6 (XSLT) mode.

These are the XML/XSLT counterparts of the ECode transforms in
:mod:`repro.b2b.formats` — the conversions the AQ-style broker applies
in-flight."""

ORDER_STYLESHEET = """\
<?xml version="1.0"?>
<xsl:stylesheet version="1.0">
  <xsl:template match="PurchaseOrder">
    <PurchaseOrder version="initech-supply-3">
      <order_id><xsl:value-of select="order_id"/></order_id>
      <item_count>1</item_count>
      <line_items>
        <sku><xsl:value-of select="sku"/></sku>
        <quantity><xsl:value-of select="quantity"/></quantity>
        <unit_price_cents><xsl:value-of select="round(unit_price_dollars * 100)"/></unit_price_cents>
      </line_items>
      <address>
        <street><xsl:value-of select="ship_to"/></street>
        <city></city>
        <zip></zip>
      </address>
      <priority>
        <xsl:choose>
          <xsl:when test="rush='1'">1</xsl:when>
          <xsl:otherwise>0</xsl:otherwise>
        </xsl:choose>
      </priority>
    </PurchaseOrder>
  </xsl:template>
</xsl:stylesheet>
"""

STATUS_STYLESHEET = """\
<?xml version="1.0"?>
<xsl:stylesheet version="1.0">
  <xsl:template match="OrderStatus">
    <OrderStatus version="acme-retail-1">
      <order_id><xsl:value-of select="order_id"/></order_id>
      <shipped>
        <xsl:choose>
          <xsl:when test="state='1'">1</xsl:when>
          <xsl:otherwise>0</xsl:otherwise>
        </xsl:choose>
      </shipped>
      <backordered>
        <xsl:choose>
          <xsl:when test="state='2'">1</xsl:when>
          <xsl:otherwise>0</xsl:otherwise>
        </xsl:choose>
      </backordered>
      <eta_days><xsl:value-of select="eta_days"/></eta_days>
      <note><xsl:value-of select="concat('carrier: ', carrier)"/></note>
    </OrderStatus>
  </xsl:template>
</xsl:stylesheet>
"""
