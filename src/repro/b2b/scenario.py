"""Canned B2B supply-chain scenarios (one retailer, one supplier, one
broker) used by examples, tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.b2b.broker import Broker
from repro.b2b.formats import register_b2b
from repro.b2b.participants import Retailer, Supplier
from repro.b2b.stylesheets import ORDER_STYLESHEET, STATUS_STYLESHEET
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.registry import FormatRegistry


@dataclass
class B2BScenario:
    network: Network
    registry: FormatRegistry
    broker: Broker
    retailer: Retailer
    supplier: Supplier

    def run(self) -> int:
        return self.network.run()


def build_scenario(
    mode: str = "morphing",
    stock: Optional[Dict[str, int]] = None,
    link: Optional[LinkSpec] = None,
) -> B2BScenario:
    """Assemble the supply chain of Figures 6/7.

    ``mode="morphing"`` routes PBIO binary through a passive broker with
    receiver-side ECode conversion; ``mode="xslt"`` routes XML text
    through a broker that applies stylesheets in-flight.
    """
    network = Network(default_link=link)
    registry = FormatRegistry()
    register_b2b(registry)
    broker = Broker(network, "broker", registry, mode=mode)
    retailer = Retailer(network, "acme", registry, broker="broker", mode=mode)
    supplier = Supplier(
        network,
        "initech",
        registry,
        broker="broker",
        mode=mode,
        stock=stock if stock is not None else {"WIDGET-9": 100, "SPROCKET-3": 5},
    )
    broker.add_route("acme", "initech")
    broker.add_route("initech", "acme")
    if mode == "xslt":
        broker.add_stylesheet("acme", "initech", ORDER_STYLESHEET)
        broker.add_stylesheet("initech", "acme", STATUS_STYLESHEET)
    return B2BScenario(
        network=network,
        registry=registry,
        broker=broker,
        retailer=retailer,
        supplier=supplier,
    )
