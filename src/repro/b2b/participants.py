"""B2B participants: retailer and supplier endpoints.

Both can run in either wire mode, mirroring the broker:

* ``morphing``: PBIO on the wire; each participant's
  :class:`~repro.morph.receiver.MorphReceiver` reconciles formats using
  the broker-supplied ECode transforms from the shared registry,
* ``xslt``: XML on the wire; participants encode/decode XML text and
  rely on the broker to convert in-flight.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.b2b.formats import (
    RETAILER_PO,
    RETAILER_STATUS,
    SUPPLIER_PO,
    SUPPLIER_STATUS,
)
from repro.errors import TransportError
from repro.morph.receiver import MorphReceiver
from repro.net.transport import Network, Node
from repro.pbio.context import PBIOContext
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry
from repro.xmlrep.decode import decode_xml
from repro.xmlrep.encode import encode_xml


class _Participant:
    """Shared endpoint plumbing for retailer/supplier."""

    def __init__(
        self,
        network: Network,
        address: str,
        registry: FormatRegistry,
        broker: str,
        mode: str,
    ) -> None:
        if mode not in ("morphing", "xslt"):
            raise TransportError(f"unknown participant mode {mode!r}")
        self.network = network
        self.node: Node = network.add_node(address)
        self.node.set_handler(self._on_message)
        self.registry = registry
        self.broker = broker
        self.mode = mode
        self.pbio = PBIOContext(registry)
        self.receiver = MorphReceiver(registry)

    @property
    def address(self) -> str:
        return self.node.address

    def _send(self, fmt: IOFormat, record: Record) -> None:
        if self.mode == "morphing":
            self.node.send(self.broker, self.pbio.encode(fmt, record))
        else:
            self.node.send(
                self.broker, encode_xml(fmt, record).encode("utf-8")
            )

    def _on_message(self, source: str, data: bytes) -> None:
        if self.mode == "morphing":
            self.receiver.process(data)
        else:
            self._on_xml(data.decode("utf-8"))

    def _on_xml(self, text: str) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Retailer(_Participant):
    """Sends purchase orders in its own format; consumes order statuses
    in its own format."""

    def __init__(
        self,
        network: Network,
        address: str,
        registry: FormatRegistry,
        broker: str,
        mode: str = "morphing",
    ) -> None:
        super().__init__(network, address, registry, broker, mode)
        self.statuses: List[Record] = []
        self.on_status: Optional[Callable[[Record], Any]] = None
        self.receiver.register_handler(RETAILER_STATUS, self._handle_status)
        self._next_order = 1

    def send_order(
        self,
        sku: str,
        quantity: int,
        unit_price_dollars: float,
        ship_to: str = "801 Atlantic Dr, Atlanta GA 30332",
        rush: bool = False,
    ) -> str:
        """Place an order (retailer's native format); returns order id."""
        order_id = f"{self.address}-{self._next_order:06d}"
        self._next_order += 1
        record = RETAILER_PO.make_record(
            order_id=order_id,
            sku=sku,
            quantity=quantity,
            unit_price_dollars=unit_price_dollars,
            ship_to=ship_to,
            rush=rush,
        )
        self._send(RETAILER_PO, record)
        return order_id

    def _handle_status(self, record: Record) -> None:
        self.statuses.append(record)
        if self.on_status is not None:
            self.on_status(record)

    def _on_xml(self, text: str) -> None:
        # XSLT mode: the broker already converted to the retailer's format
        self._handle_status(decode_xml(RETAILER_STATUS, text))


class Supplier(_Participant):
    """Consumes purchase orders in its own format; replies with order
    statuses in its own format."""

    def __init__(
        self,
        network: Network,
        address: str,
        registry: FormatRegistry,
        broker: str,
        mode: str = "morphing",
        stock: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(network, address, registry, broker, mode)
        self.orders: List[Record] = []
        self.stock: Dict[str, int] = dict(stock or {})
        self.receiver.register_handler(SUPPLIER_PO, self._handle_order)

    def _handle_order(self, record: Record) -> None:
        """Fulfil from stock: shipped if everything is available,
        backordered otherwise."""
        self.orders.append(record)
        available = all(
            self.stock.get(item["sku"], 0) >= item["quantity"]
            for item in record["line_items"]
        )
        if available:
            for item in record["line_items"]:
                self.stock[item["sku"]] -= item["quantity"]
            state, eta, carrier = 1, 2, "UPS Ground"
        else:
            state, eta, carrier = 2, 14, ""
        status = SUPPLIER_STATUS.make_record(
            order_id=record["order_id"],
            state=state,
            eta_days=eta,
            carrier=carrier,
        )
        self._send(SUPPLIER_STATUS, status)

    def _on_xml(self, text: str) -> None:
        self._handle_order(decode_xml(SUPPLIER_PO, text))
