"""B2B message formats (paper Section 4.2).

A retailer and a supplier exchange purchase orders and order statuses
through a broker.  Each vendor generates data "in their own format": the
message *role* (and hence the PBIO format name) is shared —
``PurchaseOrder`` / ``OrderStatus`` — but the structures differ the way
independently developed schemas do:

* the retailer's order is flat, one line item per message, prices in
  dollars (float), a free-form shipping address,
* the supplier's order carries an item list (even when it has a single
  entry), prices in integer cents, and a structured address.

``RETAILER_TO_SUPPLIER_ORDER_CODE`` and
``SUPPLIER_TO_RETAILER_STATUS_CODE`` are the ECode segments the broker
associates with the messages (Figure 7): the *receiver* performs the
conversion, not the broker.
"""

from __future__ import annotations

from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec

# ---------------------------------------------------------------------------
# Purchase orders
# ---------------------------------------------------------------------------

RETAILER_PO = IOFormat(
    "PurchaseOrder",
    [
        IOField("order_id", "string"),
        IOField("sku", "string"),
        IOField("quantity", "integer"),
        IOField("unit_price_dollars", "float"),
        IOField("ship_to", "string"),
        IOField("rush", "boolean"),
    ],
    version="acme-retail-1",
)

_SUPPLIER_ITEM = IOFormat(
    "OrderItem",
    [
        IOField("sku", "string"),
        IOField("quantity", "integer"),
        IOField("unit_price_cents", "integer", 8),
    ],
    version="initech-supply-3",
)

_SUPPLIER_ADDRESS = IOFormat(
    "Address",
    [
        IOField("street", "string"),
        IOField("city", "string"),
        IOField("zip", "string"),
    ],
    version="initech-supply-3",
)

SUPPLIER_PO = IOFormat(
    "PurchaseOrder",
    [
        IOField("order_id", "string"),
        IOField("item_count", "integer"),
        IOField(
            "line_items",
            "complex",
            subformat=_SUPPLIER_ITEM,
            array=ArraySpec(length_field="item_count"),
        ),
        IOField("address", "complex", subformat=_SUPPLIER_ADDRESS),
        IOField("priority", "integer"),  # 0 normal, 1 rush
    ],
    version="initech-supply-3",
)

#: Retailer order -> supplier order: wrap the single line item in a list,
#: convert dollars to cents, split the one-line address, map the rush
#: flag onto the priority enum.
RETAILER_TO_SUPPLIER_ORDER_CODE = """
old.order_id = new.order_id;
old.item_count = 1;
old.line_items[0].sku = new.sku;
old.line_items[0].quantity = new.quantity;
old.line_items[0].unit_price_cents = floor(new.unit_price_dollars * 100.0 + 0.5);
old.address.street = new.ship_to;
old.address.city = "";
old.address.zip = "";
if (new.rush) {
    old.priority = 1;
} else {
    old.priority = 0;
}
"""

ORDER_TRANSFORM = TransformSpec(
    source=RETAILER_PO,
    target=SUPPLIER_PO,
    code=RETAILER_TO_SUPPLIER_ORDER_CODE,
    description="acme PurchaseOrder -> initech PurchaseOrder",
)

# ---------------------------------------------------------------------------
# Order status
# ---------------------------------------------------------------------------

SUPPLIER_STATUS = IOFormat(
    "OrderStatus",
    [
        IOField("order_id", "string"),
        IOField("state", "enumeration"),  # 0 received, 1 shipped, 2 backorder
        IOField("eta_days", "integer"),
        IOField("carrier", "string"),
    ],
    version="initech-supply-3",
)

RETAILER_STATUS = IOFormat(
    "OrderStatus",
    [
        IOField("order_id", "string"),
        IOField("shipped", "boolean"),
        IOField("backordered", "boolean"),
        IOField("eta_days", "integer"),
        IOField("note", "string"),
    ],
    version="acme-retail-1",
)

#: Supplier status -> retailer status: explode the state enum into the
#: retailer's two booleans and fold the carrier into the note.
SUPPLIER_TO_RETAILER_STATUS_CODE = """
old.order_id = new.order_id;
old.shipped = 0;
old.backordered = 0;
switch (new.state) {
    case 1:
        old.shipped = 1;
        break;
    case 2:
        old.backordered = 1;
        break;
    default:
        break;
}
old.eta_days = new.eta_days;
old.note = strcat("carrier: ", new.carrier);
"""

STATUS_TRANSFORM = TransformSpec(
    source=SUPPLIER_STATUS,
    target=RETAILER_STATUS,
    code=SUPPLIER_TO_RETAILER_STATUS_CODE,
    description="initech OrderStatus -> acme OrderStatus",
)


def register_b2b(registry: FormatRegistry) -> None:
    """Register all B2B formats and the broker-supplied transforms."""
    registry.register_transform(ORDER_TRANSFORM)
    registry.register_transform(STATUS_TRANSFORM)
