"""Operational tooling built on the core library (capture/replay
archives)."""

from repro.tools.archive import (
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    ReplayReport,
    capture,
    open_archive,
)

__all__ = [
    "ArchiveError",
    "ArchiveReader",
    "ArchiveWriter",
    "ReplayReport",
    "capture",
    "open_archive",
]
