"""Message archives — capture wire traffic with its meta-data; replay it
into receivers that may not exist yet.

Morphing "can address components separated in space and/or time"
(Section 1).  The space half is the format server; this is the time
half: an archive file bundles a registry snapshot (formats + ECode
transformations) with raw PBIO wire messages.  Years later, a reader
built against *any* compatible revision replays the archive — the
bundled retro-transformations bridge whatever has changed since.

Archive layout (all integers little-endian)::

    +-----------------------------------------------------------+
    | magic "PBAR" | u16 version | u32 snapshot_len | snapshot   |
    +-----------------------------------------------------------+
    | u32 len | message bytes | u32 len | message bytes | ...    |
    +-----------------------------------------------------------+
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterator, List, Optional, Union

from repro.errors import DecodeError, ReproError
from repro.morph.receiver import MorphReceiver
from repro.pbio.registry import FormatRegistry
from repro.pbio.serialization import dump_registry, load_registry

_MAGIC = b"PBAR"
_VERSION = 1
_HEADER = struct.Struct("<4sHI")
_LENGTH = struct.Struct("<I")

PathOrFile = Union[str, "BinaryIO"]


class ArchiveError(ReproError):
    """The archive file is malformed or truncated."""


class ArchiveWriter:
    """Write an archive: registry snapshot first, then messages.

    Usable as a context manager::

        with ArchiveWriter("traffic.pbar", registry) as archive:
            archive.append(wire_bytes)
    """

    def __init__(self, target: PathOrFile, registry: FormatRegistry) -> None:
        if isinstance(target, str):
            self._file: BinaryIO = open(target, "wb")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        snapshot = dump_registry(registry, indent=0).encode("utf-8")
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, len(snapshot)))
        self._file.write(snapshot)
        self.messages_written = 0

    def append(self, wire: bytes) -> None:
        """Append one wire message."""
        self._file.write(_LENGTH.pack(len(wire)))
        self._file.write(wire)
        self.messages_written += 1

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ArchiveReader:
    """Read an archive: the revived registry plus the message stream."""

    def __init__(self, source: PathOrFile) -> None:
        if isinstance(source, str):
            self._file: BinaryIO = open(source, "rb")
            self._owns_file = True
        else:
            self._file = source
            self._owns_file = False
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ArchiveError("archive too short for its header")
        magic, version, snapshot_length = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ArchiveError(f"bad archive magic {magic!r}")
        if version != _VERSION:
            raise ArchiveError(f"unsupported archive version {version}")
        snapshot = self._file.read(snapshot_length)
        if len(snapshot) < snapshot_length:
            raise ArchiveError("archive truncated inside its registry snapshot")
        self.registry = load_registry(snapshot.decode("utf-8"))

    def __iter__(self) -> Iterator[bytes]:
        while True:
            prefix = self._file.read(_LENGTH.size)
            if not prefix:
                return
            if len(prefix) < _LENGTH.size:
                raise ArchiveError("archive truncated inside a length prefix")
            (length,) = _LENGTH.unpack(prefix)
            message = self._file.read(length)
            if len(message) < length:
                raise ArchiveError("archive truncated inside a message")
            yield message

    def messages(self) -> List[bytes]:
        """All remaining messages, materialized."""
        return list(self)

    def replay_into(
        self, receiver: MorphReceiver, stop_on_error: bool = True
    ) -> "ReplayReport":
        """Feed every archived message through *receiver*.

        The receiver's registry is first merged with the archive's
        snapshot (formats AND transformations), so morphing works even
        when the receiver was built long after the traffic was captured.
        """
        self.registry.replicate_to(receiver.registry)
        report = ReplayReport()
        for message in self:
            try:
                report.results.append(receiver.process(message))
                report.delivered += 1
            except ReproError as exc:
                report.failed += 1
                report.errors.append(exc)
                if stop_on_error:
                    raise
        return report

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ReplayReport:
    """Outcome of :meth:`ArchiveReader.replay_into`."""

    def __init__(self) -> None:
        self.delivered = 0
        self.failed = 0
        self.results: List[object] = []
        self.errors: List[Exception] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplayReport(delivered={self.delivered}, failed={self.failed})"


def capture(registry: FormatRegistry, messages: "List[bytes]") -> bytes:
    """One-shot convenience: archive *messages* into a bytes blob."""
    buffer = io.BytesIO()
    writer = ArchiveWriter(buffer, registry)
    for message in messages:
        writer.append(message)
    return buffer.getvalue()


def open_archive(blob: bytes) -> ArchiveReader:
    """One-shot convenience: read an archive from a bytes blob."""
    return ArchiveReader(io.BytesIO(blob))
