"""Fixed-memory time series — the collector's storage layer.

A :class:`TimeSeries` is a small ring buffer of ``(timestamp, delta)``
points plus a ladder of coarser **rollup levels**: when the fine ring
wraps, the evicted point is folded into a 10-second bucket; when the
10-second ring wraps, into a 60-second bucket, and so on.  Memory is
bounded at construction time — ``capacity + sum(rollup capacities)``
points, ever — while queries keep answering over windows far longer
than the fine ring covers, just at coarser resolution.  That shape is
what lets a collector watch an unbounded fleet run inside a fixed
footprint.

Ingestion is **delta-aware** in both directions:

* :meth:`TimeSeries.ingest` takes *absolute* instrument snapshots (what
  :meth:`Registry.snapshot` emits) and differences them itself, with
  monotonic-reset detection — a counter that went backwards means the
  source process restarted, so the full new value is the delta.
* :meth:`TimeSeries.ingest_delta` takes pre-diffed deltas (what
  :meth:`Registry.diff_snapshot` ships over the wire) and accumulates
  them directly; re-applied deltas are the *caller's* problem (the
  collector dedupes by source sequence number before calling in).

Counter series answer windowed :meth:`~TimeSeries.rate`; histogram
series answer :meth:`~TimeSeries.percentile` (p50/p95/p99) over the
bucket-exact merge of every delta in the window — the merge adds
integer bucket counts, so no float drift accumulates no matter how many
scrapes the window spans.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObsError
from repro.obs.metrics import (
    OVERFLOW_LABEL,
    merge_histogram_snapshots,
    percentile_from_buckets,
)

#: Fine-ring capacity: at a 1 s scrape interval this is 4 minutes of
#: full-resolution points.
DEFAULT_CAPACITY = 240

#: Rollup ladder: ``(bucket span seconds, ring capacity)`` per level.
#: 10 s × 180 = half an hour at level 1, 60 s × 240 = four hours at
#: level 2.  Total memory is still a few hundred points per series.
DEFAULT_ROLLUPS: Tuple[Tuple[float, int], ...] = ((10.0, 180), (60.0, 240))

SERIES_KINDS = ("counter", "gauge", "histogram")


class _Ring:
    """A fixed-capacity ring of ``(time, value)`` points; appending past
    capacity evicts (and returns) the oldest point."""

    __slots__ = ("capacity", "_times", "_values", "_start", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ObsError("ring capacity must be positive")
        self.capacity = capacity
        self._times: List[float] = [0.0] * capacity
        self._values: List[Any] = [None] * capacity
        self._start = 0
        self._size = 0

    def append(self, t: float, value: Any) -> Optional[Tuple[float, Any]]:
        evicted = None
        if self._size == self.capacity:
            evicted = (self._times[self._start], self._values[self._start])
            end = self._start
            self._start = (self._start + 1) % self.capacity
        else:
            end = (self._start + self._size) % self.capacity
            self._size += 1
        self._times[end] = t
        self._values[end] = value
        return evicted

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        for i in range(self._size):
            j = (self._start + i) % self.capacity
            yield (self._times[j], self._values[j])

    def last(self) -> Optional[Tuple[float, Any]]:
        if not self._size:
            return None
        j = (self._start + self._size - 1) % self.capacity
        return (self._times[j], self._values[j])


def _fold(kind: str, base: Any, newest: Any) -> Any:
    if kind == "counter":
        return base + newest
    if kind == "gauge":
        return newest  # last write wins within a rollup bucket
    return merge_histogram_snapshots(base, newest)


class TimeSeries:
    """One metric's history: a fine ring plus rollup levels (see the
    module docstring for the memory/resolution contract)."""

    __slots__ = ("kind", "_rings", "_spans", "_open", "_last_absolute",
                 "_total", "_latest", "_latest_time", "resets")

    def __init__(
        self,
        kind: str,
        capacity: int = DEFAULT_CAPACITY,
        rollups: Tuple[Tuple[float, int], ...] = DEFAULT_ROLLUPS,
    ) -> None:
        if kind not in SERIES_KINDS:
            raise ObsError(f"unknown series kind {kind!r}")
        self.kind = kind
        self._rings = [_Ring(capacity)] + [_Ring(cap) for _, cap in rollups]
        self._spans = [0.0] + [span for span, _ in rollups]
        #: per rollup level, the open ``[bucket_start, (t, value)]`` being
        #: accumulated before it closes into that level's ring
        self._open: List[Optional[List[Any]]] = [None] * len(rollups)
        self._last_absolute: Any = None
        self._total: Any = None
        self._latest: Any = None
        self._latest_time: Optional[float] = None
        #: monotonic resets detected on the absolute-ingest path
        self.resets = 0

    # -- ingestion ------------------------------------------------------

    def ingest(self, t: float, absolute: Any) -> None:
        """Ingest an *absolute* snapshot value: a number for counters and
        gauges, a histogram snapshot dict for histograms.  Differences it
        against the previous absolute, detecting monotonic resets."""
        if self.kind == "gauge":
            self.ingest_delta(t, float(absolute))
            return
        previous = self._last_absolute
        self._last_absolute = absolute
        if self.kind == "counter":
            value = int(absolute)
            if previous is None:
                delta = value
            elif value < previous:  # monotonic reset: source restarted
                self.resets += 1
                delta = value
            else:
                delta = value - previous
            if delta:
                self.ingest_delta(t, delta)
            return
        # histogram: per-bucket difference, any shrink ⇒ reset
        if previous is None:
            delta = absolute
        else:
            old_edges = [b["le"] for b in previous["buckets"]]
            new_edges = [b["le"] for b in absolute["buckets"]]
            shrank = old_edges != new_edges or any(
                int(b["count"]) < int(a["count"])
                for a, b in zip(previous["buckets"], absolute["buckets"])
            )
            if shrank:
                self.resets += 1
                delta = absolute
            else:
                delta = {
                    "count": int(absolute["count"]) - int(previous["count"]),
                    "sum": absolute["sum"] - previous["sum"],
                    "min": absolute.get("min"),
                    "max": absolute.get("max"),
                    "buckets": [
                        {
                            "le": b["le"],
                            "count": int(b["count"]) - int(a["count"]),
                        }
                        for a, b in zip(
                            previous["buckets"], absolute["buckets"]
                        )
                    ],
                }
                if "exemplars" in absolute:
                    delta["exemplars"] = absolute["exemplars"]
        if int(delta["count"]):
            self.ingest_delta(t, delta)

    def ingest_delta(self, t: float, delta: Any) -> None:
        """Ingest a pre-diffed delta (gauges: the absolute value)."""
        self._latest = delta
        self._latest_time = t
        if self.kind == "counter":
            self._total = (self._total or 0) + int(delta)
        elif self.kind == "histogram":
            self._total = (
                dict(delta) if self._total is None
                else merge_histogram_snapshots(self._total, delta)
            )
        else:
            self._total = float(delta)
        self._sink(0, t, delta)

    def _sink(self, level: int, t: float, value: Any) -> None:
        evicted = self._rings[level].append(t, value)
        if evicted is None or level + 1 >= len(self._rings):
            return
        span = self._spans[level + 1]
        bucket_start = (evicted[0] // span) * span
        open_bucket = self._open[level]
        if open_bucket is not None and open_bucket[0] != bucket_start:
            closed_t, closed_value = open_bucket[1]
            self._open[level] = [bucket_start, evicted]
            self._sink(level + 1, closed_t, closed_value)
        elif open_bucket is None:
            self._open[level] = [bucket_start, evicted]
        else:
            folded = _fold(self.kind, open_bucket[1][1], evicted[1])
            open_bucket[1] = (evicted[0], folded)

    # -- queries --------------------------------------------------------

    @property
    def total(self) -> Any:
        """Counter: the running total of ingested deltas.  Gauge: the
        latest value.  Histogram: the all-time merged snapshot."""
        return self._total

    @property
    def latest(self) -> Any:
        return self._latest

    @property
    def latest_time(self) -> Optional[float]:
        return self._latest_time

    def _window_points(
        self, since: float
    ) -> Iterator[Tuple[float, Any]]:
        """Every retained point with timestamp > *since*, coarse levels
        first (their points pre-date the fine ring's)."""
        for level in range(len(self._rings) - 1, 0, -1):
            for t, value in self._rings[level]:
                if t > since:
                    yield (t, value)
            open_bucket = self._open[level - 1]
            if open_bucket is not None and open_bucket[1][0] > since:
                yield open_bucket[1]
        for t, value in self._rings[0]:
            if t > since:
                yield (t, value)

    def rate(self, window: float, now: float) -> float:
        """Counter increments per second over ``(now - window, now]``."""
        if self.kind != "counter":
            raise ObsError(f"rate() needs a counter series, not {self.kind}")
        if window <= 0:
            raise ObsError("rate window must be positive")
        since = now - window
        total = sum(int(v) for _, v in self._window_points(since))
        return total / window

    def sum_over(self, window: float, now: float) -> int:
        """Total counter increments inside ``(now - window, now]``."""
        if self.kind != "counter":
            raise ObsError(
                f"sum_over() needs a counter series, not {self.kind}"
            )
        return sum(int(v) for _, v in self._window_points(now - window))

    def merged(self, window: float, now: float) -> Optional[Dict[str, Any]]:
        """The bucket-exact merge of every histogram delta in the
        window, or None when the window is empty."""
        if self.kind != "histogram":
            raise ObsError(
                f"merged() needs a histogram series, not {self.kind}"
            )
        merged: Optional[Dict[str, Any]] = None
        for _, snap in self._window_points(now - window):
            merged = (
                dict(snap) if merged is None
                else merge_histogram_snapshots(merged, snap)
            )
        return merged

    def percentile(self, q: float, window: float, now: float) -> float:
        """p-quantile over the merged histogram deltas in the window."""
        merged = self.merged(window, now)
        if merged is None:
            return 0.0
        return percentile_from_buckets(
            merged["buckets"], q,
            minimum=merged.get("min"), maximum=merged.get("max"),
        )

    def points(self, level: int = 0) -> List[Tuple[float, Any]]:
        """The retained points at *level* (0 = fine ring), oldest first."""
        return list(self._rings[level])


class SeriesStore:
    """A bounded, keyed collection of :class:`TimeSeries`.

    Keys are arbitrary hashable tuples (the collector uses
    ``(process, metric-with-labels)``).  Past *limit* distinct keys, new
    series collapse into one shared overflow series per kind keyed with
    :data:`~repro.obs.metrics.OVERFLOW_LABEL` — the same cardinality
    stance the registry's label guard takes, applied to series memory.
    """

    def __init__(
        self,
        limit: int = 4096,
        capacity: int = DEFAULT_CAPACITY,
        rollups: Tuple[Tuple[float, int], ...] = DEFAULT_ROLLUPS,
        on_overflow: Optional[Callable[[], None]] = None,
    ) -> None:
        self.limit = limit
        self.capacity = capacity
        self.rollups = rollups
        self._series: Dict[Any, TimeSeries] = {}
        self._on_overflow = on_overflow
        self.overflowed = 0

    def series(self, key: Any, kind: str) -> TimeSeries:
        found = self._series.get(key)
        if found is not None:
            return found
        if len(self._series) >= self.limit:
            self.overflowed += 1
            if self._on_overflow is not None:
                self._on_overflow()
            key = (OVERFLOW_LABEL, kind)
            found = self._series.get(key)
            if found is not None:
                return found
        series = TimeSeries(kind, capacity=self.capacity,
                            rollups=self.rollups)
        self._series[key] = series
        return series

    def get(self, key: Any) -> Optional[TimeSeries]:
        return self._series.get(key)

    def items(self) -> List[Tuple[Any, TimeSeries]]:
        return list(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: Any) -> bool:
        return key in self._series
