"""Metric instruments — counters, gauges and fixed-bucket histograms.

The design goals mirror the paper's measurement needs (Section 5): the
evaluation is a story about *where time goes*, so the instruments must be
cheap enough to leave compiled into the hot paths.  Every instrument is

* **lock-safe** — updates take a per-instrument lock, never a global one,
  so a registry hammered from many threads serializes only same-metric
  updates, and
* **allocation-free on update** — ``inc``/``set``/``observe`` touch plain
  ints and pre-sized lists; no dicts or tuples are built per event.

Histograms use fixed bucket bounds chosen at creation.  Percentiles
(p50/p95/p99) are estimated by linear interpolation inside the bucket
containing the requested rank — the standard Prometheus-style estimate,
exact enough to compare encode vs. decode vs. transform stages.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.obs import tracectx

LabelItems = Tuple[Tuple[str, str], ...]

#: Default bound on distinct values per (metric, label key) enforced by
#: :meth:`Registry.bounded` — past it, new values collapse to
#: :data:`OVERFLOW_LABEL` so a misbehaving caller (unbounded channel or
#: format names) cannot blow up the registry.
DEFAULT_LABEL_LIMIT = 32

#: The collapse bucket for label values past the cardinality bound.
OVERFLOW_LABEL = "__other__"

#: Default histogram bounds for latencies in seconds: 1 µs .. 10 s in
#: roughly 1-2.5-5 decade steps (21 finite buckets + overflow).
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(base * 10.0 ** exponent, 12)
    for exponent in range(-6, 1)
    for base in (1.0, 2.5, 5.0)
)

#: Default bounds for ratio-valued observations (MaxMatch mismatch ratio,
#: cache hit rates): ten even steps across [0, 1].
RATIO_BUCKETS: Tuple[float, ...] = tuple(i / 10 for i in range(1, 11))

#: Default bounds for small event counts (fields dropped per morph,
#: chain lengths): powers of two up to 256.
COUNT_BUCKETS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
                                    64.0, 128.0, 256.0)


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Common core: a name, an optional label set, and a lock."""

    __slots__ = ("name", "labels", "_lock")
    kind = "instrument"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        if not name:
            raise ObsError("instrument name must be non-empty")
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def key(self) -> Tuple[str, LabelItems]:
        return (self.name, self.labels)

    def label_suffix(self) -> str:
        """``{k="v",...}`` (Prometheus style) or the empty string."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}{self.label_suffix()})"


class Counter(Instrument):
    """A monotonically increasing integer."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        super().__init__(name, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Gauge(Instrument):
    """A value that can move both ways (queue depth, cache size)."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram(Instrument):
    """Fixed-bucket histogram with count/sum/min/max and estimated
    percentiles.

    *bounds* are the inclusive upper edges of the finite buckets, in
    increasing order; one implicit overflow bucket catches everything
    above the last edge.
    """

    __slots__ = ("bounds", "_bucket_counts", "_count", "_sum", "_min", "_max",
                 "_exemplars")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ObsError(f"histogram {name!r} needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ObsError(f"histogram {name!r} bounds must strictly increase")
        self.bounds = bounds
        self._bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: last traceparent observed per bucket (exemplars): a p99 spike
        #: links straight to a concrete distributed trace
        self._exemplars: List[Optional[str]] = [None] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        ctx = tracectx.current()
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if ctx is not None and ctx.sampled:
                self._exemplars[index] = ctx.traceparent()

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 < q <= 1``) by interpolating
        within the bucket holding the requested rank."""
        if not 0 < q <= 1:
            raise ObsError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            if self._min == self._max:  # degenerate: every observation equal
                return self._min if self._min is not None else 0.0
            rank = q * total
            cumulative = 0
            for index, bucket_count in enumerate(self._bucket_counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative < rank:
                    continue
                lower = self.bounds[index - 1] if index > 0 else (
                    self._min if self._min is not None else 0.0
                )
                if index < len(self.bounds):
                    upper = self.bounds[index]
                else:  # overflow bucket: cap at the observed maximum
                    upper = self._max if self._max is not None else self.bounds[-1]
                lower = min(lower, upper)
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * fraction
            return self._max if self._max is not None else 0.0

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def exemplars(self) -> List[Tuple[Optional[float], str]]:
        """``(bucket upper edge, traceparent)`` pairs for buckets with a
        recorded exemplar (``None`` edge = the overflow bucket)."""
        with self._lock:
            samples = list(self._exemplars)
        edges = list(self.bounds) + [None]
        return [
            (edges[i], trace)
            for i, trace in enumerate(samples)
            if trace is not None
        ]

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._exemplars = [None] * (len(self.bounds) + 1)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._bucket_counts)
            count, total = self._count, self._sum
            low, high = self._min, self._max
            samples = list(self._exemplars)
        snap: Dict[str, Any] = {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "buckets": [
                {"le": bound, "count": counts[i]}
                for i, bound in enumerate(self.bounds)
            ] + [{"le": None, "count": counts[-1]}],
        }
        if any(trace is not None for trace in samples):
            edges = list(self.bounds) + [None]
            snap["exemplars"] = [
                {"le": edges[i], "trace": trace}
                for i, trace in enumerate(samples)
                if trace is not None
            ]
        if count:
            snap["mean"] = total / count
            snap["p50"] = self.percentile(0.50)
            snap["p95"] = self.percentile(0.95)
            snap["p99"] = self.percentile(0.99)
        return snap


def merge_histogram_snapshots(
    base: Dict[str, Any], newest: Dict[str, Any]
) -> Dict[str, Any]:
    """Combine two histogram snapshots (or deltas) with identical bucket
    bounds into one.

    Bounds are compared for *exact* equality — never recomputed — and
    bucket counts are added as integers, so merging N snapshots is free
    of float drift: the merged counts are exactly the sums.  ``sum`` is
    the only float accumulation (unavoidable; it was already a float sum
    at observation time).  Exemplars are carried from *newest* when it
    has any, else from *base*.  Derived fields (mean, p50/p95/p99) are
    recomputed from the merged buckets.
    """
    base_edges = [b["le"] for b in base["buckets"]]
    new_edges = [b["le"] for b in newest["buckets"]]
    if base_edges != new_edges:
        raise ObsError(
            "cannot merge histogram snapshots with different bounds: "
            f"{base_edges!r} vs {new_edges!r}"
        )
    counts = [
        int(a["count"]) + int(b["count"])
        for a, b in zip(base["buckets"], newest["buckets"])
    ]
    mins = [s["min"] for s in (base, newest) if s.get("min") is not None]
    maxes = [s["max"] for s in (base, newest) if s.get("max") is not None]
    merged: Dict[str, Any] = {
        "count": int(base["count"]) + int(newest["count"]),
        "sum": base["sum"] + newest["sum"],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
        "buckets": [
            {"le": edge, "count": count}
            for edge, count in zip(base_edges, counts)
        ],
    }
    exemplars = newest.get("exemplars") or base.get("exemplars")
    if exemplars:
        merged["exemplars"] = [dict(e) for e in exemplars]
    if merged["count"]:
        merged["mean"] = merged["sum"] / merged["count"]
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            merged[label] = percentile_from_buckets(
                merged["buckets"], q,
                minimum=merged["min"], maximum=merged["max"],
            )
    for extra in ("kind", "labels"):
        if extra in newest:
            merged[extra] = newest[extra]
        elif extra in base:
            merged[extra] = base[extra]
    return merged


def percentile_from_buckets(
    buckets: Sequence[Dict[str, Any]],
    q: float,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> float:
    """Prometheus-style quantile estimate over snapshot-shaped buckets
    (``[{"le": bound_or_None, "count": n}, ...]``) — the same linear
    interpolation :meth:`Histogram.percentile` uses, but over *merged*
    bucket rows, so collectors can answer p50/p95/p99 across processes
    and time windows."""
    if not 0 < q <= 1:
        raise ObsError(f"quantile must be in (0, 1], got {q}")
    total = sum(int(b["count"]) for b in buckets)
    if total == 0:
        return 0.0
    if minimum is not None and minimum == maximum:
        return minimum
    rank = q * total
    cumulative = 0
    for index, bucket in enumerate(buckets):
        bucket_count = int(bucket["count"])
        if bucket_count == 0:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative < rank:
            continue
        if index > 0:
            lower = buckets[index - 1]["le"]
        else:
            lower = minimum if minimum is not None else 0.0
        upper = bucket["le"]
        if upper is None:  # overflow bucket: cap at the observed maximum
            upper = maximum if maximum is not None else buckets[-2]["le"]
        lower = min(lower, upper)
        fraction = (rank - previous) / bucket_count
        return lower + (upper - lower) * fraction
    return maximum if maximum is not None else 0.0


def merge_snapshot_entries(
    base: Dict[str, Any], newest: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge two snapshot/delta entries of the same kind: counters add,
    gauges take the newest value, histograms merge bucket-exactly."""
    kind = newest.get("kind", base.get("kind", "counter"))
    if kind == "histogram":
        return merge_histogram_snapshots(base, newest)
    merged = dict(newest)
    if kind == "counter":
        merged["value"] = int(base["value"]) + int(newest["value"])
    return merged


class Registry:
    """A named collection of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a ``(name, labels)`` pair creates the instrument, later calls
    return the same object (so call sites never need to cache, though hot
    paths may).  Requesting an existing name as a different kind raises
    :class:`~repro.errors.ObsError` — one name, one meaning.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[Tuple[str, LabelItems], Instrument]" = {}
        #: distinct values seen per ``(metric name, label key)`` — the
        #: cardinality guard's memory
        self._label_seen: Dict[Tuple[str, str], set] = {}

    # -- label-cardinality guard ----------------------------------------

    def bounded(
        self, name: str, limit: int = DEFAULT_LABEL_LIMIT, **labels: Any
    ) -> Dict[str, str]:
        """Guard a label set against unbounded cardinality: each label
        value counts toward a per-``(name, key)`` budget of *limit*
        distinct values; values past the budget collapse to
        :data:`OVERFLOW_LABEL` (and bump ``obs.labels.overflow``).

        Call-site idiom::

            registry.counter("morph.transform.applied",
                             **registry.bounded("morph.transform.applied",
                                                format=fmt.name)).inc()
        """
        out: Dict[str, str] = {}
        overflowed = False
        with self._lock:
            for key, value in labels.items():
                text = str(value)
                seen = self._label_seen.setdefault((name, key), set())
                if text in seen:
                    out[key] = text
                elif len(seen) < limit:
                    seen.add(text)
                    out[key] = text
                else:
                    out[key] = OVERFLOW_LABEL
                    overflowed = True
        if overflowed:
            self._get_or_create(Counter, "obs.labels.overflow",
                                {"metric": name}).inc()
        return out

    def bounded_counter(
        self, name: str, limit: int = DEFAULT_LABEL_LIMIT, **labels: Any
    ) -> Counter:
        """Get-or-create a counter with its labels cardinality-guarded."""
        return self._get_or_create(
            Counter, name, self.bounded(name, limit=limit, **labels)
        )

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = Histogram(
                        name, key[1],
                        bounds=bounds if bounds is not None else LATENCY_BUCKETS,
                    )
                    self._instruments[key] = instrument
        if not isinstance(instrument, Histogram):
            raise ObsError(
                f"{name!r} is already registered as a {instrument.kind}"
            )
        return instrument

    def _get_or_create(self, cls: type, name: str, labels: Dict[str, Any]):
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(name, key[1])
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise ObsError(
                f"{name!r} is already registered as a {instrument.kind}"
            )
        return instrument

    # -- views ----------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        """The instrument at ``(name, labels)``, or None."""
        return self._instruments.get((name, _label_items(labels)))

    def instruments(self) -> List[Instrument]:
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.key)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> "Iterable[Instrument]":
        return iter(self.instruments())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-ready dict keyed by ``name{labels}``."""
        out: Dict[str, Dict[str, Any]] = {}
        for instrument in self.instruments():
            entry = instrument.snapshot()
            entry["kind"] = instrument.kind
            if instrument.labels:
                entry["labels"] = dict(instrument.labels)
            out[instrument.name + instrument.label_suffix()] = entry
        return out

    def diff_snapshot(
        self,
        prev: Optional[Dict[str, Dict[str, Any]]] = None,
        current: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """A *mergeable delta* between *prev* (an earlier
        :meth:`snapshot`) and the registry's current state.

        The delta is itself snapshot-shaped, so deltas from many scrapes
        (or many processes) recombine with
        :func:`merge_snapshot_entries` without ever re-reading absolute
        values:

        * **counters** carry the increment since *prev*; a monotonic
          reset (current < previous — the process restarted or the
          registry was reset) is detected and reported as
          ``"reset": True`` with the full current value as the delta, so
          totals never go backwards.
        * **gauges** carry the current absolute value (last-write-wins on
          merge) and appear only when changed since *prev*.
        * **histograms** carry per-bucket count increments with the same
          reset rule per-instrument (any bucket shrinking ⇒ reset);
          ``min``/``max`` are the current absolutes and exemplars ride
          the delta so the newest scrape's traces win downstream.

        Unchanged instruments are omitted — a quiet process ships an
        empty delta.

        Pass *current* (an already-taken :meth:`snapshot`) to diff
        between two known snapshots instead of re-reading the registry —
        the agent does this so the snapshot it stores as "previous" is
        exactly the one the delta was computed from.
        """
        prev = prev or {}
        out: Dict[str, Dict[str, Any]] = {}
        if current is None:
            current = self.snapshot()
        for key, entry in current.items():
            before = prev.get(key)
            kind = entry["kind"]
            if kind == "gauge":
                if before is None or before.get("value") != entry["value"]:
                    out[key] = entry
                continue
            if before is None or before.get("kind") != kind:
                delta = dict(entry)
                delta["reset"] = before is not None
                if delta.get("count") == 0 and kind == "histogram":
                    continue
                if kind == "counter" and delta["value"] == 0:
                    continue
                out[key] = delta
                continue
            if kind == "counter":
                change = int(entry["value"]) - int(before.get("value", 0))
                if change < 0:  # monotonic reset: restart counting
                    out[key] = {**entry, "reset": True}
                elif change:
                    out[key] = {**entry, "value": change, "reset": False}
                continue
            # histogram: per-bucket deltas with exact-integer arithmetic
            old_edges = [b["le"] for b in before.get("buckets", ())]
            new_edges = [b["le"] for b in entry["buckets"]]
            shrank = (
                old_edges != new_edges
                or int(entry["count"]) < int(before.get("count", 0))
                or any(
                    int(b["count"]) < int(a["count"])
                    for a, b in zip(before["buckets"], entry["buckets"])
                )
            )
            if shrank:
                out[key] = {**entry, "reset": True}
                continue
            dcount = int(entry["count"]) - int(before.get("count", 0))
            if dcount == 0:
                continue
            delta = dict(entry)
            delta["reset"] = False
            delta["count"] = dcount
            delta["sum"] = entry["sum"] - before.get("sum", 0.0)
            delta["buckets"] = [
                {"le": b["le"], "count": int(b["count"]) - int(a["count"])}
                for a, b in zip(before["buckets"], entry["buckets"])
            ]
            delta["mean"] = delta["sum"] / dcount
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                delta[label] = percentile_from_buckets(
                    delta["buckets"], q,
                    minimum=entry.get("min"), maximum=entry.get("max"),
                )
            out[key] = delta
        return out

    def reset(self) -> None:
        """Zero every instrument (keeps the instrument objects, so cached
        references at call sites stay valid)."""
        for instrument in self.instruments():
            instrument.reset()  # type: ignore[attr-defined]

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()
