"""``python -m repro.obs`` — snapshots, flight recordings, Perfetto export.

With no arguments, runs a small live demo — the quickstart's evolving
``Reading`` format pushed through an ECho channel to a sink one revision
behind — with observability enabled, then renders the resulting metrics,
histograms and span tree as text tables.  Useful both as a smoke test of
the instrumentation and as documentation of what the subsystem records.

Usage::

    python -m repro.obs                   # live demo snapshot, as tables
    python -m repro.obs --prometheus      # same, Prometheus text format
    python -m repro.obs --json out.json   # also write the JSON snapshot
    python -m repro.obs --load snap.json  # pretty-print a saved snapshot
    python -m repro.obs --format chrome --out trace.json
                                          # traced lossy demo -> Chrome
                                          # trace-event JSON (load the
                                          # file at https://ui.perfetto.dev)
    python -m repro.obs --flight          # traced lossy demo -> per-message
                                          # flight-recorder hop timelines
    python -m repro.obs --trace-smoke --out trace.json
                                          # CI gate: V2->V1->V0 morph chain
                                          # over a 10% lossy link; asserts
                                          # every delivered message produced
                                          # one complete trace, writes the
                                          # Chrome export, exits 1 on failure
    python -m repro.obs --top             # live cluster view: a 3-worker
                                          # fabric with telemetry agents,
                                          # rendered as tables (sources,
                                          # per-channel totals, route hit
                                          # ratio, retransmit %, journal
                                          # lag, SLO states)
    python -m repro.obs --top --watch 5   # same, re-rendered every demo
                                          # second for 5 frames
    python -m repro.obs --cluster-export --out state.json
                                          # run the demo fleet and write
                                          # the collector's cluster_state()
                                          # JSON contract
    python -m repro.obs --telemetry-smoke # CI gate: agent/collector
                                          # convergence under loss, SLO
                                          # fire->resolve, schema check,
                                          # byte-identical disabled wire
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Tuple

from repro import obs
from repro.obs.distributed import TraceStore
from repro.obs.export import build_snapshot, render_text, to_prometheus


def _demo_workload(messages: int = 25) -> None:
    """One evolving-format ECho exchange: a v2 producer, a v1 consumer,
    morphing in between — enough traffic to populate every layer's
    instruments (net, pbio, ecode, morph, echo)."""
    from repro.echo.process import EChoProcess
    from repro.net.transport import Network
    from repro.pbio.field import IOField
    from repro.pbio.format import IOFormat
    from repro.pbio.registry import FormatRegistry

    reading_v1 = IOFormat(
        "Reading",
        [IOField("celsius", "float"), IOField("station", "string")],
        version="1",
    )
    reading_v2 = IOFormat(
        "Reading",
        [
            IOField("kelvin", "float"),
            IOField("station", "string"),
            IOField("sensor_id", "integer"),
        ],
        version="2",
    )
    registry = FormatRegistry()
    registry.add_transform(
        reading_v2,
        reading_v1,
        "old.celsius = new.kelvin - 273.15;\nold.station = new.station;",
        description="Reading v2 -> v1",
    )
    network = Network()
    producer = EChoProcess(network, "producer", registry, version="2.0")
    consumer = EChoProcess(network, "consumer", registry, version="1.0")
    producer.create_channel("readings")
    consumer.open_channel("readings", "producer", as_sink=True)
    network.run()
    consumer.subscribe("readings", reading_v1, lambda rec: rec)
    for i in range(messages):
        producer.submit(
            "readings",
            reading_v2,
            reading_v2.make_record(
                kelvin=290.0 + i, station=f"st-{i % 3}", sensor_id=i
            ),
        )
    network.run()


def _traced_chain_workload(
    messages: int = 20, loss_rate: float = 0.10, seed: int = 7
) -> Tuple[int, int]:
    """The distributed-tracing demo: a V2 producer publishing to a V0
    consumer over a *lossy* link with reliable endpoints — every message
    crosses the wire (possibly several times), morphs V2→V1→V0 through
    the writer-supplied transform chain, and dispatches.  Returns
    ``(delivered, messages)``."""
    from repro.echo.process import EChoProcess
    from repro.net.link import LinkSpec
    from repro.net.transport import Network
    from repro.pbio.field import IOField
    from repro.pbio.format import IOFormat
    from repro.pbio.registry import FormatRegistry

    reading_v0 = IOFormat(
        "Reading", [IOField("celsius", "float")], version="0"
    )
    reading_v1 = IOFormat(
        "Reading",
        [IOField("celsius", "float"), IOField("station", "string")],
        version="1",
    )
    reading_v2 = IOFormat(
        "Reading",
        [
            IOField("kelvin", "float"),
            IOField("station", "string"),
            IOField("sensor_id", "integer"),
        ],
        version="2",
    )
    registry = FormatRegistry()
    registry.add_transform(
        reading_v2,
        reading_v1,
        "old.celsius = new.kelvin - 273.15;\nold.station = new.station;",
        description="Reading v2 -> v1",
    )
    registry.add_transform(
        reading_v1,
        reading_v0,
        "old.celsius = new.celsius;",
        description="Reading v1 -> v0",
    )
    network = Network(
        seed=seed,
        default_link=LinkSpec(latency=0.001, loss_rate=loss_rate),
    )
    producer = EChoProcess(network, "producer", registry, version="2.0",
                           reliable=True)
    consumer = EChoProcess(network, "consumer", registry, version="0.0",
                           reliable=True)
    producer.create_channel("readings")
    consumer.open_channel("readings", "producer", as_sink=True)
    network.run()
    delivered: List[object] = []
    consumer.subscribe("readings", reading_v0, delivered.append)
    for i in range(messages):
        producer.submit(
            "readings",
            reading_v2,
            reading_v2.make_record(
                kelvin=290.0 + i, station=f"st-{i % 3}", sensor_id=i
            ),
        )
    network.run()
    return len(delivered), messages


#: Span names every complete traced delivery must contain (the morph
#: chain shows as ``morph.transform`` staged or ``morph.fused`` fused).
_REQUIRED_SPANS = (
    "echo.publish",
    "net.deliver",
    "morph.process",
    "morph.dispatch",
)


def _collect_store() -> TraceStore:
    store = TraceStore()
    tracer = obs.get_tracer()
    if isinstance(tracer, obs.SpanRecorder):
        store.add_recorder("local", tracer)
    return store


def _run_chrome(out_path: Optional[str]) -> int:
    obs.disable(reset=True)
    obs.enable()
    obs.seed_ids(42)
    _traced_chain_workload()
    store = _collect_store()
    text = store.to_chrome_json()
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote Chrome trace-event JSON for {len(store.trace_ids())} "
            f"trace(s) to {out_path} — load it at https://ui.perfetto.dev"
        )
    else:
        print(text)
    obs.disable(reset=True)
    return 0


def _run_flight(trace_id: Optional[str]) -> int:
    obs.disable(reset=True)
    obs.enable()
    obs.seed_ids(42)
    _traced_chain_workload()
    store = _collect_store()
    ids = store.trace_ids()
    if not ids:
        print("no traces recorded", file=sys.stderr)
        return 1
    targets = [trace_id] if trace_id is not None else ids[:3]
    for tid in targets:
        print(store.flight(tid).hop_report())
        print()
    total = sum(store.flight(t).retransmits for t in ids)
    print(f"{len(ids)} trace(s) recorded, {total} retransmit(s) across all")
    obs.disable(reset=True)
    return 0


def _run_trace_smoke(out_path: Optional[str]) -> int:
    """The CI smoke gate: run the lossy V2→V1→V0 chain traced, assert
    trace completeness for every delivered message, export Chrome JSON."""
    obs.disable(reset=True)
    obs.enable(capacity=65536)
    obs.seed_ids(42)
    delivered, sent = _traced_chain_workload(messages=30)
    store = _collect_store()
    failures: List[str] = []
    if delivered != sent:
        failures.append(f"delivered {delivered}/{sent} messages")
    ids = store.trace_ids()
    # the channel-open handshake is untraced; every published message
    # must have produced exactly one trace
    if len(ids) != sent:
        failures.append(f"{len(ids)} trace(s) for {sent} published messages")
    incomplete = 0
    for tid in ids:
        report = store.flight(tid)
        names = set(report.span_names())
        missing = [n for n in _REQUIRED_SPANS if n not in names]
        if "morph.transform" not in names and "morph.fused" not in names:
            missing.append("morph.transform|morph.fused")
        if missing:
            incomplete += 1
            if incomplete <= 3:
                failures.append(f"trace {tid} missing spans: {missing}")
    if incomplete:
        failures.append(f"{incomplete} incomplete trace(s)")
    snapshot = build_snapshot(obs.get_registry(), obs.get_tracer())
    if snapshot["spans"]["dropped"]:
        failures.append(
            f"{snapshot['spans']['dropped']} span(s) evicted from the ring "
            "(raise the capacity)"
        )
    chrome = store.to_chrome()
    if not chrome["traceEvents"]:
        failures.append("Chrome export is empty")
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle, indent=2)
    retransmits = sum(store.flight(t).retransmits for t in ids)
    obs.disable(reset=True)
    if failures:
        for failure in failures:
            print(f"trace-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"trace-smoke OK: {delivered}/{sent} delivered, {len(ids)} complete "
        f"trace(s), {retransmits} retransmit(s) recovered"
        + (f", Chrome export at {out_path}" if out_path else "")
    )
    return 0


def _print_loaded(path: str) -> int:
    """Pretty-print a snapshot previously saved with ``--json``."""
    from repro.bench.reporting import format_table

    with open(path, "r", encoding="utf-8") as handle:
        snap = json.load(handle)
    metrics = snap.get("metrics", {})
    rows = []
    for name, entry in sorted(metrics.items()):
        if entry.get("kind") == "histogram":
            value = f"count={entry['count']} sum={entry['sum']:.3g}"
        else:
            value = entry.get("value")
        rows.append((name, entry.get("kind", "?"), value))
    print(format_table(["name", "kind", "value"], rows))
    spans = snap.get("spans", {})
    print(
        f"\nspans: {spans.get('buffered', 0)} buffered / "
        f"{spans.get('recorded_total', 0)} recorded / "
        f"{spans.get('dropped', 0)} dropped"
    )
    return 0


def _run_top(watch_frames: int) -> int:
    """Build the demo fleet, drive traffic, render the cluster view —
    once, or one frame per demo second with ``--watch N``."""
    from repro.obs.topview import build_cluster, drive, render_top

    obs.disable(reset=True)
    obs.enable()
    cluster = build_cluster()
    frames = max(1, watch_frames)
    for frame in range(frames):
        drive(cluster, seconds=1.0)
        if frame:
            print()
        print(render_top(cluster.collector, cluster.engine))
    cluster.flush()
    obs.disable(reset=True)
    return 0


def _run_cluster_export(out_path: Optional[str]) -> int:
    """Run the demo fleet and emit the ``cluster_state()`` contract."""
    from repro.obs.topview import build_cluster, drive

    obs.disable(reset=True)
    obs.enable()
    cluster = build_cluster()
    drive(cluster, seconds=2.0)
    cluster.flush()
    state = cluster.collector.cluster_state()
    obs.disable(reset=True)
    text = json.dumps(state, indent=2, sort_keys=True)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote cluster state ({state['schema']}) to {out_path}")
    else:
        print(text)
    return 0


def _run_telemetry_smoke(out_path: Optional[str]) -> int:
    from repro.obs.topview import telemetry_smoke

    failures = telemetry_smoke(export_path=out_path)
    if failures:
        for failure in failures:
            print(f"telemetry-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "telemetry-smoke OK: collector converged, SLO fired and resolved, "
        "schema valid, disabled wire byte-identical"
        + (f", export at {out_path}" if out_path else "")
    )
    return 0


def _option(args: List[str], flag: str) -> Optional[str]:
    """The value following *flag*, or None when the flag is absent.
    Exits with status 2 (via SystemExit) when the value is missing."""
    if flag not in args:
        return None
    index = args.index(flag)
    if index + 1 >= len(args) or args[index + 1].startswith("--"):
        print(f"error: {flag} requires a value", file=sys.stderr)
        raise SystemExit(2)
    return args[index + 1]


def main(argv: "Optional[List[str]]" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    load_path = _option(args, "--load")
    if load_path is not None:
        return _print_loaded(load_path)
    out_path = _option(args, "--out")
    if "--trace-smoke" in args:
        return _run_trace_smoke(out_path)
    if "--telemetry-smoke" in args:
        return _run_telemetry_smoke(out_path)
    if "--top" in args:
        watch = _option(args, "--watch")
        return _run_top(int(watch) if watch is not None else 1)
    if "--cluster-export" in args:
        return _run_cluster_export(out_path)
    fmt = _option(args, "--format")
    if fmt is not None:
        if fmt != "chrome":
            print(f"error: unknown --format {fmt!r} (expected 'chrome')",
                  file=sys.stderr)
            return 2
        return _run_chrome(out_path)
    if "--flight" in args:
        # optional positional trace id after the flag
        index = args.index("--flight")
        trace_id = None
        if index + 1 < len(args) and not args[index + 1].startswith("--"):
            trace_id = args[index + 1]
        return _run_flight(trace_id)
    json_path = _option(args, "--json")

    obs.disable(reset=True)
    obs.enable()
    _demo_workload()
    state = obs.OBS
    if "--prometheus" in args:
        print(to_prometheus(state.metrics), end="")
    else:
        print("live snapshot of the quickstart ECho evolution demo\n")
        print(render_text(state.metrics, state.tracer))
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(build_snapshot(state.metrics, state.tracer), handle,
                      indent=2)
        print(f"\nwrote JSON snapshot to {json_path}")
    obs.disable(reset=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
