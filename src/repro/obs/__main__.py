"""``python -m repro.obs`` — pretty-print an observability snapshot.

With no arguments, runs a small live demo — the quickstart's evolving
``Reading`` format pushed through an ECho channel to a sink one revision
behind — with observability enabled, then renders the resulting metrics,
histograms and span tree as text tables.  Useful both as a smoke test of
the instrumentation and as documentation of what the subsystem records.

Usage::

    python -m repro.obs                   # live demo snapshot, as tables
    python -m repro.obs --prometheus      # same, Prometheus text format
    python -m repro.obs --json out.json   # also write the JSON snapshot
    python -m repro.obs --load snap.json  # pretty-print a saved snapshot
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro import obs
from repro.obs.export import build_snapshot, render_text, to_prometheus


def _demo_workload(messages: int = 25) -> None:
    """One evolving-format ECho exchange: a v2 producer, a v1 consumer,
    morphing in between — enough traffic to populate every layer's
    instruments (net, pbio, ecode, morph, echo)."""
    from repro.echo.process import EChoProcess
    from repro.net.transport import Network
    from repro.pbio.field import IOField
    from repro.pbio.format import IOFormat
    from repro.pbio.registry import FormatRegistry

    reading_v1 = IOFormat(
        "Reading",
        [IOField("celsius", "float"), IOField("station", "string")],
        version="1",
    )
    reading_v2 = IOFormat(
        "Reading",
        [
            IOField("kelvin", "float"),
            IOField("station", "string"),
            IOField("sensor_id", "integer"),
        ],
        version="2",
    )
    registry = FormatRegistry()
    registry.add_transform(
        reading_v2,
        reading_v1,
        "old.celsius = new.kelvin - 273.15;\nold.station = new.station;",
        description="Reading v2 -> v1",
    )
    network = Network()
    producer = EChoProcess(network, "producer", registry, version="2.0")
    consumer = EChoProcess(network, "consumer", registry, version="1.0")
    producer.create_channel("readings")
    consumer.open_channel("readings", "producer", as_sink=True)
    network.run()
    consumer.subscribe("readings", reading_v1, lambda rec: rec)
    for i in range(messages):
        producer.submit(
            "readings",
            reading_v2,
            reading_v2.make_record(
                kelvin=290.0 + i, station=f"st-{i % 3}", sensor_id=i
            ),
        )
    network.run()


def _print_loaded(path: str) -> int:
    """Pretty-print a snapshot previously saved with ``--json``."""
    from repro.bench.reporting import format_table

    with open(path, "r", encoding="utf-8") as handle:
        snap = json.load(handle)
    metrics = snap.get("metrics", {})
    rows = []
    for name, entry in sorted(metrics.items()):
        if entry.get("kind") == "histogram":
            value = f"count={entry['count']} sum={entry['sum']:.3g}"
        else:
            value = entry.get("value")
        rows.append((name, entry.get("kind", "?"), value))
    print(format_table(["name", "kind", "value"], rows))
    spans = snap.get("spans", {})
    print(
        f"\nspans: {spans.get('buffered', 0)} buffered / "
        f"{spans.get('recorded_total', 0)} recorded"
    )
    return 0


def main(argv: "Optional[List[str]]" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "--load" in args:
        index = args.index("--load")
        if index + 1 >= len(args):
            print("error: --load requires a file path", file=sys.stderr)
            return 2
        return _print_loaded(args[index + 1])
    json_path = None
    if "--json" in args:
        index = args.index("--json")
        if index + 1 >= len(args):
            print("error: --json requires a file path", file=sys.stderr)
            return 2
        json_path = args[index + 1]

    obs.disable(reset=True)
    obs.enable()
    _demo_workload()
    state = obs.OBS
    if "--prometheus" in args:
        print(to_prometheus(state.metrics), end="")
    else:
        print("live snapshot of the quickstart ECho evolution demo\n")
        print(render_text(state.metrics, state.tracer))
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(build_snapshot(state.metrics, state.tracer), handle,
                      indent=2)
        print(f"\nwrote JSON snapshot to {json_path}")
    obs.disable(reset=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
