"""TelemetryAgent — per-process metric shipping over the event plane.

The agent periodically diffs its registry's snapshot
(:meth:`~repro.obs.metrics.Registry.diff_snapshot`) and publishes the
delta as a PBIO ``TelemetryDelta`` record on the reserved
:data:`~repro.obs.protocol.TELEMETRY_CHANNEL`.  It is transport-neutral
by construction: the constructor takes any ``publish(fmt, record)``
callable, and :meth:`over_echo` / :meth:`over_fabric` build that
callable from an :class:`~repro.echo.process.EChoProcess` or a
:class:`~repro.fabric.client.FabricClient` — which means deltas ride
the sim transport, the socket transport, or the sharded fabric through
exactly the machinery application events use (morph-at-owner,
reliability, batching, trace context stamped by the submit path).

Cost stance: the agent does **nothing** until :meth:`start` (or an
explicit :meth:`scrape`) — a constructed-but-idle agent adds zero bytes
to the wire, keeping the disabled wire byte-identical.  Each scrape is
O(changed instruments); an idle process ships a heartbeat-sized empty
delta, which doubles as the collector's liveness signal.

Cardinality is bounded the same way the registry's label guard is: at
most ``max_metrics`` entries ride one delta; excess *counters* collapse
into a single :data:`~repro.obs.metrics.OVERFLOW_LABEL` entry (so
cluster totals stay exact) and excess gauges/histograms are counted in
the record's ``dropped`` field.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from repro.obs import OBS
from repro.obs.metrics import OVERFLOW_LABEL, Registry
from repro.obs.protocol import (
    TELEMETRY_CHANNEL,
    TELEMETRY_V2,
    register_telemetry_protocol,
)
from repro.pbio.format import IOFormat
from repro.pbio.record import Record

#: Upper bound on metric entries per shipped delta.
DEFAULT_MAX_METRICS = 512

#: Monotonic fallback boot ids for agents whose caller does not supply
#: one (a restarted agent in the same interpreter still gets a fresh
#: boot, so collectors treat it as a new incarnation).
_next_boot = 0


def _allocate_boot() -> int:
    global _next_boot
    _next_boot += 1
    return _next_boot


PublishFn = Callable[[IOFormat, Record], Any]


class TelemetryAgent:
    """Ships one process's metric deltas as telemetry events.

    Parameters
    ----------
    publish:
        ``publish(fmt, record)`` — how a delta reaches the wire.  See
        :meth:`over_echo` / :meth:`over_fabric`.
    process:
        Source identity (the collector's primary series key).
    worker:
        Optional fabric worker address this agent reports for.
    registry:
        The registry to scrape; defaults to the live ``OBS.metrics`` at
        scrape time, so ``obs.enable(registry=...)`` swaps are honored.
    interval:
        Target scrape period (seconds) for :meth:`start` /
        :meth:`maybe_scrape`.
    boot:
        Incarnation id carried in every record; collectors key their
        dedup ledger by ``(process, boot)``, so a restart (fresh boot)
        restarts the sequence space instead of colliding with the old
        one.  Auto-allocated when omitted.
    """

    def __init__(
        self,
        publish: PublishFn,
        process: str,
        worker: str = "",
        registry: Optional[Registry] = None,
        interval: float = 1.0,
        max_metrics: int = DEFAULT_MAX_METRICS,
        boot: Optional[int] = None,
        clock: Optional[Any] = None,
    ) -> None:
        self._publish = publish
        self.process = process
        self.worker = worker
        self._registry = registry
        self.interval = interval
        self.max_metrics = max_metrics
        self.boot = boot if boot is not None else _allocate_boot()
        self.clock = clock
        self.seq = 0
        self.scrapes = 0
        self.dropped_total = 0
        self._prev: Optional[Dict[str, Dict[str, Any]]] = None
        self._last_scrape: Optional[float] = None
        self._timer: Optional[Any] = None
        self._network: Optional[Any] = None

    # -- transport adapters ---------------------------------------------

    @classmethod
    def over_echo(
        cls,
        echo_process: Any,
        channel: str = TELEMETRY_CHANNEL,
        **options: Any,
    ) -> "TelemetryAgent":
        """An agent publishing through ``echo_process.submit`` on
        *channel* (the process must have created or opened it as a
        source).  Works identically on the sim and socket transports —
        the echo layer abstracts them."""
        register_telemetry_protocol(echo_process.registry)
        agent = cls(
            lambda fmt, record: echo_process.submit(channel, fmt, record),
            process=options.pop("process", echo_process.address),
            clock=options.pop("clock", echo_process.network),
            **options,
        )
        agent._network = echo_process.network
        return agent

    @classmethod
    def over_fabric(
        cls,
        client: Any,
        channel: str = TELEMETRY_CHANNEL,
        **options: Any,
    ) -> "TelemetryAgent":
        """An agent publishing through ``FabricClient.publish`` — deltas
        route to the channel's owning worker and fan out (morphing to
        each subscriber's telemetry format version) like any event."""
        register_telemetry_protocol(client.registry)
        agent = cls(
            lambda fmt, record: client.publish(channel, fmt, record),
            process=options.pop("process", client.address),
            clock=options.pop("clock", client.network),
            **options,
        )
        agent._network = client.network
        return agent

    # -- scraping -------------------------------------------------------

    @property
    def registry(self) -> Registry:
        return self._registry if self._registry is not None else OBS.metrics

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock.now
        return 0.0 if self._last_scrape is None else self._last_scrape

    def scrape(self, now: Optional[float] = None) -> Record:
        """Diff the registry against the previous scrape and publish the
        delta.  Returns the published record (tests inspect it)."""
        if now is None:
            now = self._now()
        registry = self.registry
        current = registry.snapshot()
        delta = registry.diff_snapshot(self._prev, current=current)
        self._prev = current
        delta, dropped = self._bound(delta)
        interval = (
            now - self._last_scrape
            if self._last_scrape is not None else self.interval
        )
        self._last_scrape = now
        self.seq += 1
        self.scrapes += 1
        self.dropped_total += dropped
        record = TELEMETRY_V2.make_record(
            process=self.process,
            worker=self.worker,
            boot=self.boot,
            seq=self.seq,
            time=float(now),
            interval=float(interval),
            dropped=dropped,
            metrics=json.dumps(delta, sort_keys=True, separators=(",", ":")),
        )
        self._publish(TELEMETRY_V2, record)
        if OBS.enabled:
            OBS.metrics.counter(
                "obs.telemetry.agent.scrapes", process=self.process
            ).inc()
            if dropped:
                OBS.metrics.counter(
                    "obs.telemetry.agent.dropped", process=self.process
                ).inc(dropped)
        return record

    def _bound(
        self, delta: Dict[str, Dict[str, Any]]
    ) -> "tuple[Dict[str, Dict[str, Any]], int]":
        """Apply the cardinality bound: keep the first ``max_metrics``
        entries (sorted, so the kept set is stable across scrapes),
        collapse overflow counters into one ``__other__`` total, count
        everything else as dropped."""
        if len(delta) <= self.max_metrics:
            return delta, 0
        keys = sorted(delta)
        kept = {key: delta[key] for key in keys[: self.max_metrics]}
        overflow_value = 0
        dropped = 0
        for key in keys[self.max_metrics:]:
            entry = delta[key]
            if entry.get("kind") == "counter":
                overflow_value += int(entry["value"])
            else:
                dropped += 1
        if overflow_value:
            kept[OVERFLOW_LABEL] = {"kind": "counter",
                                    "value": overflow_value}
        return kept, dropped

    def maybe_scrape(self, now: Optional[float] = None) -> Optional[Record]:
        """Scrape only when a full interval elapsed since the last one —
        the piggyback hook the fabric worker heartbeat calls."""
        if now is None:
            now = self._now()
        if (
            self._last_scrape is not None
            and now - self._last_scrape < self.interval
        ):
            return None
        return self.scrape(now)

    # -- self-driving (transport timers) --------------------------------

    def start(
        self, network: Optional[Any] = None, interval: Optional[float] = None
    ) -> None:
        """Drive scrapes from the transport's timer wheel (sim virtual
        time or the socket scheduler — both honor ``call_later``)."""
        if interval is not None:
            self.interval = interval
        if network is not None:
            self._network = network
        if self._network is None:
            raise ValueError("TelemetryAgent.start needs a network")
        if self.clock is None:
            self.clock = self._network
        self._schedule()

    def _schedule(self) -> None:
        assert self._network is not None
        self._timer = self._network.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if self._timer is None:
            return  # stopped between scheduling and firing
        self.scrape()
        self._schedule()

    def stop(self) -> None:
        timer, self._timer = self._timer, None
        if timer is not None and hasattr(timer, "cancel"):
            timer.cancel()
