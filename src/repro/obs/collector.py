"""TelemetryCollector — cluster-level aggregation of telemetry deltas.

The collector is a *normal subscriber*: point
:meth:`~TelemetryCollector.subscribe_fabric` at a
:class:`~repro.fabric.client.FabricClient` (or
:meth:`~TelemetryCollector.subscribe_echo` at an
:class:`~repro.echo.process.EChoProcess`) and every ``TelemetryDelta``
published on the reserved channel lands in :meth:`ingest`.  No side
channel, no special transport privileges — which is the point: the
telemetry plane exercises the same morphing/reliability/batching
machinery it reports on.

Exactly-once aggregation over at-least-once transports: every record
carries ``(process, boot, seq)`` and the collector admits each sequence
number once per incarnation, so retransmitted deltas (reliable-layer
retries, fabric redelivery races) are idempotent.  A *new* boot opens a
fresh sequence space — the rejoin path after a crash — while the old
incarnation's already-merged totals stay counted.

Series are kept in a bounded :class:`~repro.obs.timeseries.SeriesStore`
keyed ``(process, metric)``; worker and shard ride in the metric's own
labels, so the effective key is (process, worker, shard, metric) for
fabric metrics.  Sources go **stale** when their deltas stop arriving
for ``stale_after`` seconds — and, when a
:class:`~repro.fabric.membership.FabricDirectory` is attached, the
moment the lease machinery crash-leaves their worker (the PR 9 failure
detector doubles as the telemetry liveness oracle).  A stale source
that publishes again (same or new boot) recovers automatically.

:meth:`cluster_state` is the stable JSON contract
(:data:`~repro.obs.protocol.CLUSTER_STATE_SCHEMA`) the future placement
broker consumes; :func:`validate_cluster_state` checks a document
against the committed schema file without any external dependency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import OBS
from repro.obs.metrics import merge_snapshot_entries
from repro.obs.protocol import (
    CLUSTER_STATE_SCHEMA,
    TELEMETRY_CHANNEL,
    TELEMETRY_V2,
    register_telemetry_protocol,
)
from repro.obs.timeseries import DEFAULT_ROLLUPS, SeriesStore

#: Default staleness horizon: a source quiet for this many seconds is
#: marked stale (agents at a 1 s interval get three missed scrapes).
DEFAULT_STALE_AFTER = 3.0


class _SeqLedger:
    """Tiny exactly-once admission set: high-water mark + sparse tail.
    (A local twin of the fabric's SeqLedger — the obs layer must not
    import from repro.fabric.)"""

    __slots__ = ("high", "sparse")

    def __init__(self) -> None:
        self.high = 0
        self.sparse: set = set()

    def admit(self, seq: int) -> bool:
        if seq <= self.high or seq in self.sparse:
            return False
        if seq == self.high + 1:
            self.high = seq
            while self.high + 1 in self.sparse:
                self.high += 1
                self.sparse.remove(self.high)
        else:
            self.sparse.add(seq)
        return True


class SourceState:
    """What the collector knows about one publishing process."""

    __slots__ = ("process", "worker", "boot", "last_seq", "last_seen",
                 "last_interval", "deltas", "duplicates", "dropped",
                 "stale", "stale_marks")

    def __init__(self, process: str) -> None:
        self.process = process
        self.worker = ""
        self.boot = 0
        self.last_seq = 0
        self.last_seen: Optional[float] = None
        self.last_interval = 0.0
        self.deltas = 0
        self.duplicates = 0
        self.dropped = 0
        self.stale = False
        self.stale_marks = 0


class TelemetryCollector:
    """Aggregates telemetry deltas into cluster-level time series."""

    def __init__(
        self,
        clock: Optional[Any] = None,
        stale_after: float = DEFAULT_STALE_AFTER,
        series_limit: int = 4096,
        series_capacity: int = 240,
        rollups: Tuple[Tuple[float, int], ...] = DEFAULT_ROLLUPS,
        directory: Optional[Any] = None,
    ) -> None:
        self.clock = clock
        self.stale_after = stale_after
        self.directory = directory
        self.store = SeriesStore(
            limit=series_limit,
            capacity=series_capacity,
            rollups=rollups,
            on_overflow=self._on_series_overflow,
        )
        self.sources: Dict[str, SourceState] = {}
        #: (process, boot) -> admission ledger
        self._ledgers: Dict[Tuple[str, int], _SeqLedger] = {}
        #: (process, metric key) -> (metric name, labels, kind)
        self._meta: Dict[Tuple[str, str], Tuple[str, Dict[str, str], str]] = {}
        self.ingested = 0
        self.duplicates = 0
        self.rejected = 0

    # -- subscription adapters ------------------------------------------

    def subscribe_fabric(
        self, client: Any, channel: str = TELEMETRY_CHANNEL, fmt=TELEMETRY_V2
    ) -> None:
        """Subscribe through a fabric client; the owning worker morphs
        agents' records into *fmt* (this collector's version)."""
        register_telemetry_protocol(client.registry)
        client.subscribe(channel, fmt, self.fabric_handler)

    def subscribe_echo(
        self, echo_process: Any, channel: str = TELEMETRY_CHANNEL,
        fmt=TELEMETRY_V2,
    ) -> None:
        """Subscribe through an echo process (the channel must have been
        created here or opened as a sink)."""
        register_telemetry_protocol(echo_process.registry)
        echo_process.subscribe(channel, fmt, self.echo_handler)

    def fabric_handler(
        self, channel_id: str, publisher: str, seq: int, record: Any
    ) -> None:
        self.ingest(record)

    def echo_handler(self, record: Any) -> None:
        self.ingest(record)

    def attach_directory(self, directory: Any) -> None:
        """Ride the fabric lease machinery: sources whose worker the
        directory crash-left (or whose lease already lapsed) are stale
        immediately, not only after ``stale_after`` of silence."""
        self.directory = directory

    # -- ingestion ------------------------------------------------------

    def _now(self, now: Optional[float], record_time: float) -> float:
        if now is not None:
            return now
        if self.clock is not None:
            return self.clock.now
        return record_time

    def ingest(self, record: Any, now: Optional[float] = None) -> bool:
        """Apply one TelemetryDelta record.  Returns True when the
        record advanced state (False: duplicate or malformed)."""
        try:
            process = record["process"]
            boot = int(record["boot"])
            seq = int(record["seq"])
            record_time = float(record["time"])
            payload = record["metrics"]
        except (KeyError, TypeError, ValueError):
            self.rejected += 1
            return False
        now = self._now(now, record_time)
        source = self.sources.get(process)
        if source is None:
            source = self.sources[process] = SourceState(process)
        worker = record["worker"] if "worker" in record else ""
        if worker:
            source.worker = worker
        ledger = self._ledgers.get((process, boot))
        if ledger is None:
            ledger = self._ledgers[(process, boot)] = _SeqLedger()
        if not ledger.admit(seq):
            source.duplicates += 1
            self.duplicates += 1
            if OBS.enabled:
                OBS.metrics.counter("obs.telemetry.collector.duplicates").inc()
            return False
        try:
            delta = json.loads(payload) if payload else {}
        except ValueError:
            self.rejected += 1
            return False
        if not isinstance(delta, dict):
            self.rejected += 1
            return False
        # Liveness bookkeeping: any admitted delta (even an empty one)
        # is a heartbeat and un-stales the source — the rejoin path.
        if boot != source.boot:
            source.boot = boot
            source.last_seq = seq
        else:
            source.last_seq = max(source.last_seq, seq)
        source.last_seen = now
        source.deltas += 1
        if "interval" in record:
            source.last_interval = float(record["interval"])
        if "dropped" in record:
            source.dropped += int(record["dropped"])
        if source.stale:
            source.stale = False
        self.ingested += 1
        if OBS.enabled:
            OBS.metrics.counter("obs.telemetry.collector.deltas").inc()
        for key, entry in delta.items():
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind", "counter")
            series_key = (process, key)
            if series_key not in self._meta:
                name = key.split("{", 1)[0]
                labels = entry.get("labels") or {}
                self._meta[series_key] = (name, dict(labels), kind)
            series = self.store.series(series_key, kind)
            try:
                if kind == "counter":
                    series.ingest_delta(record_time, int(entry["value"]))
                elif kind == "gauge":
                    series.ingest_delta(record_time, float(entry["value"]))
                else:
                    series.ingest_delta(record_time, entry)
            except (KeyError, TypeError, ValueError):
                self.rejected += 1
        return True

    def _on_series_overflow(self) -> None:
        if OBS.enabled:
            OBS.metrics.counter("obs.telemetry.collector.overflow").inc()

    # -- staleness ------------------------------------------------------

    def _worker_dead(self, worker: str) -> bool:
        if not worker or self.directory is None:
            return False
        try:
            alive = worker in self.directory.workers
        except Exception:  # noqa: BLE001 - foreign directory shape
            return False
        if not alive:
            # Only workers the directory once knew (declared dead) count;
            # a non-fabric source label never marks the source stale.
            return any(addr == worker for _, addr in self.directory.deaths)
        remaining = getattr(self.directory, "lease_remaining", None)
        if remaining is None:
            return False
        ttl = remaining(worker)
        return ttl is not None and ttl <= 0

    def check_stale(self, now: Optional[float] = None) -> List[str]:
        """Mark quiet (or lease-expired) sources stale; returns the
        processes that newly turned stale."""
        if now is None and self.clock is not None:
            now = self.clock.now
        newly: List[str] = []
        for source in self.sources.values():
            is_stale = self._worker_dead(source.worker)
            if (
                not is_stale
                and now is not None
                and source.last_seen is not None
                and now - source.last_seen > self.stale_after
            ):
                is_stale = True
            if is_stale and not source.stale:
                source.stale = True
                source.stale_marks += 1
                newly.append(source.process)
                if OBS.enabled:
                    OBS.metrics.counter(
                        "obs.telemetry.collector.stale_marks"
                    ).inc()
        return newly

    # -- aggregate queries ----------------------------------------------

    def _matching(
        self, metric: str, labels: Optional[Dict[str, str]] = None
    ) -> List[Tuple[Tuple[str, str], Any]]:
        out = []
        for series_key, series in self.store.items():
            meta = self._meta.get(series_key)
            if meta is None:
                continue
            name, series_labels, _kind = meta
            if name != metric:
                continue
            if labels and any(
                series_labels.get(k) != v for k, v in labels.items()
            ):
                continue
            out.append((series_key, series))
        return out

    def total(
        self, metric: str, labels: Optional[Dict[str, str]] = None
    ) -> int:
        """Cluster-wide running total of a counter metric."""
        return sum(
            series.total or 0
            for _, series in self._matching(metric, labels)
            if series.kind == "counter"
        )

    def rate(
        self,
        metric: str,
        window: float,
        now: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> float:
        """Cluster-wide windowed rate (events/second) of a counter."""
        if now is None:
            now = self.clock.now if self.clock is not None else 0.0
        return sum(
            series.rate(window, now)
            for _, series in self._matching(metric, labels)
            if series.kind == "counter"
        )

    def percentile(
        self,
        metric: str,
        q: float,
        window: float,
        now: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> float:
        """Cluster-wide quantile over the merged histogram deltas of
        every matching series in the window."""
        from repro.obs.metrics import (
            merge_histogram_snapshots,
            percentile_from_buckets,
        )

        if now is None:
            now = self.clock.now if self.clock is not None else 0.0
        merged = None
        for _, series in self._matching(metric, labels):
            if series.kind != "histogram":
                continue
            window_merge = series.merged(window, now)
            if window_merge is None:
                continue
            merged = (
                window_merge if merged is None
                else merge_histogram_snapshots(merged, window_merge)
            )
        if merged is None:
            return 0.0
        return percentile_from_buckets(
            merged["buckets"], q,
            minimum=merged.get("min"), maximum=merged.get("max"),
        )

    # -- the contract ---------------------------------------------------

    def cluster_state(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The stable JSON contract downstream consumers (the placement
        broker, ``--cluster-export``, the smoke's schema check) read.

        Shape (schema :data:`CLUSTER_STATE_SCHEMA`):

        * ``sources`` — per process: worker, boot, last_seq, last_seen,
          staleness, delta/duplicate counts.
        * ``totals`` — per metric key, the cluster-wide merged entry
          (counters summed exactly, gauges last-write-wins, histograms
          bucket-merged).
        * ``channels`` — per channel label value, every counter total
          carrying that label: the per-channel event totals the
          placement broker keys on.
        """
        if now is None:
            now = self.clock.now if self.clock is not None else 0.0
        self.check_stale(now)
        totals: Dict[str, Dict[str, Any]] = {}
        gauge_times: Dict[str, float] = {}
        for series_key, series in self.store.items():
            if not isinstance(series_key, tuple) or len(series_key) != 2:
                continue  # the store's own overflow bucket
            _process, metric_key = series_key
            meta = self._meta.get(series_key)
            if meta is None:
                continue
            name, labels, kind = meta
            if kind == "counter":
                entry: Dict[str, Any] = {"kind": "counter",
                                         "value": series.total or 0}
            elif kind == "gauge":
                when = series.latest_time or 0.0
                if metric_key in totals and gauge_times.get(
                    metric_key, -1.0
                ) >= when:
                    continue
                gauge_times[metric_key] = when
                entry = {"kind": "gauge", "value": series.total}
            else:
                if series.total is None:
                    continue
                entry = dict(series.total)
                entry["kind"] = "histogram"
            if labels:
                entry["labels"] = dict(labels)
            existing = totals.get(metric_key)
            if existing is None or kind == "gauge":
                totals[metric_key] = entry
            else:
                totals[metric_key] = merge_snapshot_entries(existing, entry)
        channels: Dict[str, Dict[str, int]] = {}
        for metric_key, entry in totals.items():
            labels = entry.get("labels") or {}
            channel = labels.get("channel")
            if channel is None or entry.get("kind") != "counter":
                continue
            name = metric_key.split("{", 1)[0]
            channels.setdefault(channel, {})[name] = int(entry["value"])
        return {
            "schema": CLUSTER_STATE_SCHEMA,
            "time": float(now),
            "sources": {
                source.process: {
                    "worker": source.worker,
                    "boot": source.boot,
                    "last_seq": source.last_seq,
                    "last_seen": source.last_seen,
                    "stale": source.stale,
                    "deltas": source.deltas,
                    "duplicates": source.duplicates,
                    "dropped": source.dropped,
                }
                for source in self.sources.values()
            },
            "totals": totals,
            "channels": channels,
            "series": len(self.store),
            "ingested": self.ingested,
            "duplicates": self.duplicates,
        }


# ----------------------------------------------------------------------
# Minimal JSON-schema-subset validation (no external dependency)
# ----------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check(doc: Any, schema: Dict[str, Any], path: str,
           errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        kinds = expected if isinstance(expected, list) else [expected]
        ok = False
        for kind in kinds:
            if kind == "number":
                ok = ok or (
                    isinstance(doc, (int, float))
                    and not isinstance(doc, bool)
                )
            elif kind == "integer":
                ok = ok or (
                    isinstance(doc, int) and not isinstance(doc, bool)
                )
            else:
                python_type = _TYPES.get(kind)
                ok = ok or (
                    python_type is not None
                    and isinstance(doc, python_type)
                    and not (
                        python_type in (int, float)
                        and isinstance(doc, bool)
                    )
                )
        if not ok:
            errors.append(f"{path}: expected {expected}, got "
                          f"{type(doc).__name__}")
            return
    if "const" in schema and doc != schema["const"]:
        errors.append(f"{path}: expected constant {schema['const']!r}, "
                      f"got {doc!r}")
    if isinstance(doc, dict):
        for name in schema.get("required", ()):
            if name not in doc:
                errors.append(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():
            if name in doc:
                _check(doc[name], sub, f"{path}.{name}", errors)
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for name, value in doc.items():
                if name not in properties:
                    _check(value, additional, f"{path}.{name}", errors)
    if isinstance(doc, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(doc):
                _check(value, items, f"{path}[{index}]", errors)


def validate_cluster_state(
    doc: Dict[str, Any], schema: Dict[str, Any]
) -> List[str]:
    """Validate *doc* against a JSON-schema-subset *schema* (type /
    required / properties / additionalProperties / items / const).
    Returns a list of violations — empty means valid."""
    errors: List[str] = []
    _check(doc, schema, "$", errors)
    return errors
