"""Distributed trace context — the identity that crosses the wire.

A :class:`TraceContext` is the W3C-traceparent-style triple the morphing
middleware threads through a message's whole cross-process journey:

* a **128-bit trace id** naming the journey (one per published event),
* a **64-bit span id** naming the hop that forwarded it (the sender's
  publish span), and
* a **sampled** flag (reserved — every context the middleware creates
  today is sampled; the bit is carried so a future head-sampling policy
  needs no wire change).

On the wire the context travels as a fixed 26-byte block between the
PBIO header and the payload, announced by a header flag
(:data:`repro.pbio.buffer.FLAG_TRACE`), so a message published with
tracing disabled is **byte-identical** to one from a build without this
module::

    +------ trace-context block (26 bytes, big-endian) ------+
    | version u8 (=0) | flags u8 (bit0 = sampled) |
    | trace_id: 16 bytes | span_id: u64 |
    +--------------------------------------------------------+

In-process propagation is a per-thread *current context*
(:func:`current` / :class:`activate`); :mod:`repro.obs.tracing` stamps
every span recorded while a context is active with its trace id, and
:class:`repro.obs.metrics.Histogram` keeps the latest traceparent per
bucket as an exemplar.

This module is a leaf (stdlib + :mod:`repro.errors` only) so the wire
layer, the metrics registry and the tracer can all import it without
cycles.
"""

from __future__ import annotations

import random
import struct
import threading
from typing import Optional

from repro.errors import DecodeError

#: Trace-context block layout: version u8, flags u8, trace_id 16 bytes,
#: span_id u64 — all big-endian (the W3C traceparent convention).
_BLOCK = struct.Struct(">BB16sQ")
TRACE_BLOCK_SIZE = _BLOCK.size  # 26 bytes
TRACE_BLOCK_VERSION = 0

#: Block flag bit 0: the trace is sampled (recorders should keep spans).
_FLAG_SAMPLED = 0x01


class TraceContext:
    """One message's distributed trace identity.

    ``origin`` is a process-local (never serialized) marker: True on the
    process that *created* the context, until its first root span claims
    ``span_id`` as its own distributed id.  Contexts decoded off the wire
    always have ``origin=False``, so receive-side root spans parent to
    ``span_id`` instead of claiming it.
    """

    __slots__ = ("trace_id", "span_id", "sampled", "origin")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        sampled: bool = True,
        origin: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled
        self.origin = origin

    def traceparent(self) -> str:
        """The W3C ``traceparent`` rendering: ``00-<trace>-<span>-<flags>``."""
        flags = _FLAG_SAMPLED if self.sampled else 0
        return f"00-{self.trace_id:032x}-{self.span_id:016x}-{flags:02x}"

    def child(self, span_id: int) -> "TraceContext":
        """A context for a downstream hop: same trace, new hop span id."""
        return TraceContext(self.trace_id, span_id, self.sampled, origin=True)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.sampled))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.traceparent()})"


# ---------------------------------------------------------------------------
# Wire block codec
# ---------------------------------------------------------------------------


def encode_block(ctx: TraceContext) -> bytes:
    """The 26-byte wire form of *ctx*."""
    flags = _FLAG_SAMPLED if ctx.sampled else 0
    return _BLOCK.pack(
        TRACE_BLOCK_VERSION, flags, ctx.trace_id.to_bytes(16, "big"),
        ctx.span_id,
    )


def decode_block(data: bytes, offset: int = 0) -> TraceContext:
    """Decode a trace-context block at *offset*; raises
    :class:`~repro.errors.DecodeError` on truncation or an unknown block
    version (the contract every malformed-wire path shares)."""
    if len(data) - offset < TRACE_BLOCK_SIZE:
        raise DecodeError(
            f"truncated trace-context block: need {TRACE_BLOCK_SIZE} bytes "
            f"at offset {offset}, have {len(data) - offset}"
        )
    version, flags, trace_bytes, span_id = _BLOCK.unpack_from(data, offset)
    if version != TRACE_BLOCK_VERSION:
        raise DecodeError(f"unsupported trace-context version {version}")
    return TraceContext(
        trace_id=int.from_bytes(trace_bytes, "big"),
        span_id=span_id,
        sampled=bool(flags & _FLAG_SAMPLED),
        origin=False,
    )


# ---------------------------------------------------------------------------
# Id generation (seedable, so traced test runs are reproducible)
# ---------------------------------------------------------------------------

_rng = random.Random()
_rng_lock = threading.Lock()


def seed_ids(seed: int) -> None:
    """Re-seed the trace/span id generator (deterministic test runs)."""
    with _rng_lock:
        _rng.seed(seed)


def new_trace_id() -> int:
    with _rng_lock:
        value = _rng.getrandbits(128)
    return value or 1  # zero is the W3C invalid-trace sentinel


def new_span_id() -> int:
    with _rng_lock:
        value = _rng.getrandbits(64)
    return value or 1


def make_context(sampled: bool = True) -> TraceContext:
    """A fresh root context for a newly published message."""
    return TraceContext(new_trace_id(), new_span_id(), sampled, origin=True)


# ---------------------------------------------------------------------------
# In-process propagation (per-thread current context)
# ---------------------------------------------------------------------------

_local = threading.local()


def current() -> Optional[TraceContext]:
    """The thread's active trace context, or None."""
    return getattr(_local, "ctx", None)


class activate:
    """Context manager installing *ctx* as the thread's current trace
    context for the duration of the block.  ``activate(None)`` is a
    no-op passthrough, so call sites need no branch."""

    __slots__ = ("ctx", "_prev")

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self.ctx = ctx
        self._prev: Optional[TraceContext] = None

    def __enter__(self) -> Optional[TraceContext]:
        if self.ctx is not None:
            self._prev = getattr(_local, "ctx", None)
            _local.ctx = self.ctx
        return self.ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.ctx is not None:
            _local.ctx = self._prev
