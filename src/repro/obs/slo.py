"""Declarative SLO engine over collector series.

Rules are plain dicts (committed next to deployment config, shipped
over the wire, or built in tests) describing a **signal** computed from
the :class:`~repro.obs.collector.TelemetryCollector`'s series, a
comparison against a threshold, and the hysteresis that turns a noisy
instantaneous condition into a stable firing/resolved alert:

.. code-block:: python

    engine.add({
        "name": "retransmit-ratio",
        "signal": {"kind": "ratio",
                   "numerator": "net.reliable.retransmits",
                   "denominator": "net.reliable.sends",
                   "window": 10.0},
        "op": ">", "threshold": 0.20,
        "for": 2.0,            # breach must hold this long to fire
        "resolve_for": 2.0,    # ...and clear this long to resolve
        "resolve_factor": 0.8, # value hysteresis: clears below 80%
    })

Signal kinds:

``rate``
    Cluster-wide counter increments/second over ``window``.
``sum``
    Cluster-wide counter increments over ``window``.
``ratio``
    ``sum(numerator) / sum(denominator)`` over ``window`` (0 when the
    denominator is quiet — an idle system is never in breach).
``gauge``
    The latest gauge values across sources, combined with ``agg``
    (``sum`` | ``max`` | ``min`` | ``avg``).
``percentile``
    The ``q``-quantile of a histogram metric's merged window.
``burn_rate``
    Error-budget burn: ``(bad/total) / (1 - objective)`` over
    ``window``.  A threshold of 14 fires when the budget for a
    ``objective`` SLO burns 14× faster than sustainable — the classic
    multiwindow-burn-rate alert reduced to one window.

The state machine is ``ok → pending → firing → resolving → ok``:
a breach must hold ``for`` seconds before firing (transient spikes
never page), and a firing rule resolves only after the signal stays
below ``threshold * resolve_factor`` for ``resolve_for`` seconds (no
flapping at the boundary).  :meth:`SloEngine.evaluate` returns the
transitions it made so callers (the CLI, tests, a future pager) can
act on edges, not levels.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ObsError
from repro.obs import OBS

#: rule states
OK = "ok"
PENDING = "pending"
FIRING = "firing"
RESOLVING = "resolving"

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


def _signal_value(collector: Any, spec: Dict[str, Any], now: float) -> float:
    kind = spec.get("kind", "rate")
    window = float(spec.get("window", 60.0))
    labels = spec.get("labels")
    if kind == "rate":
        return collector.rate(spec["metric"], window, now, labels=labels)
    if kind == "sum":
        return float(sum(
            series.sum_over(window, now)
            for _, series in collector._matching(spec["metric"], labels)
            if series.kind == "counter"
        ))
    if kind == "ratio":
        denominator = _signal_value(
            collector,
            {"kind": "sum", "metric": spec["denominator"],
             "window": window, "labels": labels},
            now,
        )
        if denominator <= 0:
            return 0.0
        numerator = _signal_value(
            collector,
            {"kind": "sum", "metric": spec["numerator"],
             "window": window, "labels": labels},
            now,
        )
        return numerator / denominator
    if kind == "gauge":
        values = [
            series.total
            for _, series in collector._matching(spec["metric"], labels)
            if series.kind == "gauge" and series.total is not None
        ]
        if not values:
            return 0.0
        agg = spec.get("agg", "sum")
        if agg == "sum":
            return float(sum(values))
        if agg == "max":
            return float(max(values))
        if agg == "min":
            return float(min(values))
        if agg == "avg":
            return float(sum(values) / len(values))
        raise ObsError(f"unknown gauge aggregation {agg!r}")
    if kind == "percentile":
        return collector.percentile(
            spec["metric"], float(spec.get("q", 0.99)), window, now,
            labels=labels,
        )
    if kind == "burn_rate":
        objective = float(spec["objective"])
        budget = 1.0 - objective
        if budget <= 0:
            raise ObsError("burn_rate objective must be < 1.0")
        error_ratio = _signal_value(
            collector,
            {"kind": "ratio", "numerator": spec["bad"],
             "denominator": spec["total"], "window": window,
             "labels": labels},
            now,
        )
        return error_ratio / budget
    raise ObsError(f"unknown signal kind {kind!r}")


class SloRule:
    """One compiled rule plus its state machine."""

    __slots__ = ("name", "signal", "op", "threshold", "for_seconds",
                 "resolve_for", "resolve_factor", "description",
                 "state", "since", "last_value", "fired", "resolved")

    def __init__(self, spec: Dict[str, Any]) -> None:
        try:
            self.name = spec["name"]
            self.signal = dict(spec["signal"])
            self.threshold = float(spec["threshold"])
        except KeyError as missing:
            raise ObsError(f"SLO rule missing {missing.args[0]!r}")
        op = spec.get("op", ">")
        if op not in _OPS:
            raise ObsError(f"unknown SLO comparison {op!r}")
        self.op = op
        self.for_seconds = float(spec.get("for", 0.0))
        self.resolve_for = float(spec.get("resolve_for", 0.0))
        self.resolve_factor = float(spec.get("resolve_factor", 1.0))
        self.description = spec.get("description", "")
        self.state = OK
        self.since: Optional[float] = None
        self.last_value: float = 0.0
        self.fired = 0
        self.resolved = 0

    def _breached(self, value: float, firing: bool) -> bool:
        threshold = self.threshold
        if firing:
            # Value hysteresis: a firing rule needs the signal to drop
            # past resolve_factor * threshold before it counts as clear.
            threshold = threshold * self.resolve_factor
        return _OPS[self.op](value, threshold)

    def step(self, value: float, now: float) -> Optional[Dict[str, Any]]:
        """Advance the state machine; returns a transition dict when the
        externally-visible state flipped (fired or resolved)."""
        self.last_value = value
        previous = self.state
        holding = self.state in (FIRING, RESOLVING)
        breached = self._breached(value, firing=holding)
        if self.state == OK:
            if breached:
                self.state, self.since = PENDING, now
        if self.state == PENDING:
            if not breached:
                self.state, self.since = OK, None
            elif now - (self.since if self.since is not None
                        else now) >= self.for_seconds:
                self.state, self.since = FIRING, now
        elif self.state == FIRING:
            if not breached:
                self.state, self.since = RESOLVING, now
        if self.state == RESOLVING:
            if breached:
                self.state, self.since = FIRING, now
            elif now - (self.since if self.since is not None
                        else now) >= self.resolve_for:
                self.state, self.since = OK, None
        transitioned_to_firing = previous in (OK, PENDING) and \
            self.state in (FIRING, RESOLVING)
        transitioned_to_ok = previous in (FIRING, RESOLVING) and \
            self.state in (OK, PENDING)
        if transitioned_to_firing:
            self.fired += 1
            return {"rule": self.name, "from": "ok", "to": "firing",
                    "value": value, "time": now}
        if transitioned_to_ok:
            self.resolved += 1
            return {"rule": self.name, "from": "firing", "to": "resolved",
                    "value": value, "time": now}
        return None

    @property
    def firing(self) -> bool:
        return self.state in (FIRING, RESOLVING)


class SloEngine:
    """Evaluates a rule set against one collector's series."""

    def __init__(self, collector: Any, clock: Optional[Any] = None) -> None:
        self.collector = collector
        self.clock = clock
        self.rules: List[SloRule] = []
        self.evaluations = 0

    def add(self, spec: Dict[str, Any]) -> SloRule:
        rule = SloRule(spec)
        self.rules.append(rule)
        return rule

    def rule(self, name: str) -> SloRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise ObsError(f"no SLO rule named {name!r}")

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Evaluate every rule; returns the transitions (edges) made."""
        if now is None:
            if self.clock is None:
                raise ObsError("SloEngine.evaluate needs now= or a clock")
            now = self.clock.now
        self.evaluations += 1
        transitions: List[Dict[str, Any]] = []
        for rule in self.rules:
            value = _signal_value(self.collector, rule.signal, now)
            transition = rule.step(value, now)
            if transition is not None:
                transitions.append(transition)
                if OBS.enabled:
                    OBS.metrics.counter(
                        "obs.slo.transitions", rule=rule.name,
                        to=transition["to"],
                    ).inc()
        if OBS.enabled:
            OBS.metrics.counter("obs.slo.evaluations").inc()
            OBS.metrics.gauge("obs.slo.firing").set(
                sum(1 for rule in self.rules if rule.firing)
            )
        return transitions

    def firing(self) -> List[str]:
        return [rule.name for rule in self.rules if rule.firing]

    def status(self) -> List[Dict[str, Any]]:
        """One row per rule — what ``--top`` renders."""
        return [
            {
                "rule": rule.name,
                "state": FIRING if rule.firing else rule.state,
                "value": rule.last_value,
                "threshold": rule.threshold,
                "fired": rule.fired,
                "resolved": rule.resolved,
            }
            for rule in self.rules
        ]
