"""Distributed trace assembly — merge per-process spans into one story.

A single :class:`~repro.obs.tracing.SpanRecorder` only sees one
process's half of a message's journey.  This module is the other half
of distributed tracing: a :class:`TraceStore` that merges span
snapshots from many processes (tagged with a process name), a **flight
recorder** that reconstructs one message's ordered hop timeline —
publish, retransmits, decode, the transform chain, dispatch — with a
per-stage latency breakdown and error rollup, and exporters:

* :func:`TraceStore.to_chrome` — Chrome trace-event JSON, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; each
  process becomes a track,
* :meth:`FlightReport.hop_report` — a plain-text timeline for terminals
  and CI logs.

Cross-process linkage uses the span fields stamped by
:mod:`repro.obs.tracing`: the sender's publish span claims the wire
context's hop id as its ``dspan_id``; every receive-side root span
carries the same id as ``remote_parent``.  Matching the two joins the
processes' timelines without any shared span-id space.

The "processes" here are whatever the caller says they are — separate
OS processes feeding snapshots over JSON, or (as in the tests and the
demo) several :class:`~repro.echo.process.EChoProcess` instances inside
one interpreter, distinguished by the ``process`` attribute their spans
carry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.tracing import Span, SpanRecorder

#: Span names counted as retransmissions in flight reports.
RETRANSMIT_SPAN = "net.reliable.retransmit"


@dataclass
class StoredSpan:
    """One span in the store, tagged with its origin.

    ``source`` scopes ``span_id``/``parent_id`` (recorder-local counters
    that collide across recorders); ``process`` is the human name used
    for grouping and display.  Trace/hop ids are kept in their hex
    renderings, matching the JSON snapshot form."""

    source: int
    process: str
    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float
    attrs: Dict[str, Any]
    trace_id: Optional[str] = None
    dspan_id: Optional[str] = None
    remote_parent: Optional[str] = None

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def error(self) -> Optional[str]:
        value = self.attrs.get("error")
        return str(value) if value is not None else None


@dataclass
class Hop:
    """One process-local subtree of a trace: a root span plus everything
    recorded under it."""

    process: str
    root: StoredSpan
    spans: List[StoredSpan] = field(default_factory=list)

    @property
    def start(self) -> float:
        return self.root.start

    @property
    def errors(self) -> List[Tuple[str, str]]:
        """``(span name, error)`` pairs anywhere in this hop."""
        return [(s.name, s.error) for s in self.spans if s.error is not None]

    @property
    def retransmits(self) -> int:
        return sum(1 for s in self.spans if s.name == RETRANSMIT_SPAN)


@dataclass
class FlightReport:
    """A message's reconstructed journey: ordered hops, latency
    breakdown by span name, retransmit count, and error rollup."""

    trace_id: str
    hops: List[Hop]

    @property
    def spans(self) -> List[StoredSpan]:
        return [s for hop in self.hops for s in hop.spans]

    @property
    def retransmits(self) -> int:
        return sum(hop.retransmits for hop in self.hops)

    @property
    def errors(self) -> List[Tuple[str, str, str]]:
        """``(process, span name, error)`` across all hops."""
        return [
            (hop.process, name, err)
            for hop in self.hops
            for name, err in hop.errors
        ]

    @property
    def ok(self) -> bool:
        return not self.errors

    def breakdown(self) -> Dict[str, float]:
        """Total seconds spent per span name (queue wait, retransmit
        backoff, morph time etc. each show up under their span)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def span_names(self) -> List[str]:
        """Distinct span names in first-appearance (timeline) order."""
        seen: List[str] = []
        for span in sorted(self.spans, key=lambda s: s.start):
            if span.name not in seen:
                seen.append(span.name)
        return seen

    def hop_report(self) -> str:
        """The plain-text flight-recorder rendering."""
        if not self.hops:
            return f"trace {self.trace_id}: no spans recorded"
        base = min(hop.start for hop in self.hops)
        lines = [
            f"trace {self.trace_id}: {len(self.hops)} hop(s), "
            f"{len(self.spans)} span(s), {self.retransmits} retransmit(s)"
            + ("" if self.ok else f", {len(self.errors)} error(s)")
        ]
        for index, hop in enumerate(self.hops):
            root = hop.root
            flag = ""
            if hop.errors:
                kinds = sorted({err for _, err in hop.errors})
                flag = f"  !! {','.join(kinds)}"
            lines.append(
                f"  hop {index} [{hop.process}] {root.name}  "
                f"+{(root.start - base) * 1e3:.3f}ms  "
                f"dur={root.duration * 1e3:.3f}ms{flag}"
            )
            for span in sorted(hop.spans, key=lambda s: (s.start, s.span_id)):
                if span is root:
                    continue
                err = f"  !! {span.error}" if span.error else ""
                lines.append(
                    f"      {span.name}  +{(span.start - base) * 1e3:.3f}ms  "
                    f"dur={span.duration * 1e3:.3f}ms{err}"
                )
        lines.append("  breakdown:")
        totals = self.breakdown()
        width = max(len(name) for name in totals)
        for name in self.span_names():
            lines.append(f"    {name.ljust(width)}  {totals[name] * 1e3:.3f}ms")
        return "\n".join(lines)


class TraceStore:
    """Merged spans from many processes, queryable by trace id.

    Feed it live recorders (:meth:`add_recorder`) or JSON snapshots
    produced by :func:`repro.obs.export.build_snapshot`
    (:meth:`add_snapshot`) — e.g. collected from each node of a real
    deployment — then ask for a message's :meth:`flight` or export
    everything :meth:`to_chrome`."""

    def __init__(self) -> None:
        self._spans: List[StoredSpan] = []
        self._sources = 0

    def __len__(self) -> int:
        return len(self._spans)

    # -- ingestion ------------------------------------------------------

    def add_recorder(self, process: str, recorder: SpanRecorder) -> int:
        """Snapshot a live recorder's buffered spans under *process*
        (a span's own ``process`` attribute, when present, wins — several
        in-interpreter EChoProcesses share one recorder).  Returns the
        number of spans added."""
        return self._ingest(process, recorder.spans())

    def add_snapshot(self, process: str, snapshot: Dict[str, Any]) -> int:
        """Ingest a ``build_snapshot``-style dict (or just its ``spans``
        sub-dict) under *process*.  Returns the number of spans added."""
        spans = snapshot.get("spans", snapshot)
        flat: List[Dict[str, Any]] = []

        def walk(nodes: List[Dict[str, Any]]) -> None:
            for node in nodes:
                flat.append(node)
                walk(node.get("children", []))

        walk(spans.get("tree", []))
        return self._ingest(process, flat)

    def _ingest(
        self, process: str, spans: Iterable[Any]
    ) -> int:
        source = self._sources
        self._sources += 1
        added = 0
        for raw in spans:
            if isinstance(raw, Span):
                item = raw.to_dict()
            else:
                item = raw
            attrs = dict(item.get("attrs", {}))
            self._spans.append(
                StoredSpan(
                    source=source,
                    process=str(attrs.get("process", process)),
                    name=item["name"],
                    span_id=item["span_id"],
                    parent_id=item.get("parent_id"),
                    start=item["start"],
                    duration=item.get("duration", 0.0),
                    attrs=attrs,
                    trace_id=item.get("trace_id"),
                    dspan_id=item.get("dspan_id"),
                    remote_parent=item.get("remote_parent"),
                )
            )
            added += 1
        return added

    # -- queries --------------------------------------------------------

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, ordered by each trace's earliest span."""
        earliest: Dict[str, float] = {}
        for span in self._spans:
            if span.trace_id is None:
                continue
            prior = earliest.get(span.trace_id)
            if prior is None or span.start < prior:
                earliest[span.trace_id] = span.start
        return sorted(earliest, key=earliest.__getitem__)

    def spans_for(self, trace_id: str) -> List[StoredSpan]:
        """All spans of one trace, in start order."""
        return sorted(
            (s for s in self._spans if s.trace_id == trace_id),
            key=lambda s: (s.start, s.source, s.span_id),
        )

    def flight(self, trace_id: str) -> FlightReport:
        """Reconstruct one message's hop timeline.

        Hops are the trace's root spans (no recorded parent within the
        same source) with their descendants attached; hops are ordered
        by start time, and cross-process parentage (``remote_parent``
        matching an earlier hop's ``dspan_id``) falls out of that order
        because a child hop cannot start before its cause."""
        spans = self.spans_for(trace_id)
        by_key = {(s.source, s.span_id): s for s in spans}
        # map every span up to its root within its source
        root_of: Dict[Tuple[int, int], StoredSpan] = {}

        def resolve(span: StoredSpan) -> StoredSpan:
            key = (span.source, span.span_id)
            cached = root_of.get(key)
            if cached is not None:
                return cached
            parent = (
                by_key.get((span.source, span.parent_id))
                if span.parent_id is not None
                else None
            )
            root = span if parent is None else resolve(parent)
            root_of[key] = root
            return root

        hops: Dict[Tuple[int, int], Hop] = {}
        order: List[Tuple[int, int]] = []
        for span in spans:
            root = resolve(span)
            key = (root.source, root.span_id)
            hop = hops.get(key)
            if hop is None:
                hop = Hop(process=root.process, root=root)
                hops[key] = hop
                order.append(key)
            hop.spans.append(span)
        return FlightReport(
            trace_id=trace_id,
            hops=sorted((hops[k] for k in order), key=lambda h: h.start),
        )

    # -- Chrome trace-event export --------------------------------------

    def to_chrome(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """The store (or one trace of it) as a Chrome trace-event JSON
        object: complete (``"ph": "X"``) events on one track per
        process, timestamps rebased to the earliest span.  Load the
        serialized form in Perfetto or ``chrome://tracing``."""
        if trace_id is not None:
            spans = self.spans_for(trace_id)
        else:
            spans = sorted(
                self._spans, key=lambda s: (s.start, s.source, s.span_id)
            )
        pids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        base = min((s.start for s in spans), default=0.0)
        for span in spans:
            pid = pids.get(span.process)
            if pid is None:
                pid = len(pids) + 1
                pids[span.process] = pid
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "name": "process_name",
                        "args": {"name": span.process},
                    }
                )
            args: Dict[str, Any] = {
                str(k): v for k, v in sorted(span.attrs.items())
            }
            if span.trace_id is not None:
                args["trace_id"] = span.trace_id
            if span.dspan_id is not None:
                args["dspan_id"] = span.dspan_id
            if span.remote_parent is not None:
                args["remote_parent"] = span.remote_parent
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": 1,
                    "cat": "repro",
                    "name": span.name,
                    "ts": (span.start - base) * 1e6,
                    "dur": span.duration * 1e6,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(
        self, trace_id: Optional[str] = None, indent: int = 2
    ) -> str:
        return json.dumps(self.to_chrome(trace_id), indent=indent)


def flight(trace_id: str, store: Optional[TraceStore] = None) -> FlightReport:
    """Convenience: flight-record *trace_id* from *store*, or from the
    process-global recorder when no store is given."""
    if store is None:
        from repro.obs import OBS

        store = TraceStore()
        if isinstance(OBS.tracer, SpanRecorder):
            store.add_recorder("local", OBS.tracer)
    return store.flight(trace_id)
