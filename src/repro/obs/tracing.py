"""Tracing spans — nestable timed sections with attributes.

A *span* records one named section of work: wall-clock start, duration,
free-form attributes, and its parent span (maintained per thread, so
``with span(...)`` blocks nest naturally).  Finished spans land in a
bounded in-memory ring buffer — old spans fall off the back, the
recorder never grows without bound, and a long-running process can be
snapshotted at any time.

Two recorders share the interface:

* :class:`SpanRecorder` — the real thing, installed by
  :func:`repro.obs.enable`;
* :class:`NullRecorder` — the default.  Its :meth:`~NullRecorder.span`
  returns a shared no-op context manager, so tracing a disabled system
  costs one attribute lookup and one method call per site (and hot paths
  additionally guard on ``OBS.enabled``, skipping even that).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.obs import tracectx

DEFAULT_CAPACITY = 4096


@dataclass
class Span:
    """One finished (or in-flight) span.

    The three distributed-tracing fields are populated only for spans
    recorded while a :class:`~repro.obs.tracectx.TraceContext` was
    active: ``trace_id`` joins the span to its cross-process trace,
    ``dspan_id`` is set on the root span that *created* the context (the
    hop id the wire block carries downstream), and ``remote_parent``
    links a receive-side root span back to the sender's hop."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float  # seconds, time.perf_counter() clock
    duration: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[int] = None
    dspan_id: Optional[int] = None
    remote_parent: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            out["trace_id"] = f"{self.trace_id:032x}"
            if self.dspan_id is not None:
                out["dspan_id"] = f"{self.dspan_id:016x}"
            if self.remote_parent is not None:
                out["remote_parent"] = f"{self.remote_parent:016x}"
        return out


class _ActiveSpan:
    """Context manager for one span; records into its recorder on exit."""

    __slots__ = ("recorder", "span")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.recorder = recorder
        self.span = Span(
            name=name,
            span_id=next(recorder._ids),
            parent_id=None,
            start=0.0,
            attrs=attrs,
        )

    def set_attr(self, key: str, value: Any) -> None:
        """Attach an attribute discovered mid-span (e.g. the match score
        once MaxMatch finishes)."""
        self.span.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        stack = self.recorder._stack()
        span = self.span
        span.parent_id = stack[-1] if stack else None
        stack.append(span.span_id)
        ctx = tracectx.current()
        if ctx is not None and ctx.sampled:
            span.trace_id = ctx.trace_id
            if span.parent_id is None:
                if ctx.origin:
                    # this root span *is* the hop the context names; the
                    # wire block carries its id to the receiving process
                    span.dspan_id = ctx.span_id
                    ctx.origin = False
                else:
                    span.remote_parent = ctx.span_id
        span.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration = time.perf_counter() - self.span.start
        stack = self.recorder._stack()
        if stack and stack[-1] == self.span.span_id:
            stack.pop()
        if exc_type is not None:
            # mark the span as failed with the exception type (and a
            # bounded message) so exports and the flight recorder can
            # roll an error flag up the hop timeline
            self.span.attrs.setdefault("error", exc_type.__name__)
            if exc is not None:
                message = str(exc)
                if len(message) > 200:
                    message = message[:197] + "..."
                self.span.attrs.setdefault("error_message", message)
        self.recorder.record(self.span)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled-tracing recorder: every span is the same no-op."""

    capacity = 0
    dropped = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, span: Span) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


class SpanRecorder:
    """Bounded ring buffer of finished spans, with per-thread nesting."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("span ring buffer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.recorded_total = 0  # includes spans already evicted
        #: spans silently evicted from the ring by newer recordings —
        #: surfaced in snapshots and as the ``obs.trace.dropped`` counter
        #: so a truncated trace is distinguishable from a complete one
        self.dropped = 0

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        return _ActiveSpan(self, name, attrs)

    def record(self, span: Span) -> None:
        with self._lock:
            evicting = len(self._ring) == self.capacity
            self._ring.append(span)
            self.recorded_total += 1
            if evicting:
                self.dropped += 1
        if evicting:
            from repro.obs import OBS  # late: obs.__init__ imports us

            if OBS.enabled:
                OBS.metrics.counter("obs.trace.dropped").inc()

    def spans(self) -> List[Span]:
        """Buffered spans, oldest first (completion order)."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- tree reconstruction -------------------------------------------

    def tree(self) -> List[Dict[str, Any]]:
        """Nest the buffered spans into ``{span..., "children": [...]}``
        dicts.  Children whose parent has been evicted from the ring (or
        is still open) surface as roots — the tree is always complete
        over what the buffer holds."""
        spans = self.spans()
        nodes: Dict[int, Dict[str, Any]] = {}
        for span in spans:
            node = span.to_dict()
            node["children"] = []
            nodes[span.span_id] = node
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        # children completed before their parents (inner spans exit
        # first); order each level by start time for readable output
        def sort_level(level: List[Dict[str, Any]]) -> None:
            level.sort(key=lambda n: n["start"])
            for item in level:
                sort_level(item["children"])

        sort_level(roots)
        return roots


def find_spans(tree: List[Dict[str, Any]], name: str) -> List[Dict[str, Any]]:
    """All nodes named *name* anywhere in a :meth:`SpanRecorder.tree`
    result (testing/reporting helper)."""
    found: List[Dict[str, Any]] = []
    for node in tree:
        if node["name"] == name:
            found.append(node)
        found.extend(find_spans(node["children"], name))
    return found
