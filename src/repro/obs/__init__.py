"""repro.obs — observability for the morphing middleware.

The paper's evaluation is a breakdown of *where time goes* — encode vs.
decode vs. MaxMatch vs. dynamic code generation vs. conversion-cache
hits.  This package is the measurement substrate that makes the same
breakdown available at runtime:

* **metrics** — a lock-safe :class:`~repro.obs.metrics.Registry` of
  counters, gauges and fixed-bucket histograms (p50/p95/p99),
* **tracing** — nestable ``span(name, **attrs)`` context managers
  recording into a bounded ring buffer
  (:class:`~repro.obs.tracing.SpanRecorder`),
* **exporters** — JSON snapshots, Prometheus text format, and a
  ``python -m repro.obs`` CLI that pretty-prints a live snapshot,
* **the telemetry plane** — a per-process
  :class:`~repro.obs.agent.TelemetryAgent` shipping registry deltas as
  PBIO events on a reserved channel, the
  :class:`~repro.obs.collector.TelemetryCollector` aggregating them
  into fixed-memory :mod:`~repro.obs.timeseries` with a stable
  ``cluster_state()`` contract, and a declarative
  :class:`~repro.obs.slo.SloEngine` firing/resolving alerts over the
  collected series (``python -m repro.obs --top`` renders the live
  cluster view).

Observability is **off by default** and built to cost almost nothing
when off: every instrumentation site in the hot paths guards on
``OBS.enabled`` (one attribute load and a branch), and the default
tracer is a :class:`~repro.obs.tracing.NullRecorder` whose spans are a
shared no-op object.  Typical use::

    from repro import obs

    obs.enable()
    ... run traffic ...
    print(obs.render_text())            # tables, via bench.reporting
    print(obs.to_prometheus())          # scrape format
    data = obs.to_json()                # snapshot as a JSON string
    obs.disable()
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_LABEL_LIMIT,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    OVERFLOW_LABEL,
    RATIO_BUCKETS,
    Registry,
)
from repro.obs.tracectx import (
    TRACE_BLOCK_SIZE,
    TraceContext,
    activate,
    current,
    make_context,
    seed_ids,
)
from repro.obs.tracing import (
    DEFAULT_CAPACITY,
    NullRecorder,
    Span,
    SpanRecorder,
    find_spans,
)
from repro.obs.distributed import FlightReport, TraceStore, flight

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_LABEL_LIMIT",
    "FlightReport",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "NullRecorder",
    "OBS",
    "OVERFLOW_LABEL",
    "RATIO_BUCKETS",
    "Registry",
    "Span",
    "SpanRecorder",
    "TRACE_BLOCK_SIZE",
    "TraceContext",
    "TraceStore",
    "activate",
    "current",
    "disable",
    "enable",
    "find_spans",
    "flight",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "make_context",
    "render_text",
    "seed_ids",
    "snapshot",
    "span",
    "to_json",
    "to_prometheus",
    # telemetry plane (lazily imported — see __getattr__ below)
    "CLUSTER_STATE_SCHEMA",
    "SeriesStore",
    "SloEngine",
    "SloRule",
    "TELEMETRY_CHANNEL",
    "TelemetryAgent",
    "TelemetryCollector",
    "TimeSeries",
    "validate_cluster_state",
]

#: Telemetry-plane exports resolve lazily (PEP 562): the agent pulls in
#: repro.pbio, whose instrumentation imports this package — importing it
#: eagerly here would be a cycle.
_TELEMETRY_EXPORTS = {
    "CLUSTER_STATE_SCHEMA": "repro.obs.protocol",
    "SeriesStore": "repro.obs.timeseries",
    "SloEngine": "repro.obs.slo",
    "SloRule": "repro.obs.slo",
    "TELEMETRY_CHANNEL": "repro.obs.protocol",
    "TelemetryAgent": "repro.obs.agent",
    "TelemetryCollector": "repro.obs.collector",
    "TimeSeries": "repro.obs.timeseries",
    "validate_cluster_state": "repro.obs.collector",
}


def __getattr__(name: str) -> Any:
    module_name = _TELEMETRY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


class ObsState:
    """The process-wide observability switchboard.

    Instrumented call sites read three attributes:

    ``enabled``
        The master flag.  Hot paths check it before doing any work, so a
        disabled system pays one attribute load and a branch per site.
    ``metrics``
        The active :class:`Registry`.  Always present (so cold paths may
        record unconditionally if they want to), but conventionally only
        written when ``enabled``.
    ``tracer``
        A :class:`SpanRecorder` when enabled, :class:`NullRecorder`
        otherwise.
    """

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = Registry()
        self.tracer: "SpanRecorder | NullRecorder" = NullRecorder()


#: The singleton instrumented modules import.
OBS = ObsState()


def enable(
    registry: Optional[Registry] = None,
    capacity: int = DEFAULT_CAPACITY,
) -> ObsState:
    """Turn observability on, optionally attaching an external *registry*
    (the bench harness passes its own so each figure can be snapshotted
    and reset in isolation).  Returns the active state."""
    if registry is not None:
        OBS.metrics = registry
    if not isinstance(OBS.tracer, SpanRecorder) or OBS.tracer.capacity != capacity:
        OBS.tracer = SpanRecorder(capacity=capacity)
    OBS.enabled = True
    return OBS


def disable(reset: bool = False) -> None:
    """Turn observability off.  With ``reset=True`` also drop all
    recorded metrics and spans (a fresh registry and a NullRecorder)."""
    OBS.enabled = False
    if reset:
        OBS.metrics = Registry()
        OBS.tracer = NullRecorder()


def is_enabled() -> bool:
    return OBS.enabled


def get_registry() -> Registry:
    return OBS.metrics


def get_tracer() -> "SpanRecorder | NullRecorder":
    return OBS.tracer


def span(name: str, **attrs: Any):
    """Convenience: a span on the active tracer (no-op when disabled)."""
    return OBS.tracer.span(name, **attrs)


# -- exporters (re-exported late to avoid import cycles at call sites) --

def snapshot() -> dict:
    from repro.obs.export import build_snapshot

    return build_snapshot(OBS.metrics, OBS.tracer)


def to_json(indent: int = 2) -> str:
    from repro.obs.export import to_json as _to_json

    return _to_json(OBS.metrics, OBS.tracer, indent=indent)


def to_prometheus() -> str:
    from repro.obs.export import to_prometheus as _to_prometheus

    return _to_prometheus(OBS.metrics)


def render_text() -> str:
    from repro.obs.export import render_text as _render_text

    return _render_text(OBS.metrics, OBS.tracer)
