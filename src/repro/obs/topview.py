"""The ``--top`` cluster view: demo fleet, live table rendering, smoke.

This module holds the pieces ``python -m repro.obs`` composes for the
telemetry-plane commands:

* :func:`build_cluster` — a deterministic 3-worker sharded fabric with a
  per-worker :class:`~repro.obs.agent.TelemetryAgent` piggy-backed on
  worker heartbeats, one umbrella agent shipping the process-global
  registry (the built-in ``pbio.*`` / ``morph.*`` / ``net.*`` /
  ``fabric.*`` instruments), a subscribing
  :class:`~repro.obs.collector.TelemetryCollector`, and an
  :class:`~repro.obs.slo.SloEngine` with a retransmit-ratio rule.
* :func:`render_top` — the fixed-width cluster table (sources, event
  rates, morph route hit ratio, retransmit %, journal lag, projection
  bytes saved, SLO states).
* :func:`telemetry_smoke` — the CI gate (see ``--telemetry-smoke``).

Everything runs on the simulated transport at virtual time, so the demo
and the smoke are exactly reproducible for a given seed.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.fabric.journal import JournalStore
from repro.fabric.membership import EventFabric
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.agent import TelemetryAgent
from repro.obs.collector import TelemetryCollector, validate_cluster_state
from repro.obs.metrics import Registry
from repro.obs.slo import SloEngine
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

#: The committed contract the ``--cluster-export`` document must honor.
CLUSTER_STATE_SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))),
    "docs", "cluster_state.schema.json",
)

EVENT_FMT = IOFormat(
    "DemoEvent",
    [IOField("value", "integer"), IOField("tag", "string")],
    version="1.0",
)

#: The demo SLO: reliable-layer retransmit ratio over a 10 s window.
RETRANSMIT_RULE = {
    "name": "retransmit-ratio",
    "signal": {
        "kind": "ratio",
        "numerator": "net.reliable.retries",
        "denominator": "net.reliable.sends",
        "window": 10.0,
    },
    "op": ">",
    "threshold": 0.20,
    "for": 0.5,
    "resolve_for": 0.5,
    "resolve_factor": 0.75,
    "description": "reliable-layer retransmits exceed 20% of sends",
}


class DemoCluster:
    """Handles to every moving part of the demo fleet."""

    def __init__(self) -> None:
        self.network: Optional[Network] = None
        self.fabric: Optional[EventFabric] = None
        self.workers: List[Any] = []
        self.clients: List[Any] = []
        self.publisher: Optional[Any] = None
        self.local_registries: Dict[str, Registry] = {}
        self.agents: List[TelemetryAgent] = []
        self.collector: Optional[TelemetryCollector] = None
        self.engine: Optional[SloEngine] = None
        self.channels: List[str] = []
        self.transitions: List[Dict[str, Any]] = []

    def expected_channel_totals(self) -> Dict[str, int]:
        """Sum of the workers' *local* echo counters per channel — the
        ground truth the collector must converge to."""
        totals: Dict[str, int] = {}
        for registry in self.local_registries.values():
            for key, entry in registry.snapshot().items():
                if not key.startswith("echo.events{"):
                    continue
                channel = entry["labels"]["channel"]
                totals[channel] = totals.get(channel, 0) + entry["value"]
        return totals

    def flush(self, settle: float = 5.0) -> None:
        """Stop the periodic machinery, take one final scrape per agent,
        and drain the network so every delta lands in the collector."""
        assert self.network is not None
        for worker in self.workers:
            worker.stop_heartbeats()
        for agent in self.agents:
            agent.stop()
            agent.scrape(self.network.now)
        self.network.run(max_time=self.network.now + settle)


def build_cluster(
    seed: int = 11,
    num_workers: int = 3,
    num_channels: int = 6,
    scrape_interval: float = 0.05,
    heartbeat_interval: float = 0.025,
    lease_timeout: float = 0.5,
    loss_rate: float = 0.0,
    slo_rules: Optional[List[Dict[str, Any]]] = None,
) -> DemoCluster:
    """Assemble the demo fleet (no traffic yet — call :func:`drive`)."""
    cluster = DemoCluster()
    network = Network(
        seed=seed,
        default_link=LinkSpec(latency=0.0005, loss_rate=loss_rate),
    )
    cluster.network = network
    registry = FormatRegistry()
    registry.register(EVENT_FMT)
    fabric = EventFabric(
        network,
        registry=registry,
        num_shards=8,
        reliable=True,
        journal=JournalStore(compact_every=64),
        lease_timeout=lease_timeout,
    )
    cluster.fabric = fabric
    cluster.channels = [f"ch-{i}" for i in range(num_channels)]

    collector = TelemetryCollector(clock=network, stale_after=3 * scrape_interval)
    collector.attach_directory(fabric.directory)
    cluster.collector = collector
    engine = SloEngine(collector, clock=network)
    for spec in (slo_rules if slo_rules is not None else [RETRANSMIT_RULE]):
        engine.add(spec)
    cluster.engine = engine

    for index in range(num_workers):
        worker_address = f"w{index + 1}"
        worker = fabric.add_worker(worker_address)
        cluster.workers.append(worker)
        local = Registry()
        client = fabric.client(f"app-{worker_address}")
        cluster.clients.append(client)
        cluster.local_registries[client.address] = local

        def _handler(channel_id, publisher, seq, record, _local=local):
            _local.counter("echo.events", channel=channel_id).inc()

        for channel_index, channel_id in enumerate(cluster.channels):
            if channel_index % num_workers == index:
                client.subscribe(channel_id, EVENT_FMT, _handler)
        agent = TelemetryAgent.over_fabric(
            client,
            registry=local,
            worker=worker_address,
            interval=scrape_interval,
        )
        cluster.agents.append(agent)
        worker.attach_telemetry(agent)
        worker.start_heartbeats(heartbeat_interval)

    # The umbrella agent ships the process-global registry — the
    # built-in instruments (pbio/morph/net/fabric) every component in
    # this OS process records into.
    monitor = fabric.client("monitor")
    umbrella = TelemetryAgent.over_fabric(
        monitor,
        registry=obs.get_registry(),
        process="fabric-global",
        interval=scrape_interval,
    )
    cluster.agents.append(umbrella)
    umbrella.start(network)
    collector.subscribe_fabric(monitor)
    cluster.publisher = fabric.client("pub")
    network.run(max_time=network.now + 0.1)
    return cluster


def drive(
    cluster: DemoCluster,
    seconds: float = 2.0,
    events_per_step: int = 4,
    step: float = 0.05,
    on_step: Optional[Callable[[DemoCluster, float], None]] = None,
) -> None:
    """Publish round-robin traffic for *seconds* of virtual time while
    the heartbeat/scrape machinery runs, evaluating the SLO engine (and
    the optional *on_step* hook) once per step."""
    assert cluster.network is not None and cluster.publisher is not None
    network = cluster.network
    counter = 0
    deadline = network.now + seconds
    while network.now < deadline:
        for _ in range(events_per_step):
            channel = cluster.channels[counter % len(cluster.channels)]
            cluster.publisher.publish(
                channel,
                EVENT_FMT,
                EVENT_FMT.make_record(value=counter, tag=f"t{counter % 5}"),
            )
            counter += 1
        network.run(max_time=network.now + step)
        if cluster.engine is not None:
            cluster.transitions.extend(cluster.engine.evaluate(network.now))
        if on_step is not None:
            on_step(cluster, network.now)


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------

def _ratio(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def _total_matching(state: Dict[str, Any], name: str) -> float:
    """Sum of counter totals whose metric name is *name* (any labels)."""
    total = 0.0
    for key, entry in state["totals"].items():
        if key.split("{", 1)[0] == name and entry.get("kind") == "counter":
            total += entry["value"]
    return total


def _gauge_sum(state: Dict[str, Any], name: str) -> float:
    total = 0.0
    for key, entry in state["totals"].items():
        if (
            key.split("{", 1)[0] == name
            and entry.get("kind") == "gauge"
            and entry.get("value") is not None
        ):
            total += entry["value"]
    return total


def render_top(
    collector: TelemetryCollector,
    engine: Optional[SloEngine] = None,
    now: Optional[float] = None,
    rate_window: float = 1.0,
) -> str:
    """The cluster view: one sources table, one channels table, one
    cluster-health line, and the SLO states."""
    from repro.bench.reporting import format_table

    state = collector.cluster_state(now)
    now = state["time"]
    sections: List[str] = [
        f"cluster @ t={now:.3f}s — {len(state['sources'])} source(s), "
        f"{state['series']} series, {state['ingested']} delta(s) ingested, "
        f"{state['duplicates']} duplicate(s) suppressed"
    ]

    rows = []
    for process, source in sorted(state["sources"].items()):
        rate = sum(
            series.rate(rate_window, now)
            for (series_process, _), series in collector._matching(
                "echo.events"
            )
            if series_process == process and series.kind == "counter"
        )
        rows.append((
            process,
            source["worker"] or "-",
            source["boot"],
            source["last_seq"],
            "STALE" if source["stale"] else "live",
            f"{rate:.1f}/s",
            source["deltas"],
            source["duplicates"],
        ))
    sections.append(format_table(
        ["process", "worker", "boot", "seq", "state", "events", "deltas",
         "dups"],
        rows,
    ))

    channel_rows = [
        (channel, *(f"{name}={value}" for name, value in sorted(
            counters.items()
        )),)
        for channel, counters in sorted(state["channels"].items())
    ]
    if channel_rows:
        width = max(len(row) for row in channel_rows)
        headers = ["channel"] + [f"total {i}" for i in range(1, width)]
        sections.append(format_table(
            headers,
            [tuple(row) + ("",) * (width - len(row)) for row in channel_rows],
        ))

    route_hits = _total_matching(state, "morph.receiver.cache_hits")
    route_misses = _total_matching(state, "morph.receiver.cache_misses")
    retries = _total_matching(state, "net.reliable.retries")
    sends = _total_matching(state, "net.reliable.sends")
    journal_lag = _gauge_sum(state, "fabric.journal.entries_since_snapshot")
    bytes_saved = _total_matching(state, "net.projection.bytes_saved_est")
    sections.append(
        "morph route hits: "
        + _ratio(route_hits, route_hits + route_misses)
        + f"  retransmit: {_ratio(retries, sends)}"
        + f"  journal lag: {journal_lag:.0f} entr(ies)"
        + f"  projection saved: {bytes_saved:.0f} B"
    )

    if engine is not None and engine.rules:
        sections.append(format_table(
            ["slo rule", "state", "value", "threshold", "fired", "resolved"],
            [
                (
                    row["rule"], row["state"], f"{row['value']:.3f}",
                    f"{row['threshold']:.3f}", row["fired"], row["resolved"],
                )
                for row in engine.status()
            ],
        ))
    return "\n\n".join(sections)


# ---------------------------------------------------------------------
# The CI smoke
# ---------------------------------------------------------------------

def _wire_log(network: Network) -> List[Tuple[str, str, bytes]]:
    """Capture every send's exact bytes by wrapping ``network.send``."""
    log: List[Tuple[str, str, bytes]] = []
    original = network.send

    def _tap(source: str, destination: str, data: bytes) -> float:
        log.append((source, destination, bytes(data)))
        return original(source, destination, data)

    network.send = _tap  # type: ignore[method-assign]
    return log


def _echo_exchange(with_idle_agent: bool) -> List[Tuple[str, str, bytes]]:
    """One small deterministic echo exchange; optionally with a
    TelemetryAgent constructed (but never started).  Returns the wire
    log — the two variants must be byte-identical."""
    from repro.echo.process import EChoProcess

    network = Network(seed=3)
    log = _wire_log(network)
    registry = FormatRegistry()
    registry.register(EVENT_FMT)
    producer = EChoProcess(network, "producer", registry)
    consumer = EChoProcess(network, "consumer", registry)
    producer.create_channel("events")
    consumer.open_channel("events", "producer", as_sink=True)
    network.run()
    consumer.subscribe("events", EVENT_FMT, lambda record: None)
    if with_idle_agent:
        TelemetryAgent.over_echo(
            producer, registry=Registry(), worker="w0", boot=1,
        )
    for index in range(10):
        producer.submit(
            "events",
            EVENT_FMT,
            EVENT_FMT.make_record(value=index, tag=f"t{index}"),
        )
    network.run()
    return log


def telemetry_smoke(
    export_path: Optional[str] = None, verbose: bool = True
) -> List[str]:
    """The ``--telemetry-smoke`` gate.  Returns failures (empty = pass).

    1. A 3-worker fabric with 50 ms agents over a 3 % lossy reliable
       transport converges: collector per-channel totals equal the sum
       of the workers' local echo counters (exactly-once telemetry).
    2. An injected 60 % loss window fires the retransmit-ratio SLO;
       healing the link resolves it.
    3. The ``cluster_state()`` export validates against the committed
       JSON schema.
    4. The wire stays byte-identical when the agent exists but is
       disabled (never started).
    """
    failures: List[str] = []
    obs.disable(reset=True)
    obs.enable()
    cluster = build_cluster(scrape_interval=0.05, loss_rate=0.03)
    assert cluster.network is not None and cluster.collector is not None
    assert cluster.engine is not None

    # Phase 1: healthy traffic (modest loss, reliable layer recovers).
    drive(cluster, seconds=1.5)
    # Phase 2: heavy loss — the retransmit ratio must breach and fire.
    cluster.network.default_link = LinkSpec(latency=0.0005, loss_rate=0.60)
    drive(cluster, seconds=1.5)
    # Phase 3: heal the link; the rule must resolve.
    cluster.network.default_link = LinkSpec(latency=0.0005, loss_rate=0.0)
    drive(cluster, seconds=12.0, events_per_step=2, step=0.2)
    cluster.flush()

    state = cluster.collector.cluster_state()
    expected = cluster.expected_channel_totals()
    observed = {
        channel: counters["echo.events"]
        for channel, counters in state["channels"].items()
        if "echo.events" in counters
    }
    if expected != observed:
        failures.append(
            f"channel totals diverged: expected {expected}, "
            f"collector has {observed}"
        )
    if not expected or not sum(expected.values()):
        failures.append("no events delivered — demo workload is broken")
    stale = [p for p, s in state["sources"].items() if s["stale"]]
    if stale:
        failures.append(f"sources unexpectedly stale after flush: {stale}")

    fired = [t for t in cluster.transitions if t["to"] == "firing"]
    resolved = [t for t in cluster.transitions if t["to"] == "resolved"]
    if not fired:
        failures.append("retransmit-ratio SLO never fired under 60% loss")
    if not resolved:
        failures.append("retransmit-ratio SLO never resolved after healing")
    if cluster.engine.firing():
        failures.append(
            f"rules still firing after healing: {cluster.engine.firing()}"
        )

    try:
        with open(CLUSTER_STATE_SCHEMA_PATH, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
    except OSError as exc:
        failures.append(f"cannot read committed schema: {exc}")
    else:
        document = json.loads(json.dumps(state))  # must be JSON-clean
        for violation in validate_cluster_state(document, schema):
            failures.append(f"cluster_state schema violation: {violation}")
        if export_path is not None:
            with open(export_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)

    if verbose:
        print(render_top(cluster.collector, cluster.engine))
        print()

    obs.disable(reset=True)
    baseline = _echo_exchange(with_idle_agent=False)
    with_agent = _echo_exchange(with_idle_agent=True)
    if baseline != with_agent:
        failures.append(
            "wire not byte-identical with a disabled agent: "
            f"{len(baseline)} vs {len(with_agent)} sends"
        )
    return failures
