"""Exporters — JSON snapshot, Prometheus text format, and text tables.

Three consumers, three formats:

* :func:`build_snapshot` / :func:`to_json` — the machine-readable form
  the bench harness writes next to its timing JSON, so perf PRs can cite
  per-stage numbers;
* :func:`to_prometheus` — the scrape format (``# TYPE`` comments,
  ``_count``/``_sum``/``_bucket{le=...}`` series for histograms);
* :func:`render_text` — fixed-width tables for humans, rendered with the
  same :func:`repro.bench.reporting.format_table` the benchmark harness
  prints figures with.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.tracing import NullRecorder, SpanRecorder

Tracer = Union[SpanRecorder, NullRecorder]


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def build_snapshot(registry: Registry, tracer: Tracer) -> Dict[str, Any]:
    """One JSON-ready dict covering metrics and the span ring buffer."""
    snap: Dict[str, Any] = {"metrics": registry.snapshot()}
    if isinstance(tracer, SpanRecorder):
        snap["spans"] = {
            "capacity": tracer.capacity,
            "recorded_total": tracer.recorded_total,
            "buffered": len(tracer.spans()),
            "dropped": tracer.dropped,
            "tree": tracer.tree(),
        }
    else:
        snap["spans"] = {"capacity": 0, "recorded_total": 0, "buffered": 0,
                         "dropped": 0, "tree": []}
    return snap


def to_json(registry: Registry, tracer: Tracer, indent: int = 2) -> str:
    return json.dumps(build_snapshot(registry, tracer), indent=indent)


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """Dots (our namespace separator) become underscores."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _merge_labels(suffix_items, extra: str = "") -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in suffix_items)
    if extra:
        inner = f"{inner},{extra}" if inner else extra
    return "{" + inner + "}" if inner else ""


def to_prometheus(registry: Registry) -> str:
    """Render the registry in the Prometheus exposition text format."""
    by_name: Dict[str, List[Any]] = {}
    for instrument in registry.instruments():
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: List[str] = []
    for name in sorted(by_name):
        instruments = by_name[name]
        prom = _prom_name(name)
        kind = instruments[0].kind
        lines.append(f"# TYPE {prom} {kind}")
        for instrument in instruments:
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{prom}{_merge_labels(instrument.labels)} "
                    f"{_prom_value(float(instrument.value))}"
                )
            elif isinstance(instrument, Histogram):
                snap = instrument.snapshot()
                cumulative = 0
                for bucket in snap["buckets"]:
                    cumulative += bucket["count"]
                    le = "+Inf" if bucket["le"] is None else _prom_value(
                        bucket["le"]
                    )
                    labels = _merge_labels(instrument.labels, f'le="{le}"')
                    lines.append(f"{prom}_bucket{labels} {cumulative}")
                labels = _merge_labels(instrument.labels)
                lines.append(f"{prom}_count{labels} {snap['count']}")
                lines.append(f"{prom}_sum{labels} {_prom_value(snap['sum'])}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Text tables
# ---------------------------------------------------------------------------


def render_text(registry: Registry, tracer: Tracer) -> str:
    """Human-readable tables: counters/gauges, histograms, span tree."""
    from repro.bench.reporting import format_table

    sections: List[str] = []
    scalars = [
        i for i in registry.instruments() if isinstance(i, (Counter, Gauge))
    ]
    if scalars:
        rows = [
            (i.name + i.label_suffix(), i.kind, _prom_value(float(i.value)))
            for i in scalars
        ]
        sections.append(
            "== metrics ==\n" + format_table(["name", "kind", "value"], rows)
        )
    histograms = [
        i for i in registry.instruments() if isinstance(i, Histogram)
    ]
    if histograms:
        rows = [
            (
                h.name + h.label_suffix(),
                h.count,
                f"{h.mean:.3g}",
                f"{h.p50:.3g}",
                f"{h.p95:.3g}",
                f"{h.p99:.3g}",
                f"{h.sum:.3g}",
            )
            for h in histograms
        ]
        sections.append(
            "== histograms ==\n"
            + format_table(
                ["name", "count", "mean", "p50", "p95", "p99", "sum"], rows
            )
        )
    if isinstance(tracer, SpanRecorder):
        rows = []

        def walk(nodes: List[Dict[str, Any]], depth: int) -> None:
            for node in nodes:
                attrs = " ".join(
                    f"{k}={v}" for k, v in sorted(node["attrs"].items())
                )
                rows.append(
                    (
                        "  " * depth + node["name"],
                        f"{node['duration'] * 1e3:.3f}",
                        attrs,
                    )
                )
                walk(node["children"], depth + 1)

        walk(tracer.tree(), 0)
        if rows:
            # left-align the span column (format_table right-aligns, which
            # would swallow the nesting indentation)
            width = max(len(r[0]) for r in rows)
            rows = [(name.ljust(width), ms, attrs) for name, ms, attrs in rows]
            sections.append(
                "== spans ==\n"
                + format_table(["span", "ms", "attributes"], rows)
            )
    if not sections:
        return "(no observability data recorded)"
    return "\n\n".join(sections)
