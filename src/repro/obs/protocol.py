"""Telemetry wire protocol — metric deltas as first-class PBIO events.

The telemetry plane dogfoods the paper's thesis: a metrics scrape is
just another evolving data exchange, so it ships as a versioned PBIO
record on a reserved channel and relies on the *morphing* layer — not
out-of-band coordination — when agent and collector disagree on the
schema.

* **v1.0** is the baseline record: source identity (``process`` /
  ``worker``), the restart-detection pair (``boot`` + ``seq``), the
  scrape timestamp, and the metric delta payload.  The delta itself
  rides as JSON inside a string field — like the fabric's handoff state,
  it is control-plane metadata whose shape (arbitrary metric names) does
  not fit a fixed IOFormat, and keeping it opaque means the *envelope*
  can evolve without touching the payload encoding.
* **v2.0** adds the scrape ``interval`` and the ``dropped`` count from
  the agent's cardinality guard.  ``TELEMETRY_V2_TO_V1`` is the retro
  transform: a collector still subscribing with v1.0 receives v2.0
  agents' records morphed down, exactly the ChannelOpenResponse story
  applied to monitoring traffic.

``seq`` is per-``boot`` monotonic and deltas are mergeable, so a
collector that dedupes on ``(process, boot, seq)`` gets exactly-once
aggregation over at-least-once transports — retransmitted deltas are
idempotent by construction.
"""

from __future__ import annotations

from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec

#: The reserved channel telemetry deltas are published on (echo channel
#: id and fabric channel id alike).
TELEMETRY_CHANNEL = "__telemetry__"

#: The ``cluster_state()`` JSON contract version (see
#: :meth:`repro.obs.collector.TelemetryCollector.cluster_state`).
CLUSTER_STATE_SCHEMA = "repro.telemetry/1"

TELEMETRY_V1 = IOFormat(
    "TelemetryDelta",
    [
        IOField("process", "string"),
        IOField("worker", "string"),
        IOField("boot", "unsigned", 8),
        IOField("seq", "unsigned", 8),
        IOField("time", "float", 8),
        IOField("metrics", "string"),
    ],
    version="1.0",
)

TELEMETRY_V2 = IOFormat(
    "TelemetryDelta",
    [
        IOField("process", "string"),
        IOField("worker", "string"),
        IOField("boot", "unsigned", 8),
        IOField("seq", "unsigned", 8),
        IOField("time", "float", 8),
        IOField("interval", "float", 8),
        IOField("dropped", "unsigned", 4),
        IOField("metrics", "string"),
    ],
    version="2.0",
)

TELEMETRY_V2_TO_V1_CODE = """
old.process = new.process;
old.worker = new.worker;
old.boot = new.boot;
old.seq = new.seq;
old.time = new.time;
old.metrics = new.metrics;
"""

TELEMETRY_V2_TO_V1 = TransformSpec(
    source=TELEMETRY_V2,
    target=TELEMETRY_V1,
    code=TELEMETRY_V2_TO_V1_CODE,
    description="TelemetryDelta 2.0 -> 1.0 (drop interval/dropped)",
)

TELEMETRY_BY_VERSION = {
    "1.0": TELEMETRY_V1,
    "2.0": TELEMETRY_V2,
}


def register_telemetry_protocol(
    registry: FormatRegistry, version: str = "2.0"
) -> None:
    """Register the telemetry record format a process of *version*
    publishes (idempotent), plus the retro transform for v2.0 writers so
    v1.0 collectors keep decoding."""
    fmt = TELEMETRY_BY_VERSION[version]
    if fmt not in registry:
        registry.register(fmt)
    if version == "2.0":
        registry.register_transform(TELEMETRY_V2_TO_V1)
