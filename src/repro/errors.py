"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# PBIO (binary wire format) errors
# ---------------------------------------------------------------------------


class PBIOError(ReproError):
    """Base class for PBIO encode/decode/registry failures."""


class FormatError(PBIOError):
    """A format declaration is malformed (duplicate fields, bad types...)."""


class EncodeError(PBIOError):
    """A record could not be encoded against its declared format."""


class DecodeError(PBIOError):
    """A wire buffer could not be decoded (truncation, bad magic...)."""


class UnknownFormatError(PBIOError):
    """A wire message referenced a format id that no registry knows."""

    def __init__(self, format_id: int) -> None:
        super().__init__(f"unknown format id {format_id:#x}")
        self.format_id = format_id


# ---------------------------------------------------------------------------
# ECode (dynamic code generation) errors
# ---------------------------------------------------------------------------


class ECodeError(ReproError):
    """Base class for ECode compilation and runtime failures."""


class ECodeSyntaxError(ECodeError):
    """The ECode source failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ECodeTypeError(ECodeError):
    """The ECode source failed semantic checking."""


class ECodeRuntimeError(ECodeError):
    """A compiled or interpreted ECode routine failed while executing."""


# ---------------------------------------------------------------------------
# Morphing errors
# ---------------------------------------------------------------------------


class MorphError(ReproError):
    """Base class for message-morphing failures."""


class NoMatchError(MorphError):
    """MaxMatch found no acceptable (f1, f2) pair; the message is rejected."""


class TransformError(MorphError):
    """A registered transformation failed to compile or to run."""


# ---------------------------------------------------------------------------
# Middleware / transport errors
# ---------------------------------------------------------------------------


class EChoError(ReproError):
    """Base class for ECho middleware failures."""


class ChannelError(EChoError):
    """Channel lookup/subscription failed."""


class TransportError(ReproError):
    """A network transport failed (no route, closed node...)."""


class FabricError(ReproError):
    """The sharded event fabric was misused or lost coherence (unknown
    channel route, ownership violation, malformed handoff state...)."""


class JournalError(FabricError):
    """The ledger journal was misused or holds corrupt state (malformed
    entry, unreadable journal file, recovery against a bad snapshot)."""


# ---------------------------------------------------------------------------
# XML baseline errors
# ---------------------------------------------------------------------------


class XMLError(ReproError):
    """Base class for the XML/XSLT baseline."""


class XMLParseError(XMLError):
    """The XML text was not well formed."""

    def __init__(self, message: str, position: int = -1) -> None:
        location = f" at offset {position}" if position >= 0 else ""
        super().__init__(f"{message}{location}")
        self.position = position


class XSLTError(XMLError):
    """A stylesheet was malformed or failed to apply."""


# ---------------------------------------------------------------------------
# Observability errors
# ---------------------------------------------------------------------------


class ObsError(ReproError):
    """The observability subsystem was misused (instrument kind clash,
    malformed label set, bad bucket bounds...)."""
