"""XML tree → Record decoder.

The third component of the paper's XML/XSLT decode cost: "traversing the
new tree to form a data structure block" of the receiver's type.  Walks
an :class:`~repro.xmlrep.tree.XMLElement` tree against an
:class:`~repro.pbio.format.IOFormat`, parsing text content back into
typed scalars.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DecodeError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.types import TypeKind
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.tree import XMLElement


def decode_xml(fmt: IOFormat, text: str) -> Record:
    """Parse *text* and build a record of *fmt* from it."""
    root = parse_xml(text)
    return record_from_tree(fmt, root)


def record_from_tree(fmt: IOFormat, element: XMLElement) -> Record:
    """Build a record of *fmt* from an already-parsed element."""
    if element.tag != fmt.name and fmt.version is None:
        # nested complex fields arrive under the field's name, not the
        # subformat's; tags are only authoritative at the document root
        pass
    record = Record()
    for field in fmt.fields:
        children = element.children_by_tag(field.name)
        if field.is_array:
            record[field.name] = [_decode_one(field, child) for child in children]
        else:
            if not children:
                raise DecodeError(
                    f"XML element <{element.tag}> missing child "
                    f"<{field.name}> of format {fmt.name!r}"
                )
            record[field.name] = _decode_one(field, children[0])
    # arrays are authoritative; re-synchronize declared counts
    for field in fmt.fields:
        spec = field.array
        if spec is not None and spec.length_field is not None:
            declared = record.get(spec.length_field)
            actual = len(record[field.name])
            if declared != actual:
                raise DecodeError(
                    f"XML count mismatch for {field.name!r}: "
                    f"{spec.length_field}={declared} but {actual} elements"
                )
    return record


def _decode_one(field: IOField, element: XMLElement) -> Any:
    if field.is_complex:
        assert field.subformat is not None
        return record_from_tree(field.subformat, element)
    text = element.text()
    kind = field.kind
    try:
        if kind in (TypeKind.INTEGER, TypeKind.UNSIGNED, TypeKind.ENUMERATION):
            return int(text.strip() or 0)
        if kind is TypeKind.FLOAT:
            return float(text.strip() or 0.0)
        if kind is TypeKind.BOOLEAN:
            return text.strip() in ("1", "true", "True")
        if kind is TypeKind.CHAR:
            return text[:1] or "\x00"
        return text
    except ValueError as exc:
        raise DecodeError(
            f"bad scalar text {text!r} for field {field.name!r} "
            f"({kind.value}): {exc}"
        ) from None
