"""XML/XSLT baseline — the comparison arm of the paper's evaluation.

A dependency-free textual pipeline: record → XML string
(:func:`encode_xml`), XML string → element tree (:func:`parse_xml`),
tree → tree transformation (:class:`Stylesheet`), tree → record
(:func:`decode_xml` / :func:`record_from_tree`)."""

from repro.xmlrep.decode import decode_xml, record_from_tree
from repro.xmlrep.encode import encode_xml, xml_size
from repro.xmlrep.morph import XMLMorphReceiver, XSLTTransformSpec
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.tree import XMLElement, escape_attr, escape_text
from repro.xmlrep.xpath import matches, select, string_value
from repro.xmlrep.xslt import Stylesheet

__all__ = [
    "Stylesheet",
    "XMLElement",
    "XMLMorphReceiver",
    "XSLTTransformSpec",
    "decode_xml",
    "encode_xml",
    "escape_attr",
    "escape_text",
    "matches",
    "parse_xml",
    "record_from_tree",
    "select",
    "string_value",
    "xml_size",
]
