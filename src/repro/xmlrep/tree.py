"""XML element tree.

The in-memory document model for the XML baseline: a minimal, dependency-
free analogue of libxml2's parse tree (paper Section 5 builds one per
decode and one per XSL transformation).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(text: str) -> str:
    """Escape character data for inclusion in XML text content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text: str) -> str:
    out = escape_text(text)
    return out.replace('"', "&quot;")


class XMLElement:
    """One element: tag, attributes, and an ordered list of children that
    are either nested elements or text strings."""

    __slots__ = ("tag", "attributes", "children", "parent")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        children: Optional[List[Union["XMLElement", str]]] = None,
    ) -> None:
        self.tag = tag
        self.attributes: Dict[str, str] = attributes or {}
        self.children: List[Union[XMLElement, str]] = []
        self.parent: Optional[XMLElement] = None
        for child in children or ():
            self.append(child)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, child: Union["XMLElement", str]) -> None:
        if isinstance(child, XMLElement):
            child.parent = self
        self.children.append(child)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def element_children(self) -> Iterator["XMLElement"]:
        return (c for c in self.children if isinstance(c, XMLElement))

    def children_by_tag(self, tag: str) -> List["XMLElement"]:
        return [c for c in self.element_children() if c.tag == tag]

    def first_child(self, tag: str) -> Optional["XMLElement"]:
        for child in self.element_children():
            if child.tag == tag:
                return child
        return None

    def text(self) -> str:
        """Concatenated text content, recursing through children (the
        XPath string-value of the element)."""
        parts: List[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.text())
        return "".join(parts)

    def iter(self) -> Iterator["XMLElement"]:
        """Depth-first pre-order iteration over this element and all
        element descendants."""
        yield self
        for child in self.element_children():
            yield from child.iter()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def serialize(self, parts: Optional[List[str]] = None) -> str:
        top = parts is None
        if parts is None:
            parts = []
        attrs = "".join(
            f' {name}="{escape_attr(value)}"' for name, value in self.attributes.items()
        )
        if not self.children:
            parts.append(f"<{self.tag}{attrs}/>")
        else:
            parts.append(f"<{self.tag}{attrs}>")
            for child in self.children:
                if isinstance(child, str):
                    parts.append(escape_text(child))
                else:
                    child.serialize(parts)
            parts.append(f"</{self.tag}>")
        return "".join(parts) if top else ""

    def deepcopy(self) -> "XMLElement":
        clone = XMLElement(self.tag, dict(self.attributes))
        for child in self.children:
            clone.append(child.deepcopy() if isinstance(child, XMLElement) else child)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_children = sum(1 for _ in self.element_children())
        return f"XMLElement(<{self.tag}>, {n_children} child elements)"
