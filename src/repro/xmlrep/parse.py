"""From-scratch XML parser.

A character-level recursive parser producing
:class:`~repro.xmlrep.tree.XMLElement` trees.  Supports elements,
attributes, character data, comments, CDATA sections, processing
instructions / XML declarations (skipped), and the five predefined
entities plus numeric character references.  No namespaces, no DTDs —
the subset the baseline needs, parsed honestly (every character is
inspected, which is exactly the cost structure the paper attributes to
"parsing ascii-based XML").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import XMLParseError
from repro.xmlrep.tree import XMLElement

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Parser:
    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XMLParseError:
        return XMLParseError(message, self.pos)

    # ------------------------------------------------------------------

    def parse_document(self) -> XMLElement:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            raise self.error("content after document element")
        return root

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        while self.pos < self.length and self.text.startswith("<?", self.pos):
            end = self.text.find("?>", self.pos)
            if end < 0:
                raise self.error("unterminated processing instruction")
            self.pos = end + 2
            self._skip_whitespace()
        self._skip_misc()

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<!DOCTYPE", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    # ------------------------------------------------------------------

    def _parse_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def _parse_element(self) -> XMLElement:
        if not self.text.startswith("<", self.pos):
            raise self.error("expected '<'")
        self.pos += 1
        tag = self._parse_name()
        element = XMLElement(tag)
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                raise self.error(f"unterminated start tag <{tag}>")
            ch = self.text[self.pos]
            if ch == ">":
                self.pos += 1
                self._parse_content(element)
                return element
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return element
            name, value = self._parse_attribute()
            if name in element.attributes:
                raise self.error(f"duplicate attribute {name!r} on <{tag}>")
            element.attributes[name] = value

    def _parse_attribute(self) -> Tuple[str, str]:
        name = self._parse_name()
        self._skip_whitespace()
        if not self.text.startswith("=", self.pos):
            raise self.error(f"attribute {name!r} missing '='")
        self.pos += 1
        self._skip_whitespace()
        if self.pos >= self.length or self.text[self.pos] not in "\"'":
            raise self.error(f"attribute {name!r} value must be quoted")
        quote = self.text[self.pos]
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error(f"unterminated attribute value for {name!r}")
        raw = self.text[self.pos : end]
        self.pos = end + 1
        return name, _expand_entities(raw, self)

    def _parse_content(self, element: XMLElement) -> None:
        tag = element.tag
        buffer: list = []
        while True:
            if self.pos >= self.length:
                raise self.error(f"unterminated element <{tag}>")
            next_lt = self.text.find("<", self.pos)
            if next_lt < 0:
                raise self.error(f"unterminated element <{tag}>")
            if next_lt > self.pos:
                buffer.append(
                    _expand_entities(self.text[self.pos : next_lt], self)
                )
                self.pos = next_lt
            if self.text.startswith("</", self.pos):
                self._flush_text(element, buffer)
                self.pos += 2
                closing = self._parse_name()
                if closing != tag:
                    raise self.error(
                        f"mismatched close tag </{closing}> for <{tag}>"
                    )
                self._skip_whitespace()
                if not self.text.startswith(">", self.pos):
                    raise self.error(f"malformed close tag </{closing}>")
                self.pos += 1
                return
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos + 9)
                if end < 0:
                    raise self.error("unterminated CDATA section")
                buffer.append(self.text[self.pos + 9 : end])
                self.pos = end + 3
                continue
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
                continue
            self._flush_text(element, buffer)
            element.append(self._parse_element())

    @staticmethod
    def _flush_text(element: XMLElement, buffer: list) -> None:
        if buffer:
            element.append("".join(buffer))
            buffer.clear()


def _expand_entities(text: str, parser: _Parser) -> str:
    if "&" not in text:
        return text
    parts: list = []
    pos = 0
    while True:
        amp = text.find("&", pos)
        if amp < 0:
            parts.append(text[pos:])
            return "".join(parts)
        parts.append(text[pos:amp])
        semi = text.find(";", amp)
        if semi < 0:
            raise parser.error("unterminated entity reference")
        name = text[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except ValueError:
                raise parser.error(f"bad character reference &{name};") from None
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:])))
            except ValueError:
                raise parser.error(f"bad character reference &{name};") from None
        elif name in _ENTITIES:
            parts.append(_ENTITIES[name])
        else:
            raise parser.error(f"unknown entity &{name};")
        pos = semi + 1


def parse_xml(text: str) -> XMLElement:
    """Parse an XML document string, returning the root element."""
    return _Parser(text).parse_document()
