"""Message morphing over XML-structured messages.

Section 2 of the paper: "message morphing techniques like those described
in this paper could be applied to XML-structured messages by using
transformation languages like XSLT".  This module does exactly that —
the *same* MaxMatch/Algorithm 2 machinery (``repro.morph``), with:

* XML text as the wire representation (the format is identified by the
  root tag = format name and the ``version`` attribute),
* XSL stylesheets as the writer-supplied transformations,
* the same structural reconciliation for imperfect matches (operating on
  the decoded record).

Demonstrates that the morphing algorithms are representation-agnostic:
only the decode step and the transform engine are swapped.  It is also
the slow-by-construction arm the Figure 10 benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NoMatchError, UnknownFormatError, XSLTError
from repro.morph.compat import coerce_record
from repro.morph.maxmatch import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_MISMATCH_THRESHOLD,
    max_match,
)
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.xmlrep.decode import record_from_tree
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.tree import XMLElement
from repro.xmlrep.xslt import Stylesheet

Handler = Callable[[Record], Any]


@dataclass(frozen=True)
class XSLTTransformSpec:
    """A writer-supplied XML conversion: a stylesheet turning documents
    of *source* into documents of *target*."""

    source: IOFormat
    target: IOFormat
    stylesheet: str
    description: str = ""


@dataclass
class _XMLRoute:
    wire_format: IOFormat
    stylesheets: List[Stylesheet]
    coercion: Optional[Tuple[IOFormat, IOFormat]]
    handler_format: Optional[IOFormat]

    @property
    def is_reject(self) -> bool:
        return self.handler_format is None


class XMLMorphReceiver:
    """Algorithm 2 over XML documents with XSLT transformations.

    Formats are declared (writer side) with :meth:`declare_format` /
    :meth:`register_transform` and consumed (reader side) with
    :meth:`register_handler`; :meth:`process` takes raw XML text.
    """

    def __init__(
        self,
        diff_threshold: float = DEFAULT_DIFF_THRESHOLD,
        mismatch_threshold: float = DEFAULT_MISMATCH_THRESHOLD,
    ) -> None:
        self.diff_threshold = diff_threshold
        self.mismatch_threshold = mismatch_threshold
        #: (name, version) -> format, for root-tag resolution
        self._declared: Dict[Tuple[str, Optional[str]], IOFormat] = {}
        self._transforms: Dict[int, List[XSLTTransformSpec]] = {}
        self._handlers: Dict[int, Handler] = {}
        self._handler_formats: List[IOFormat] = []
        self._routes: Dict[int, _XMLRoute] = {}
        self.morphed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------

    def declare_format(self, fmt: IOFormat) -> None:
        """Make *fmt* resolvable from its root tag + version attribute."""
        self._declared[(fmt.name, fmt.version)] = fmt

    def register_transform(self, spec: XSLTTransformSpec) -> None:
        self.declare_format(spec.source)
        self.declare_format(spec.target)
        Stylesheet.from_string(spec.stylesheet)  # fail fast on bad XSL
        self._transforms.setdefault(spec.source.format_id, []).append(spec)
        self._routes.clear()

    def register_handler(self, fmt: IOFormat, handler: Handler) -> None:
        self.declare_format(fmt)
        self._handlers[fmt.format_id] = handler
        if all(f.format_id != fmt.format_id for f in self._handler_formats):
            self._handler_formats.append(fmt)
        self._routes.clear()

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, text: str) -> Any:
        root = parse_xml(text)
        incoming = self._resolve(root)
        route = self._routes.get(incoming.format_id)
        if route is not None:
            self.cache_hits += 1
        else:
            route = self._plan(incoming)
            self._routes[incoming.format_id] = route
        return self._run(route, root)

    def _resolve(self, root: XMLElement) -> IOFormat:
        key = (root.tag, root.attributes.get("version"))
        fmt = self._declared.get(key)
        if fmt is None:
            raise UnknownFormatError(hash(key) & 0xFFFFFFFF)
        return fmt

    def _plan(self, incoming: IOFormat) -> _XMLRoute:
        targets = [f for f in self._handler_formats if f.name == incoming.name]
        direct = max_match(
            incoming, targets, self.diff_threshold, self.mismatch_threshold
        )
        if direct is not None and direct.is_perfect:
            return _XMLRoute(incoming, [], None, direct.f2)
        chains = self._closure(incoming)
        candidates = [incoming] + [chain[-1].target for chain in chains]
        best = max_match(
            candidates, targets, self.diff_threshold, self.mismatch_threshold
        )
        if best is None:
            return _XMLRoute(incoming, [], None, None)
        stylesheets: List[Stylesheet] = []
        if best.f1.format_id != incoming.format_id:
            specs = next(
                chain for chain in chains
                if chain[-1].target.format_id == best.f1.format_id
            )
            stylesheets = [Stylesheet.from_string(s.stylesheet) for s in specs]
        coercion = None
        if not best.is_perfect or best.f1.format_id != best.f2.format_id:
            coercion = (best.f1, best.f2)
        return _XMLRoute(incoming, stylesheets, coercion, best.f2)

    def _closure(self, fmt: IOFormat) -> List[List[XSLTTransformSpec]]:
        """Acyclic stylesheet chains from *fmt*, shortest first."""
        chains: List[List[XSLTTransformSpec]] = []
        frontier = [[s] for s in self._transforms.get(fmt.format_id, ())]
        visited = {fmt.format_id}
        while frontier:
            next_frontier: List[List[XSLTTransformSpec]] = []
            for chain in frontier:
                tail = chain[-1].target
                if tail.format_id in visited:
                    continue
                visited.add(tail.format_id)
                chains.append(chain)
                for spec in self._transforms.get(tail.format_id, ()):
                    next_frontier.append(chain + [spec])
            frontier = next_frontier
        return chains

    def _run(self, route: _XMLRoute, root: XMLElement) -> Any:
        if route.is_reject:
            raise NoMatchError(
                f"no acceptable match for XML message <{route.wire_format.name}> "
                f"v{route.wire_format.version}"
            )
        for stylesheet in route.stylesheets:
            root = stylesheet.transform(root)
        if route.stylesheets:
            self.morphed += 1
        decode_format = (
            route.coercion[0] if route.coercion is not None else route.handler_format
        )
        assert decode_format is not None
        record = record_from_tree(decode_format, root)
        if route.coercion is not None:
            record = coerce_record(route.coercion[0], route.coercion[1], record)
        handler_format = route.handler_format
        assert handler_format is not None
        return self._handlers[handler_format.format_id](record)
