"""XPath-lite — the path subset the mini-XSLT engine evaluates.

Supported location paths (relative to a context element)::

    .                       the context node
    name                    child elements with that tag
    *                       all child elements
    a/b/c                   nested steps
    tag[child='value']      predicate: child string-value equals literal
    tag[@attr='value']      predicate: attribute equals literal
    tag[child]              predicate: child exists

String-value expressions additionally allow a trailing ``@attr`` or
``text()`` step and the aggregate functions ``count(path)`` and
``sum(path)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.errors import XSLTError
from repro.xmlrep.tree import XMLElement


@dataclass(frozen=True)
class Predicate:
    """``[lhs]`` or ``[lhs='literal']`` where lhs is ``@attr`` or a
    child path."""

    lhs: str
    literal: Optional[str] = None  # None -> existence test

    def holds(self, element: XMLElement) -> bool:
        if self.lhs.startswith("@"):
            value = element.attributes.get(self.lhs[1:])
            if value is None:
                return False
            return self.literal is None or value == self.literal
        nodes = select(element, self.lhs)
        if not nodes:
            return False
        if self.literal is None:
            return True
        return any(node.text() == self.literal for node in nodes)


@dataclass(frozen=True)
class Step:
    name: str  # tag, "*" or "."
    predicates: Tuple[Predicate, ...] = ()


@lru_cache(maxsize=1024)
def compile_path(path: str) -> Tuple[Step, ...]:
    """Parse a location path into steps (cached — stylesheets evaluate
    the same handful of paths per node)."""
    path = path.strip()
    if not path:
        raise XSLTError("empty location path")
    steps: List[Step] = []
    for raw in path.split("/"):
        raw = raw.strip()
        if not raw:
            raise XSLTError(f"bad location path {path!r}")
        steps.append(_compile_step(raw, path))
    return tuple(steps)


def _compile_step(raw: str, full_path: str) -> Step:
    predicates: List[Predicate] = []
    name = raw
    while name.endswith("]"):
        open_bracket = name.rfind("[")
        if open_bracket < 0:
            raise XSLTError(f"unbalanced predicate in {full_path!r}")
        predicates.insert(0, _compile_predicate(name[open_bracket + 1 : -1], full_path))
        name = name[:open_bracket]
    if not name:
        raise XSLTError(f"missing step name in {full_path!r}")
    if "[" in name or "]" in name:
        raise XSLTError(f"unbalanced predicate in {full_path!r}")
    return Step(name=name, predicates=tuple(predicates))


def _compile_predicate(text: str, full_path: str) -> Predicate:
    text = text.strip()
    if "=" in text:
        lhs, _eq, rhs = text.partition("=")
        rhs = rhs.strip()
        if len(rhs) < 2 or rhs[0] not in "'\"" or rhs[-1] != rhs[0]:
            raise XSLTError(
                f"predicate literal must be quoted in {full_path!r}"
            )
        return Predicate(lhs=lhs.strip(), literal=rhs[1:-1])
    if not text:
        raise XSLTError(f"empty predicate in {full_path!r}")
    return Predicate(lhs=text)


def select(context: XMLElement, path: str) -> List[XMLElement]:
    """Evaluate *path* relative to *context*, returning matched elements
    in document order."""
    nodes = [context]
    for step in compile_path(path):
        if step.name == ".":
            matched = nodes
        else:
            matched = []
            for node in nodes:
                for child in node.element_children():
                    if step.name == "*" or child.tag == step.name:
                        matched.append(child)
        if step.predicates:
            matched = [
                node
                for node in matched
                if all(p.holds(node) for p in step.predicates)
            ]
        nodes = matched
        if not nodes:
            return []
    return nodes


def string_value(context: XMLElement, expression: str) -> str:
    """Evaluate a value expression.

    Supported: a path (string-value of the first match), ``@attr``,
    ``path/@attr``, ``path/text()``, string literals, the functions
    ``count(path)``, ``sum(path)``, ``round(expr)``, ``floor(expr)``,
    ``concat(a, b, ...)``, and XPath arithmetic (``+ - * div``, left
    associative; ``-`` only between spaced operands so hyphenated tag
    names keep working)."""
    expression = expression.strip()
    value = _evaluate(context, expression)
    if isinstance(value, float):
        return str(int(value)) if value == int(value) else repr(value)
    return value


def _evaluate(context: XMLElement, expression: str) -> "str | float":
    """Left-associative additive expression over factor chains."""
    expression = expression.strip()
    terms = _split_operators(expression, ("+", "-"))
    if terms is None:
        return _evaluate_factor_chain(context, expression)
    total = _to_number(_evaluate_factor_chain(context, terms[0][1]))
    for op, chunk in terms[1:]:
        value = _to_number(_evaluate_factor_chain(context, chunk))
        total = total + value if op == "+" else total - value
    return total


def _evaluate_factor_chain(context: XMLElement, expression: str) -> "str | float":
    factors = _split_operators(expression.strip(), ("*", "div"))
    if factors is None:
        return _evaluate_atom(context, expression)
    product = _to_number(_evaluate_atom(context, factors[0][1]))
    for op, chunk in factors[1:]:
        value = _to_number(_evaluate_atom(context, chunk))
        if op == "*":
            product *= value
        else:
            if value == 0:
                raise XSLTError("division by zero in XPath expression")
            product /= value
    return product


def _evaluate_atom(context: XMLElement, expression: str) -> "str | float":
    expression = expression.strip()
    if not expression:
        raise XSLTError("empty value expression")
    if expression[0] in "'\"" and expression[-1] == expression[0]:
        return expression[1:-1]
    try:
        return float(expression)
    except ValueError:
        pass
    if expression.startswith("(") and expression.endswith(")"):
        return _evaluate(context, expression[1:-1])
    for fn in ("count", "sum", "round", "floor", "concat"):
        if expression.startswith(fn + "(") and expression.endswith(")"):
            inner = expression[len(fn) + 1 : -1]
            if fn == "count":
                return float(len(select(context, inner)))
            if fn == "sum":
                total = 0.0
                for node in select(context, inner):
                    try:
                        total += float(node.text() or 0)
                    except ValueError as exc:
                        raise XSLTError(
                            f"sum() over non-numeric node: {exc}"
                        ) from None
                return total
            if fn == "round":
                import math

                return float(math.floor(_to_number(_evaluate(context, inner)) + 0.5))
            if fn == "floor":
                import math

                return float(math.floor(_to_number(_evaluate(context, inner))))
            parts = [
                string_value(context, piece)
                for piece in _split_args(inner)
            ]
            return "".join(parts)
    if expression == ".":
        return context.text()
    path, _slash, last = expression.rpartition("/")
    if last.startswith("@"):
        holders = select(context, path) if path else [context]
        if not holders:
            return ""
        return holders[0].attributes.get(last[1:], "")
    if last == "text()":
        holders = select(context, path) if path else [context]
        return holders[0].text() if holders else ""
    nodes = select(context, expression)
    return nodes[0].text() if nodes else ""


def _to_number(value: "str | float") -> float:
    if isinstance(value, float):
        return value
    try:
        return float(value or 0)
    except ValueError:
        raise XSLTError(f"non-numeric operand {value!r} in arithmetic") from None


def _scan_top_level(expression: str):
    """Yield (index, char) pairs at paren/bracket/quote depth zero."""
    depth = 0
    quote = ""
    for index, ch in enumerate(expression):
        if quote:
            if ch == quote:
                quote = ""
            continue
        if ch in "'\"":
            quote = ch
        elif ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif depth == 0:
            yield index, ch


def _split_operators(expression: str, operators) -> "Optional[List[Tuple[str, str]]]":
    """Split *expression* on top-level binary operators.

    Operators must be surrounded by spaces (so hyphenated/asterisked
    names keep working; real XPath has the same ambiguity and resolves it
    lexically).  Returns ``[(op_before, chunk), ...]`` with the first op
    ``"+"``, or None when no operator occurs.
    """
    top_level = dict(_scan_top_level(expression))
    cuts: List[Tuple[int, int, str]] = []  # (index, width, op)
    for op in operators:
        token = f" {op} "
        pos = 0
        while True:
            found = expression.find(token, pos)
            if found < 0:
                break
            # the operator's first character must be at top level
            if found + 1 in top_level:
                cuts.append((found, len(token), op))
            pos = found + len(token)
    if not cuts:
        return None
    cuts.sort()
    chunks: List[Tuple[str, str]] = []
    start = 0
    op_before = "+"
    for index, width, op in cuts:
        chunks.append((op_before, expression[start:index]))
        op_before = op
        start = index + width
    chunks.append((op_before, expression[start:]))
    return chunks


def _split_args(inner: str) -> List[str]:
    """Split function arguments on top-level commas."""
    args: List[str] = []
    start = 0
    for index, ch in _scan_top_level(inner):
        if ch == ",":
            args.append(inner[start:index])
            start = index + 1
    args.append(inner[start:])
    return [a.strip() for a in args]


def matches(element: XMLElement, pattern: str) -> bool:
    """Match an element against an XSLT template pattern: ``tag``,
    ``parent/tag``, ``*`` or ``/`` (the document root)."""
    pattern = pattern.strip()
    if pattern == "/":
        return element.parent is None
    steps = pattern.split("/")
    node: Optional[XMLElement] = element
    for raw in reversed(steps):
        step = _compile_step(raw.strip(), pattern)
        if node is None:
            return False
        if step.name != "*" and node.tag != step.name:
            return False
        if not all(p.holds(node) for p in step.predicates):
            return False
        node = node.parent
    return True


def pattern_specificity(pattern: str) -> Tuple[int, int]:
    """Template priority proxy: more steps win, then named-over-``*``."""
    pattern = pattern.strip()
    if pattern == "/":
        return (0, 1)
    steps = pattern.split("/")
    named = sum(1 for s in steps if not s.strip().startswith("*"))
    return (len(steps), named)
