"""Mini-XSLT engine.

Implements the XSLT 1.0 subset the paper's comparison workload needs —
stylesheets are themselves XML parsed by :mod:`repro.xmlrep.parse`, and
transformation produces a fresh element tree (mirroring libxslt's
"apply the XSL transformation and generate the new parse-tree" cost).

Supported instructions:

* ``<xsl:template match="pattern">`` — pattern per
  :func:`repro.xmlrep.xpath.matches`, priority by specificity or an
  explicit ``priority`` attribute,
* ``<xsl:value-of select="expr"/>``,
* ``<xsl:for-each select="path">``,
* ``<xsl:apply-templates [select="path"]/>``,
* ``<xsl:if test="pred-expr">`` — existence or ``path='literal'``,
* ``<xsl:choose>/<xsl:when test>/<xsl:otherwise>``,
* ``<xsl:copy-of select="path"/>``,
* ``<xsl:attribute name="n">``,
* ``<xsl:text>``,
* literal result elements (attributes support ``{expr}`` value
  templates).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import XSLTError
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.tree import XMLElement
from repro.xmlrep.xpath import (
    matches,
    pattern_specificity,
    select,
    string_value,
)

_XSL_PREFIX = "xsl:"


class Template:
    def __init__(self, match: str, priority: Tuple[float, ...], body: List[Union[XMLElement, str]]) -> None:
        self.match = match
        self.priority = priority
        self.body = body


class Stylesheet:
    """A compiled stylesheet; apply with :meth:`transform`."""

    def __init__(self, templates: List[Template]) -> None:
        if not templates:
            raise XSLTError("stylesheet declares no templates")
        self.templates = templates

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Stylesheet":
        root = parse_xml(text)
        if root.tag not in ("xsl:stylesheet", "xsl:transform"):
            raise XSLTError(f"not a stylesheet: root element <{root.tag}>")
        templates: List[Template] = []
        for child in root.element_children():
            if child.tag != "xsl:template":
                continue
            match = child.attributes.get("match")
            if not match:
                raise XSLTError("xsl:template requires a match attribute")
            if "priority" in child.attributes:
                try:
                    priority: Tuple[float, ...] = (float(child.attributes["priority"]),)
                except ValueError:
                    raise XSLTError("bad xsl:template priority") from None
            else:
                priority = tuple(float(x) for x in pattern_specificity(match))
            templates.append(Template(match, priority, list(child.children)))
        return cls(templates)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def transform(self, root: XMLElement) -> XMLElement:
        """Apply the stylesheet to *root*; the result must be a single
        element (the workloads produce one document element)."""
        produced = self._apply_to(root)
        elements = [node for node in produced if isinstance(node, XMLElement)]
        if len(elements) != 1:
            raise XSLTError(
                f"transformation produced {len(elements)} root elements"
            )
        return elements[0]

    def _find_template(self, node: XMLElement) -> Optional[Template]:
        best: Optional[Template] = None
        for template in self.templates:
            if matches(node, template.match):
                if best is None or template.priority > best.priority:
                    best = template
        return best

    def _apply_to(self, node: XMLElement) -> List[Union[XMLElement, str]]:
        template = self._find_template(node)
        if template is None:
            # builtin rule: recurse into children, copy text through
            output: List[Union[XMLElement, str]] = []
            for child in node.children:
                if isinstance(child, str):
                    output.append(child)
                else:
                    output.extend(self._apply_to(child))
            return output
        return self._instantiate(template.body, node)

    def _instantiate(
        self, body: List[Union[XMLElement, str]], context: XMLElement
    ) -> List[Union[XMLElement, str]]:
        output: List[Union[XMLElement, str]] = []
        for item in body:
            if isinstance(item, str):
                if item.strip():
                    output.append(item)
                continue
            if item.tag.startswith(_XSL_PREFIX):
                output.extend(self._instruction(item, context))
            else:
                output.append(self._literal_element(item, context))
        return output

    def _literal_element(self, item: XMLElement, context: XMLElement) -> XMLElement:
        element = XMLElement(item.tag)
        for name, value in item.attributes.items():
            element.attributes[name] = self._attribute_value(value, context)
        body: List[Union[XMLElement, str]] = []
        for child in item.children:
            if isinstance(child, XMLElement) and child.tag == "xsl:attribute":
                name = self._required(child, "name")
                parts = self._instantiate(list(child.children), context)
                element.attributes[name] = "".join(
                    p if isinstance(p, str) else p.text() for p in parts
                )
            else:
                body.append(child)
        for child in self._instantiate(body, context):
            element.append(child)
        return element

    def _attribute_value(self, value: str, context: XMLElement) -> str:
        """Attribute value templates: ``{expr}`` substrings evaluate."""
        if "{" not in value:
            return value
        out: List[str] = []
        pos = 0
        while True:
            start = value.find("{", pos)
            if start < 0:
                out.append(value[pos:])
                return "".join(out)
            end = value.find("}", start)
            if end < 0:
                raise XSLTError(f"unterminated {{expr}} in attribute {value!r}")
            out.append(value[pos:start])
            out.append(string_value(context, value[start + 1 : end]))
            pos = end + 1

    def _instruction(
        self, item: XMLElement, context: XMLElement
    ) -> List[Union[XMLElement, str]]:
        tag = item.tag
        if tag == "xsl:value-of":
            return [string_value(context, self._required(item, "select"))]
        if tag == "xsl:text":
            return [item.text()]
        if tag == "xsl:for-each":
            path = self._required(item, "select")
            output: List[Union[XMLElement, str]] = []
            for node in select(context, path):
                output.extend(self._instantiate(list(item.children), node))
            return output
        if tag == "xsl:apply-templates":
            path = item.attributes.get("select")
            nodes = (
                select(context, path)
                if path
                else list(context.element_children())
            )
            output = []
            for node in nodes:
                output.extend(self._apply_to(node))
            return output
        if tag == "xsl:if":
            if self._test(item, context):
                return self._instantiate(list(item.children), context)
            return []
        if tag == "xsl:choose":
            for branch in item.element_children():
                if branch.tag == "xsl:when" and self._test(branch, context):
                    return self._instantiate(list(branch.children), context)
                if branch.tag == "xsl:otherwise":
                    return self._instantiate(list(branch.children), context)
            return []
        if tag == "xsl:copy-of":
            path = self._required(item, "select")
            return [node.deepcopy() for node in select(context, path)]
        if tag == "xsl:attribute":
            name = self._required(item, "name")
            raise XSLTError(
                f"xsl:attribute {name!r} must appear inside a literal "
                "result element"
            )
        raise XSLTError(f"unsupported instruction <{tag}>")

    @staticmethod
    def _required(item: XMLElement, attr: str) -> str:
        value = item.attributes.get(attr)
        if not value:
            raise XSLTError(f"<{item.tag}> requires a {attr!r} attribute")
        return value

    @staticmethod
    def _test(item: XMLElement, context: XMLElement) -> bool:
        expression = item.attributes.get("test")
        if not expression:
            raise XSLTError(f"<{item.tag}> requires a test attribute")
        expression = expression.strip()
        if "=" in expression:
            lhs, _eq, rhs = expression.partition("=")
            rhs = rhs.strip()
            if len(rhs) >= 2 and rhs[0] in "'\"" and rhs[-1] == rhs[0]:
                return string_value(context, lhs.strip()) == rhs[1:-1]
            raise XSLTError(f"test literal must be quoted: {expression!r}")
        return bool(select(context, expression))
