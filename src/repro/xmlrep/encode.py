"""Record → XML text encoder.

The XML arm of the paper's encoding comparison (Figure 8): data is
converted to strings and concatenated with element begin/end tags —
"created using sprintf() for data-to-string conversions and a modified
strcat()"; our analogue appends to one list and joins once, the
equivalent optimization of remembering the end of the output string.

Layout convention (used symmetrically by the decoder and the XSLT
stylesheets): every field becomes a child element named after the field,
array fields repeat their element once per entry, complex fields nest.
The format version rides as a root attribute so readers can check which
revision they got.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from repro.errors import EncodeError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.types import TypeKind
from repro.xmlrep.tree import escape_text


def encode_xml(fmt: IOFormat, rec: Mapping[str, Any]) -> str:
    """Encode *rec* as an XML document string following *fmt*."""
    parts: List[str] = []
    if fmt.version:
        parts.append(f'<{fmt.name} version="{fmt.version}">')
    else:
        parts.append(f"<{fmt.name}>")
    _encode_fields(parts, fmt, rec)
    parts.append(f"</{fmt.name}>")
    return "".join(parts)


def _encode_fields(parts: List[str], fmt: IOFormat, rec: Mapping[str, Any]) -> None:
    for field in fmt.fields:
        try:
            value = rec[field.name]
        except (KeyError, TypeError):
            raise EncodeError(
                f"record missing field {field.name!r} of format {fmt.name!r}"
            ) from None
        if field.is_array:
            if not isinstance(value, list):
                raise EncodeError(f"field {field.name!r} must be a list")
            for element in value:
                _encode_one(parts, field, element)
        else:
            _encode_one(parts, field, value)


def _encode_one(parts: List[str], field: IOField, value: Any) -> None:
    name = field.name
    if field.is_complex:
        assert field.subformat is not None
        parts.append(f"<{name}>")
        _encode_fields(parts, field.subformat, value)
        parts.append(f"</{name}>")
        return
    parts.append(f"<{name}>")
    parts.append(_scalar_to_text(field.kind, value))
    parts.append(f"</{name}>")


def _scalar_to_text(kind: TypeKind, value: Any) -> str:
    if kind is TypeKind.BOOLEAN:
        return "1" if value else "0"
    if kind in (TypeKind.INTEGER, TypeKind.UNSIGNED, TypeKind.ENUMERATION):
        return "%d" % value
    if kind is TypeKind.FLOAT:
        return repr(float(value))
    if kind is TypeKind.CHAR:
        return escape_text(str(value))
    return escape_text(str(value))


def xml_size(fmt: IOFormat, rec: Mapping[str, Any]) -> int:
    """Byte size of the XML encoding (UTF-8), for Table 1."""
    return len(encode_xml(fmt, rec).encode("utf-8"))
