"""ECho wire protocol — formats for every control message, in every
revision the paper discusses.

The ``ChannelOpenResponse`` evolution (paper Figure 4) is the central
example:

* **v1.0** carries the full member list *plus* separate source and sink
  lists — each remote client's contact info can appear three times,
* **v2.0** collapses the three lists into one member list with
  ``is_Source`` / ``is_Sink`` flags, shrinking the message by more than
  half,
* **v0.0** (used to exercise Figure 1's retro-transformation *chain*) is
  an earlier revision carrying only the member list, with no role
  information at all.

``V2_TO_V1_TRANSFORM`` is the paper's Figure 5 ECode;
``V1_TO_V0_TRANSFORM`` extends the chain; ``V1_TO_V2_TRANSFORM`` is the
forward transform (deriving the flags by scanning the role lists), which
lets *new* readers accept *old* servers' responses.
"""

from __future__ import annotations

from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec

# ---------------------------------------------------------------------------
# Member entry formats
# ---------------------------------------------------------------------------

#: v0.0/v1.0 member entry: CM contact info + channel-member ID.
MEMBER_V1 = IOFormat(
    "ChannelMember",
    [
        IOField("info", "string"),
        IOField("ID", "integer"),
    ],
    version="1.0",
)

#: v2.0 member entry adds the two boolean role flags.
MEMBER_V2 = IOFormat(
    "ChannelMember",
    [
        IOField("info", "string"),
        IOField("ID", "integer"),
        IOField("is_Source", "boolean"),
        IOField("is_Sink", "boolean"),
    ],
    version="2.0",
)

# ---------------------------------------------------------------------------
# ChannelOpenResponse revisions
# ---------------------------------------------------------------------------

RESPONSE_V0 = IOFormat(
    "ChannelOpenResponse",
    [
        IOField("channel_id", "string"),
        IOField("member_count", "integer"),
        IOField(
            "member_list",
            "complex",
            subformat=MEMBER_V1,
            array=ArraySpec(length_field="member_count"),
        ),
    ],
    version="0.0",
)

RESPONSE_V1 = IOFormat(
    "ChannelOpenResponse",
    [
        IOField("channel_id", "string"),
        IOField("member_count", "integer"),
        IOField(
            "member_list",
            "complex",
            subformat=MEMBER_V1,
            array=ArraySpec(length_field="member_count"),
        ),
        IOField("src_count", "integer"),
        IOField(
            "src_list",
            "complex",
            subformat=MEMBER_V1,
            array=ArraySpec(length_field="src_count"),
        ),
        IOField("sink_count", "integer"),
        IOField(
            "sink_list",
            "complex",
            subformat=MEMBER_V1,
            array=ArraySpec(length_field="sink_count"),
        ),
    ],
    version="1.0",
)

RESPONSE_V2 = IOFormat(
    "ChannelOpenResponse",
    [
        IOField("channel_id", "string"),
        IOField("member_count", "integer"),
        IOField(
            "member_list",
            "complex",
            subformat=MEMBER_V2,
            array=ArraySpec(length_field="member_count"),
        ),
    ],
    version="2.0",
)

# ---------------------------------------------------------------------------
# Other control messages (version-stable)
# ---------------------------------------------------------------------------

OPEN_REQUEST = IOFormat(
    "ChannelOpenRequest",
    [
        IOField("channel_id", "string"),
        IOField("contact", "string"),
        IOField("is_Source", "boolean"),
        IOField("is_Sink", "boolean"),
    ],
    version="1.0",
)

LEAVE_REQUEST = IOFormat(
    "ChannelLeaveRequest",
    [
        IOField("channel_id", "string"),
        IOField("contact", "string"),
    ],
    version="1.0",
)

EVENT_ENVELOPE = IOFormat(
    "EventEnvelope",
    [
        IOField("channel_id", "string"),
        IOField("seq", "unsigned", 8),
    ],
    version="1.0",
)

#: Derived-channel announcement, sent by a channel creator to the parent
#: channel's sources.  The ECode *filter* travels as source text and is
#: dynamically compiled at each source — E-Code's original job in ECho
#: [10] was exactly these source-side event filters.  The derived
#: channel's current ChannelOpenResponse rides concatenated behind this
#: message (the same framing trick as EventEnvelope + payload).
DERIVED_INFO = IOFormat(
    "DerivedChannelInfo",
    [
        IOField("parent_id", "string"),
        IOField("channel_id", "string"),
        IOField("filter_code", "string"),
    ],
    version="1.0",
)

# ---------------------------------------------------------------------------
# Transformations
# ---------------------------------------------------------------------------

#: Paper Figure 5 — rebuild v1.0's three lists from v2.0's flagged list.
V2_TO_V1_CODE = """
int i;
int src_count = 0;
int sink_count = 0;
old.channel_id = new.channel_id;
old.member_count = new.member_count;
for (i = 0; i < new.member_count; i++) {
    old.member_list[i].info = new.member_list[i].info;
    old.member_list[i].ID = new.member_list[i].ID;
    if (new.member_list[i].is_Source) {
        old.src_list[src_count].info = new.member_list[i].info;
        old.src_list[src_count].ID = new.member_list[i].ID;
        src_count++;
    }
    if (new.member_list[i].is_Sink) {
        old.sink_list[sink_count].info = new.member_list[i].info;
        old.sink_list[sink_count].ID = new.member_list[i].ID;
        sink_count++;
    }
}
old.src_count = src_count;
old.sink_count = sink_count;
"""

#: Retro chain tail: v1.0 -> v0.0 drops the role lists.
V1_TO_V0_CODE = """
int i;
old.channel_id = new.channel_id;
old.member_count = new.member_count;
for (i = 0; i < new.member_count; i++) {
    old.member_list[i].info = new.member_list[i].info;
    old.member_list[i].ID = new.member_list[i].ID;
}
"""

#: Forward transform: derive the flags by scanning the v1.0 role lists.
V1_TO_V2_CODE = """
int i;
int j;
old.channel_id = new.channel_id;
old.member_count = new.member_count;
for (i = 0; i < new.member_count; i++) {
    old.member_list[i].info = new.member_list[i].info;
    old.member_list[i].ID = new.member_list[i].ID;
    old.member_list[i].is_Source = 0;
    old.member_list[i].is_Sink = 0;
    for (j = 0; j < new.src_count; j++) {
        if (new.src_list[j].ID == new.member_list[i].ID) {
            old.member_list[i].is_Source = 1;
        }
    }
    for (j = 0; j < new.sink_count; j++) {
        if (new.sink_list[j].ID == new.member_list[i].ID) {
            old.member_list[i].is_Sink = 1;
        }
    }
}
"""

V2_TO_V1_TRANSFORM = TransformSpec(
    source=RESPONSE_V2,
    target=RESPONSE_V1,
    code=V2_TO_V1_CODE,
    description="ECho ChannelOpenResponse 2.0 -> 1.0 (paper Figure 5)",
)

V1_TO_V0_TRANSFORM = TransformSpec(
    source=RESPONSE_V1,
    target=RESPONSE_V0,
    code=V1_TO_V0_CODE,
    description="ECho ChannelOpenResponse 1.0 -> 0.0 (retro chain tail)",
)

V1_TO_V2_TRANSFORM = TransformSpec(
    source=RESPONSE_V1,
    target=RESPONSE_V2,
    code=V1_TO_V2_CODE,
    description="ECho ChannelOpenResponse 1.0 -> 2.0 (forward transform)",
)

#: The response format each ECho release sends.
RESPONSE_BY_VERSION = {
    "0.0": RESPONSE_V0,
    "1.0": RESPONSE_V1,
    "2.0": RESPONSE_V2,
}


def register_protocol(registry: FormatRegistry, version: str = "2.0") -> None:
    """Register the control formats an ECho process of *version* uses,
    along with the retro-transformations its responses carry.

    A v2.0 writer registers the Figure 5 transform (plus the v1->v0 hop
    so v0.0 readers can chain); a v1.0 writer registers the v1->v0 and
    the forward v1->v2 transforms.
    """
    registry.register(OPEN_REQUEST)
    registry.register(LEAVE_REQUEST)
    registry.register(EVENT_ENVELOPE)
    registry.register(DERIVED_INFO)
    registry.register(RESPONSE_BY_VERSION[version])
    if version == "2.0":
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
    elif version == "1.0":
        registry.register_transform(V1_TO_V0_TRANSFORM)
        registry.register_transform(V1_TO_V2_TRANSFORM)
