"""Channel bookkeeping for the ECho middleware.

An event channel (paper Section 4.1) matches event sources to event
sinks.  The channel *creator* owns the authoritative membership list;
every member keeps a replica updated from ``ChannelOpenResponse``
messages — which is exactly where format morphing earns its keep, since
the replica update code only ever sees the revision of the response its
own release understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ChannelError
from repro.pbio.format import IOFormat
from repro.pbio.record import Record


@dataclass
class Member:
    """One channel member as known to a process."""

    contact: str
    member_id: int
    is_source: bool = False
    is_sink: bool = False


class ChannelState:
    """A process's view of one event channel."""

    def __init__(
        self,
        channel_id: str,
        creator_contact: str,
        parent_id: Optional[str] = None,
        filter_code: Optional[str] = None,
    ) -> None:
        self.channel_id = channel_id
        self.creator_contact = creator_contact
        self.members: Dict[int, Member] = {}
        self.next_member_id = 1
        self.is_source = False
        self.is_sink = False
        self.local_member_id: Optional[int] = None
        self.ready = False  # True once an open response arrived
        self.seq = 0
        #: derived channels (ECho's filtered sub-channels): the parent
        #: channel id and the ECode filter applied at each source
        self.parent_id = parent_id
        self.filter_code = filter_code

    @property
    def is_derived(self) -> bool:
        return self.parent_id is not None

    # ------------------------------------------------------------------
    # Creator-side membership management
    # ------------------------------------------------------------------

    def add_member(self, contact: str, is_source: bool, is_sink: bool) -> Member:
        """Add (or update) a member by contact; creator side only."""
        for member in self.members.values():
            if member.contact == contact:
                member.is_source = member.is_source or is_source
                member.is_sink = member.is_sink or is_sink
                return member
        member = Member(
            contact=contact,
            member_id=self.next_member_id,
            is_source=is_source,
            is_sink=is_sink,
        )
        self.next_member_id += 1
        self.members[member.member_id] = member
        return member

    def remove_member(self, contact: str) -> Optional[Member]:
        """Remove the member with *contact*; creator side only.  Returns
        the removed member, or None when no such member exists."""
        for member_id, member in list(self.members.items()):
            if member.contact == contact:
                del self.members[member_id]
                return member
        return None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def member_list(self) -> List[Member]:
        return sorted(self.members.values(), key=lambda m: m.member_id)

    def sources(self) -> List[Member]:
        return [m for m in self.member_list() if m.is_source]

    def sinks(self) -> List[Member]:
        return [m for m in self.member_list() if m.is_sink]

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    # ------------------------------------------------------------------
    # ChannelOpenResponse construction / ingestion
    # ------------------------------------------------------------------

    def to_response_record(self, response_format: IOFormat) -> Record:
        """Build a ChannelOpenResponse record of *response_format* (any
        revision: 0.0, 1.0 or 2.0) from this membership."""
        members = self.member_list()
        version = response_format.version
        if version == "2.0":
            return response_format.make_record(
                channel_id=self.channel_id,
                member_count=len(members),
                member_list=[
                    dict(
                        info=m.contact,
                        ID=m.member_id,
                        is_Source=m.is_source,
                        is_Sink=m.is_sink,
                    )
                    for m in members
                ],
            )
        if version == "1.0":
            sources = [m for m in members if m.is_source]
            sinks = [m for m in members if m.is_sink]
            return response_format.make_record(
                channel_id=self.channel_id,
                member_count=len(members),
                member_list=[dict(info=m.contact, ID=m.member_id) for m in members],
                src_count=len(sources),
                src_list=[dict(info=m.contact, ID=m.member_id) for m in sources],
                sink_count=len(sinks),
                sink_list=[dict(info=m.contact, ID=m.member_id) for m in sinks],
            )
        if version == "0.0":
            return response_format.make_record(
                channel_id=self.channel_id,
                member_count=len(members),
                member_list=[dict(info=m.contact, ID=m.member_id) for m in members],
            )
        raise ChannelError(f"unknown ChannelOpenResponse version {version!r}")

    def update_from_response(self, record: Record) -> None:
        """Replace the membership replica from a decoded (possibly
        morphed) ChannelOpenResponse of *any* revision.

        Role flags come from the flagged member list when present (v2.0),
        from the src/sink lists when present (v1.0), and default to
        unknown-role otherwise (v0.0)."""
        members: Dict[int, Member] = {}
        source_ids = set()
        sink_ids = set()
        if "src_list" in record:
            source_ids = {entry["ID"] for entry in record["src_list"]}
            sink_ids = {entry["ID"] for entry in record["sink_list"]}
        for entry in record["member_list"]:
            member_id = entry["ID"]
            is_source = bool(entry.get("is_Source", member_id in source_ids))
            is_sink = bool(entry.get("is_Sink", member_id in sink_ids))
            members[member_id] = Member(
                contact=entry["info"],
                member_id=member_id,
                is_source=is_source,
                is_sink=is_sink,
            )
        self.members = members
        self.next_member_id = max(members, default=0) + 1
        self.ready = True
