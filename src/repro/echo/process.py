"""EChoProcess — one process participating in ECho event channels.

Wraps a simulated-network node with:

* a **control plane** (`MorphReceiver`) handling ChannelOpenRequest /
  ChannelOpenResponse — each process registers only the response revision
  its own release understands; the morphing layer reconciles everything
  else (the paper's headline scenario),
* a **data plane**: events are PBIO messages prefixed with an
  ``EventEnvelope``; each channel has its own `MorphReceiver`, so
  application event formats evolve independently of the control plane.

Event distribution is peer-to-peer: sources learn the sink set from the
membership replica and push events directly, with the channel creator
only brokering membership (the ECho model, not a hub-and-spoke bus).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.echo.channel import ChannelState
from repro.echo.protocol import (
    DERIVED_INFO,
    EVENT_ENVELOPE,
    LEAVE_REQUEST,
    OPEN_REQUEST,
    RESPONSE_BY_VERSION,
    register_protocol,
)
from repro.ecode.codegen import ECodeProcedure, compile_procedure
from repro.errors import ChannelError, ECodeError
from repro.morph.maxmatch import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_MISMATCH_THRESHOLD,
)
from repro.morph.receiver import MorphReceiver
from repro.net.batch import is_batch, pack_batch, unpack_batch
from repro.net.reliable import ReliableEndpoint
from repro.net.transport import Network, Node
from repro.obs import OBS
from repro.obs.tracectx import TraceContext, activate, make_context
from repro.pbio.buffer import (
    HEADER_SIZE,
    MessageHeader,
    attach_trace,
    peek_trace,
    unpack_header,
)
from repro.pbio.codegen import BatchEncoderFn, make_batch_encoder
from repro.pbio.context import PBIOContext
from repro.pbio.format import IOFormat
from repro.pbio.projection import ProjectionFormat, projection_ratio
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry
from repro.pbio.server import CachingFormatResolver, ProjectionState

EventHandler = Callable[[Record], Any]


class EChoProcess:
    """One ECho endpoint.

    Parameters
    ----------
    network:
        The simulated :class:`~repro.net.transport.Network`.
    address:
        This process's contact string (also its network address).
    registry:
        The shared out-of-band meta-data registry.  Optional when a
        *resolver* (or *format_servers*) is supplied — the process then
        works against the resolver's local cache and fetches unknown
        formats from the server fleet on demand.
    version:
        The ECho release this process runs ("0.0", "1.0" or "2.0") —
        selects which ChannelOpenResponse revision it sends and
        understands.
    reliable:
        Wrap the node in a :class:`~repro.net.reliable.ReliableEndpoint`
        so control and event traffic survives lossy links (seq/ack,
        retries, dup suppression).  *reliable_options* is forwarded to
        the endpoint constructor; the default raises the circuit-breaker
        threshold so bursty loss cannot fail-fast event publishes
        mid-run.
    resolver / format_servers:
        Either an existing :class:`CachingFormatResolver` or a server
        address list from which the process builds one (at
        ``<address>:meta``).  Messages whose format id is not locally
        known are parked, the format fetched out-of-band, and the
        message replayed when the meta-data arrives.
    directory:
        A fabric :class:`~repro.fabric.membership.FabricDirectory` (or
        anything with its ``owner_contact``/``register_echo_channel``
        shape).  When set, channels created here are registered with the
        fabric and :meth:`open_channel` can resolve a channel's creator
        by consistent hashing instead of requiring out-of-band contact
        exchange.
    """

    def __init__(
        self,
        network: Network,
        address: str,
        registry: Optional[FormatRegistry] = None,
        version: str = "2.0",
        diff_threshold: int = DEFAULT_DIFF_THRESHOLD,
        mismatch_threshold: float = DEFAULT_MISMATCH_THRESHOLD,
        reliable: bool = False,
        reliable_options: Optional[Dict[str, Any]] = None,
        resolver: Optional[CachingFormatResolver] = None,
        format_servers: Optional[List[str]] = None,
        resolver_options: Optional[Dict[str, Any]] = None,
        contain_failures: bool = False,
        directory: Optional[Any] = None,
    ) -> None:
        if version not in RESPONSE_BY_VERSION:
            raise ChannelError(f"unknown ECho version {version!r}")
        self.network = network
        self.node: Node = network.add_node(address)
        if resolver is None and format_servers:
            options = dict(resolver_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            resolver = CachingFormatResolver(
                network, f"{address}:meta", servers=format_servers,
                registry=registry, **options,
            )
        self.resolver = resolver
        if registry is None:
            if resolver is None:
                raise ChannelError(
                    "EChoProcess needs a registry, a resolver, or "
                    "format_servers"
                )
            registry = resolver.registry
        self.registry = registry
        self.reliable: Optional[ReliableEndpoint] = None
        if reliable:
            options = dict(reliable_options or {})
            # Event bursts over lossy links produce consecutive timeouts
            # that are retried successfully; don't let them trip the
            # breaker into rejecting publishes unless explicitly tuned.
            options.setdefault("breaker_threshold", 1_000_000)
            self.reliable = ReliableEndpoint(network, node=self.node, **options)
            self.reliable.set_handler(self._on_message)
        else:
            self.node.set_handler(self._on_message)
        self.version = version
        self.directory = directory
        self.contain_failures = contain_failures
        #: messages parked while their format is fetched out-of-band
        self.parked = 0
        #: parked messages dropped because no server knew the format
        self.unresolved = 0
        #: format ids whose meta-data was already refreshed from the
        #: server fleet (refresh once, then live with what we got)
        self._refreshed: set = set()
        self.channels: Dict[str, ChannelState] = {}
        self.pbio = PBIOContext(registry)
        self._current_peer: Optional[str] = None
        register_protocol(registry, version)
        if self.resolver is not None:
            # Upload the protocol formats (and anything pre-registered)
            # so peers resolving through the same fleet can morph our
            # control traffic.
            self.resolver.publish()
        self.control = MorphReceiver(
            registry,
            diff_threshold=diff_threshold,
            mismatch_threshold=mismatch_threshold,
            contain_failures=contain_failures,
        )
        self.control.register_handler(OPEN_REQUEST, self._handle_open_request)
        self.control.register_handler(LEAVE_REQUEST, self._handle_leave_request)
        self.control.register_handler(
            RESPONSE_BY_VERSION[version], self._handle_open_response
        )
        self._event_receivers: Dict[str, MorphReceiver] = {}
        self._diff_threshold = diff_threshold
        self._mismatch_threshold = mismatch_threshold
        #: compiled source-side filters, keyed by derived channel id
        self._filters: Dict[str, ECodeProcedure] = {}
        self.filter_errors = 0
        self.filtered_out = 0
        # --- projection push-down state -------------------------------
        #: sender side: negotiated projection per (channel, parent format
        #: id) — {"format", "epoch", "pending"}; "pending" holds a
        #: narrowing until the next publish boundary (the epoch fence)
        self._projection_send: Dict[Tuple[str, int], Dict[str, Any]] = {}
        #: sink side: (channel, wire format id) pairs already examined
        #: for an interest announcement
        self._announced: Set[Tuple[str, int]] = set()
        #: parent formats whose interest this process announced, per
        #: (channel, parent format id) — retracted on leave_channel
        self._interest_parents: Dict[Tuple[str, int], IOFormat] = {}
        #: cached vectorized (envelope, payload) batch encoders per
        #: payload wire-format id
        self._batch_encoders: Dict[int, BatchEncoderFn] = {}
        if self.resolver is not None:
            # Chain (don't steal) the invalidation hook: a server reply
            # displacing cached format content must drop every morph
            # route compiled against the stale entry.
            previous = self.resolver.on_invalidate

            def _on_invalidate(format_id: int) -> None:
                if previous is not None:
                    previous(format_id)
                self._invalidate_routes(format_id)

            self.resolver.on_invalidate = _on_invalidate

    @property
    def address(self) -> str:
        return self.node.address

    def _send(self, destination: str, data: bytes) -> None:
        """Send through the reliable endpoint when configured, raw
        otherwise — every control and event message goes through here."""
        if self.reliable is not None:
            self.reliable.send(destination, data)
        else:
            self.node.send(destination, data)

    # ------------------------------------------------------------------
    # Channel lifecycle
    # ------------------------------------------------------------------

    def create_channel(self, channel_id: str) -> ChannelState:
        """Create a channel owned by this process."""
        if channel_id in self.channels:
            raise ChannelError(f"channel {channel_id!r} already exists here")
        channel = ChannelState(channel_id, creator_contact=self.address)
        channel.ready = True
        self.channels[channel_id] = channel
        if self.directory is not None:
            # Make the channel discoverable through the fabric: peers
            # with the same directory can open it without being told
            # this process's contact string out-of-band.
            self.directory.register_echo_channel(channel_id, self.address)
        return channel

    def create_derived_channel(
        self, parent_id: str, channel_id: str, filter_code: str
    ) -> ChannelState:
        """Create a *derived* channel: a sub-channel of *parent_id* whose
        events are the parent's events passing the ECode *filter*.

        The filter (params: ``input``, returning C-truthy to keep the
        event) is announced to the parent's sources, compiled there by
        DCG, and evaluated **at the source** — events that fail the
        filter never reach the wire, ECode's original role in ECho."""
        parent = self.channel(parent_id)
        if parent.creator_contact != self.address:
            raise ChannelError(
                f"only the creator of {parent_id!r} may derive channels from it"
            )
        if channel_id in self.channels:
            raise ChannelError(f"channel {channel_id!r} already exists here")
        try:
            compile_procedure(filter_code, ("input",), f"filter_{channel_id}")
        except ECodeError as exc:
            raise ChannelError(f"derived-channel filter does not compile: {exc}")
        channel = ChannelState(
            channel_id,
            creator_contact=self.address,
            parent_id=parent_id,
            filter_code=filter_code,
        )
        channel.ready = True
        self.channels[channel_id] = channel
        self._announce_derived(channel)
        return channel

    def _announce_derived(self, channel: ChannelState, only: "Optional[str]" = None) -> None:
        """Send DerivedChannelInfo + the derived channel's current
        membership to the parent's sources (or just to *only*)."""
        parent = self.channels.get(channel.parent_id or "")
        if parent is None:
            return
        info = DERIVED_INFO.make_record(
            parent_id=channel.parent_id,
            channel_id=channel.channel_id,
            filter_code=channel.filter_code or "",
        )
        response_format = RESPONSE_BY_VERSION[self.version]
        wire = self.pbio.encode(DERIVED_INFO, info) + self.pbio.encode(
            response_format, channel.to_response_record(response_format)
        )
        targets = [only] if only is not None else [
            member.contact
            for member in parent.sources()
            if member.contact != self.address
        ]
        for contact in targets:
            self._send(contact, wire)

    def open_channel(
        self,
        channel_id: str,
        creator: Optional[str] = None,
        as_source: bool = False,
        as_sink: bool = False,
    ) -> ChannelState:
        """Join a remote channel by sending a ChannelOpenRequest to its
        creator.  Membership becomes `ready` once the response arrives
        (run the network to completion first in tests).

        *creator* may be omitted when the process has a fabric
        *directory* — the creator contact is then resolved through it
        (registered echo channels first, shard owner otherwise)."""
        if creator is None:
            if self.directory is None:
                raise ChannelError(
                    f"opening {channel_id!r} without a creator contact "
                    "requires a fabric directory"
                )
            creator = self.directory.owner_contact(channel_id)
        channel = self.channels.get(channel_id)
        if channel is None:
            channel = ChannelState(channel_id, creator_contact=creator)
            self.channels[channel_id] = channel
        channel.is_source = channel.is_source or as_source
        channel.is_sink = channel.is_sink or as_sink
        request = OPEN_REQUEST.make_record(
            channel_id=channel_id,
            contact=self.address,
            is_Source=channel.is_source,
            is_Sink=channel.is_sink,
        )
        self._send(creator, self.pbio.encode(OPEN_REQUEST, request))
        return channel

    def leave_channel(self, channel_id: str) -> None:
        """Leave a previously opened channel.  The creator removes this
        process from the membership and refreshes every remaining
        member's replica; local subscriptions stop immediately."""
        channel = self.channel(channel_id)
        channel.is_source = False
        channel.is_sink = False
        channel.ready = False
        self._event_receivers.pop(channel_id, None)
        if channel.creator_contact == self.address:
            raise ChannelError("the channel creator cannot leave its channel")
        # Retract every interest this subscriber announced, so the
        # group's union projection can narrow back down without it.
        if self.resolver is not None:
            for key, parent in list(self._interest_parents.items()):
                chan, _pid = key
                if chan != channel_id:
                    continue
                del self._interest_parents[key]
                self.resolver.announce_interest(
                    channel_id, parent, None, retract=True
                )
            self._announced = {
                k for k in self._announced if k[0] != channel_id
            }
        request = LEAVE_REQUEST.make_record(
            channel_id=channel_id, contact=self.address
        )
        self._send(channel.creator_contact, self.pbio.encode(LEAVE_REQUEST, request))

    def channel(self, channel_id: str) -> ChannelState:
        try:
            return self.channels[channel_id]
        except KeyError:
            raise ChannelError(
                f"{self.address} has not joined channel {channel_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def event_receiver(self, channel_id: str) -> MorphReceiver:
        """The per-channel morphing receiver for application events."""
        receiver = self._event_receivers.get(channel_id)
        if receiver is None:
            receiver = MorphReceiver(
                self.registry,
                diff_threshold=self._diff_threshold,
                mismatch_threshold=self._mismatch_threshold,
                contain_failures=self.contain_failures,
            )
            self._event_receivers[channel_id] = receiver
        return receiver

    def subscribe(
        self, channel_id: str, fmt: IOFormat, handler: EventHandler
    ) -> None:
        """Register *handler* for events of *fmt* on *channel_id*.  The
        channel must have been created or opened as a sink."""
        channel = self.channel(channel_id)
        if not (channel.is_sink or channel.creator_contact == self.address):
            raise ChannelError(
                f"{self.address} did not open channel {channel_id!r} as a sink"
            )
        self.event_receiver(channel_id).register_handler(fmt, handler)
        # A new handler can change the receiver's liveness set; refresh
        # any interest this process already announced for the channel.
        self._reannounce(channel_id)

    # ------------------------------------------------------------------
    # Projection push-down (negotiated selective field transmission)
    # ------------------------------------------------------------------

    def _invalidate_routes(self, format_id: int) -> None:
        """Resolver invalidation: drop every cached morph route planned
        against the displaced format content."""
        self.control.invalidate_route(format_id)
        for receiver in self._event_receivers.values():
            receiver.invalidate_route(format_id)

    def _maybe_announce(self, channel_id: str, payload: Any) -> None:
        """Sink side: on the first event of each wire format per channel,
        announce this subscriber's interest set — the receiver's fused
        backward-liveness result for the (parent) format, or ``None``
        (full format) when no liveness set is provable.  The format
        server unions announcements across the channel's subscriber
        group and derives the projection the sender encodes to."""
        try:
            format_id = unpack_header(payload).format_id
        except Exception:  # noqa: BLE001 - hostile payload: nothing to announce
            return
        key = (channel_id, format_id)
        if key in self._announced:
            return
        self._announced.add(key)
        fmt = self.registry.lookup_id(format_id)
        if fmt is None:
            return
        parent = fmt
        if isinstance(fmt, ProjectionFormat):
            parent = self.registry.lookup_id(fmt.parent_format_id)
            if parent is None:
                return
        if parent.name == EVENT_ENVELOPE.name:
            return  # protocol plumbing is never projected
        parent_key = (channel_id, parent.format_id)
        if parent_key in self._interest_parents:
            return
        self._interest_parents[parent_key] = parent
        receiver = self._event_receivers.get(channel_id)
        if receiver is None:
            return
        interest = receiver.interest_for(parent)
        assert self.resolver is not None
        self.resolver.announce_interest(
            channel_id, parent,
            sorted(interest) if interest is not None else None,
        )

    def _reannounce(self, channel_id: str) -> None:
        """Re-announce every interest held for *channel_id* (after a new
        handler registration changed the receiver's liveness set)."""
        if self.resolver is None:
            return
        receiver = self._event_receivers.get(channel_id)
        if receiver is None:
            return
        for (chan, _pid), parent in list(self._interest_parents.items()):
            if chan != channel_id:
                continue
            interest = receiver.interest_for(parent)
            self.resolver.announce_interest(
                channel_id, parent,
                sorted(interest) if interest is not None else None,
            )

    def heartbeat(self) -> int:
        """Liveness tick: replay every interest announcement so the
        format-server fleet's TTL leases (``interest_ttl``) stay fresh.
        A process that stops heartbeating — crashed, partitioned — stops
        renewing, and its narrow interests age out of the union, widening
        the projection back for the group.  Returns the number of
        announcements replayed."""
        if self.resolver is None:
            return 0
        return self.resolver.reannounce_interests()

    def _projection_for(
        self, channel_id: str, fmt: IOFormat
    ) -> Optional[ProjectionFormat]:
        """Source side: the projection to encode *fmt* to on
        *channel_id*, or ``None`` for full-format sends.  The first call
        per (channel, format) starts watching the server's projection
        state; pending narrowings are promoted here — the publish
        boundary is the epoch fence, so a narrower format is never
        applied retroactively to frames already encoded."""
        if self.resolver is None or isinstance(fmt, ProjectionFormat):
            return None
        key = (channel_id, fmt.format_id)
        state = self._projection_send.get(key)
        if state is None:
            state = {"format": None, "epoch": 0, "pending": None}
            self._projection_send[key] = state
            self.resolver.watch_projection(
                channel_id, fmt,
                lambda update, _key=key, _fmt=fmt: self._on_projection_update(
                    _key, _fmt, update
                ),
            )
        pending = state["pending"]
        if pending is not None:
            state["format"] = pending["format"]
            state["epoch"] = pending["epoch"]
            state["pending"] = None
            self._note_renegotiation(fmt, state["format"], "narrowed")
        return state["format"]

    def _on_projection_update(
        self,
        key: Tuple[str, int],
        parent: IOFormat,
        update: Optional[ProjectionState],
    ) -> None:
        """A new projection state arrived (interest_state reply or
        projection_update push).  Widenings — including a return to the
        full format — apply immediately: every live field a subscriber
        could need is still transmitted.  Narrowings are epoch-fenced:
        parked until the next publish boundary, so in-flight frames and
        anything already encoded keep their (wider, still registered)
        format."""
        state = self._projection_send.get(key)
        if update is None or state is None:
            return
        epoch = update["epoch"]
        if epoch <= state["epoch"] and not (
            epoch == state["epoch"] == 0
        ):
            return  # stale or duplicate state: epochs are monotonic
        new_fmt: Optional[ProjectionFormat] = update["format"]
        current: Optional[ProjectionFormat] = state["format"]
        current_fields = (
            None if current is None else set(current.field_names())
        )
        new_fields = None if new_fmt is None else set(new_fmt.field_names())
        widening = new_fields is None or (
            current_fields is not None and new_fields >= current_fields
        )
        if widening:
            state["format"] = new_fmt
            state["epoch"] = epoch
            state["pending"] = None
            self._note_renegotiation(parent, new_fmt, "widened")
        else:
            state["pending"] = {"format": new_fmt, "epoch": epoch}

    def _note_renegotiation(
        self,
        parent: IOFormat,
        projection: Optional[ProjectionFormat],
        kind: str,
    ) -> None:
        if not OBS.enabled:
            return
        OBS.metrics.counter(
            "net.projection.renegotiations", kind=kind
        ).inc()
        ratio = (
            1.0 if projection is None
            else projection_ratio(projection, parent)
        )
        OBS.metrics.histogram("net.projection.field_ratio").observe(ratio)

    def _record_projected_send(
        self, parent: IOFormat, projection: ProjectionFormat, count: int
    ) -> None:
        if not OBS.enabled or not count:
            return
        OBS.metrics.counter("net.projection.messages").inc(count)
        saved = parent.min_wire_size - projection.min_wire_size
        if saved > 0:
            OBS.metrics.counter("net.projection.bytes_saved_est").inc(
                saved * count
            )

    def _batch_encoder(self, wire_fmt: IOFormat) -> BatchEncoderFn:
        """The cached vectorized (envelope, payload) batch encoder for
        *wire_fmt* — one generated routine packs K events straight into
        a BATCH1 body with a single buffer reservation."""
        encoder = self._batch_encoders.get(wire_fmt.format_id)
        if encoder is None:
            encoder = make_batch_encoder(
                (EVENT_ENVELOPE, wire_fmt), byte_order=self.pbio.byte_order
            )
            self._batch_encoders[wire_fmt.format_id] = encoder
        return encoder

    def _has_derived(self, channel_id: str) -> bool:
        return any(
            channel.parent_id == channel_id
            for channel in self.channels.values()
        )

    def submit(self, channel_id: str, fmt: IOFormat, record: Record) -> int:
        """Publish an event to the channel; returns the number of remote
        sinks it was pushed to.  Local subscription is delivered in-line."""
        channel = self.channel(channel_id)
        if not (channel.is_source or channel.creator_contact == self.address):
            raise ChannelError(
                f"{self.address} did not open channel {channel_id!r} as a source"
            )
        # A fresh distributed trace per published event.  Both the
        # envelope and the payload wires carry the 26-byte context block,
        # so a payload parked in the DLQ or replayed after a format fetch
        # still knows which trace it belongs to.  With tracing off, no
        # block is attached and the wire is byte-identical to an
        # untraced build.
        ctx: Optional[TraceContext] = None
        if OBS.enabled:
            ctx = make_context()
        # Encode to the channel's negotiated projection when one is
        # active — the projection's generated encoder reads only its own
        # (live) fields straight out of the full record.
        projection = self._projection_for(channel_id, fmt)
        wire_fmt = projection if projection is not None else fmt
        payload = self.pbio.encode(wire_fmt, record)
        if projection is not None:
            self._record_projected_send(fmt, projection, 1)
        envelope = EVENT_ENVELOPE.make_record(
            channel_id=channel_id, seq=channel.next_seq()
        )
        envelope_wire = self.pbio.encode(EVENT_ENVELOPE, envelope)
        if ctx is not None:
            payload = attach_trace(payload, ctx)
            envelope_wire = attach_trace(envelope_wire, ctx)
        datagram = envelope_wire + payload
        with activate(ctx), OBS.tracer.span(
            "echo.publish",
            channel=channel_id,
            process=self.address,
            format=fmt.name,
            vtime=self.network.now,
        ):
            pushed = 0
            for member in channel.sinks():
                if member.contact == self.address:
                    continue
                self._send(member.contact, datagram)
                pushed += 1
            if OBS.enabled and pushed:
                OBS.metrics.bounded_counter(
                    "echo.channel.events_pushed", channel=channel_id
                ).inc(pushed)
            if channel.is_sink and channel_id in self._event_receivers:
                self._deliver_event(
                    channel_id, self._event_receivers[channel_id], payload
                )
            if self._has_derived(channel_id):
                # Derived-channel sinks negotiate per *derived* channel,
                # not in the parent's subscriber group: forward the full
                # format, never the parent group's projection.
                derived_payload = payload
                if projection is not None:
                    derived_payload = self.pbio.encode(fmt, record)
                    if ctx is not None:
                        derived_payload = attach_trace(derived_payload, ctx)
                pushed += self._submit_derived(
                    channel_id, record, derived_payload, ctx
                )
        return pushed

    def submit_batch(
        self, channel_id: str, fmt: IOFormat, records: List[Record]
    ) -> int:
        """Publish *records* as **one** BATCH1 frame per remote sink.

        The whole group costs one transport send and one reliable
        sequence number per sink, and — when tracing is on — one
        frame-level trace context instead of one per event (the frame's
        context stays active across every contained message's delivery).
        Each event still gets its own envelope and channel sequence
        number, so per-message identity, ordering and exactly-once
        accounting are unchanged from :meth:`submit`.

        Returns the number of remote pushes, like :meth:`submit`."""
        if not records:
            return 0
        channel = self.channel(channel_id)
        if not (channel.is_source or channel.creator_contact == self.address):
            raise ChannelError(
                f"{self.address} did not open channel {channel_id!r} as a source"
            )
        ctx: Optional[TraceContext] = None
        if OBS.enabled:
            ctx = make_context()
        projection = self._projection_for(channel_id, fmt)
        wire_fmt = projection if projection is not None else fmt
        local_sink = channel.is_sink and channel_id in self._event_receivers
        has_derived = self._has_derived(channel_id)
        payloads: Optional[List[bytes]] = None
        if not local_sink and not has_derived and self.pbio.use_codegen:
            # Vectorized fast path: one generated routine packs every
            # (envelope, payload) pair straight into the BATCH1 body
            # with a single buffer reservation — byte-identical to the
            # compose-then-concat path below.
            rows = [
                (
                    EVENT_ENVELOPE.make_record(
                        channel_id=channel_id, seq=channel.next_seq()
                    ),
                    record,
                )
                for record in records
            ]
            frame = self._batch_encoder(wire_fmt)(rows, ctx)
        else:
            payloads = []
            datagrams: List[bytes] = []
            for record in records:
                payload = self.pbio.encode(wire_fmt, record)
                envelope = EVENT_ENVELOPE.make_record(
                    channel_id=channel_id, seq=channel.next_seq()
                )
                payloads.append(payload)
                datagrams.append(
                    self.pbio.encode(EVENT_ENVELOPE, envelope) + payload
                )
            frame = pack_batch(datagrams, ctx)
        if projection is not None:
            self._record_projected_send(fmt, projection, len(records))
        with activate(ctx), OBS.tracer.span(
            "echo.publish_batch",
            channel=channel_id,
            process=self.address,
            format=fmt.name,
            count=len(records),
            vtime=self.network.now,
        ):
            pushed = 0
            for member in channel.sinks():
                if member.contact == self.address:
                    continue
                self._send(member.contact, frame)
                pushed += 1
            if OBS.enabled and pushed:
                # same per-event accounting as the unbatched path, so
                # the batching differential oracle sees no divergence
                OBS.metrics.bounded_counter(
                    "echo.channel.events_pushed", channel=channel_id
                ).inc(pushed * len(records))
            if payloads is not None and local_sink:
                receiver = self._event_receivers[channel_id]
                for payload in payloads:
                    self._deliver_event(channel_id, receiver, payload)
            if payloads is not None and has_derived:
                derived_payloads = payloads
                if projection is not None:
                    derived_payloads = [
                        self.pbio.encode(fmt, record) for record in records
                    ]
                for record, payload in zip(records, derived_payloads):
                    pushed += self._submit_derived(
                        channel_id, record, payload, ctx
                    )
        return pushed

    def _deliver_event(
        self, channel_id: str, receiver: MorphReceiver, payload: bytes
    ) -> None:
        """Hand one event payload to the channel's morphing receiver,
        recording per-channel delivery metrics when observability is on."""
        if self.resolver is not None:
            self._maybe_announce(channel_id, payload)
        if not OBS.enabled:
            receiver.process(payload)
            return
        # The payload carries its own trace block (attached at submit),
        # so delivery resumed from a DLQ retry or a format-fetch replay
        # re-joins the original trace even though the publishing call
        # stack is long gone.
        with activate(peek_trace(payload)), OBS.tracer.span(
            "echo.deliver", channel=channel_id, process=self.address
        ):
            receiver.process(payload)
        OBS.metrics.bounded_counter(
            "echo.channel.events_delivered", channel=channel_id
        ).inc()

    def _submit_derived(
        self,
        parent_id: str,
        record: Record,
        payload: bytes,
        ctx: Optional[TraceContext] = None,
    ) -> int:
        """Run each derived channel's compiled filter on *record* at the
        source; forward the event to the derived sinks only when the
        filter keeps it (events that fail never touch the wire)."""
        pushed = 0
        for derived in list(self.channels.values()):
            if derived.parent_id != parent_id:
                continue
            filter_proc = self._filters.get(derived.channel_id)
            if filter_proc is None:
                if derived.filter_code:
                    try:
                        filter_proc = compile_procedure(
                            derived.filter_code, ("input",),
                            f"filter_{derived.channel_id}",
                        )
                    except ECodeError:
                        self.filter_errors += 1
                        continue
                    self._filters[derived.channel_id] = filter_proc
                else:
                    continue
            try:
                keep = filter_proc(record)
            except ECodeError:
                self.filter_errors += 1
                continue
            if not keep:
                self.filtered_out += 1
                if OBS.enabled:
                    OBS.metrics.bounded_counter(
                        "echo.channel.filtered_out",
                        channel=derived.channel_id,
                    ).inc()
                continue
            envelope = EVENT_ENVELOPE.make_record(
                channel_id=derived.channel_id, seq=derived.next_seq()
            )
            envelope_wire = self.pbio.encode(EVENT_ENVELOPE, envelope)
            if ctx is not None:
                envelope_wire = attach_trace(envelope_wire, ctx)
            datagram = envelope_wire + payload
            for member in derived.sinks():
                if member.contact == self.address:
                    continue
                self._send(member.contact, datagram)
                pushed += 1
        return pushed

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _park(self, format_id: int, replay: Callable[[], None]) -> None:
        """Park a message whose meta-data (format or transform closure)
        is missing locally: fetch it from the format-server fleet, then
        *replay*.  Messages whose format no server knows either are
        counted as unresolved and dropped."""
        self.parked += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "echo.process.parked", process=self.address
            ).inc()

        def _done(found: Optional[IOFormat]) -> None:
            if found is None:
                self.unresolved += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "echo.process.unresolved", process=self.address
                    ).inc()
                return
            # Processed with whatever meta-data the fetch yielded —
            # never re-parked, so a server missing the transforms
            # degrades to reconciliation instead of looping.
            self._refreshed.add(format_id)
            replay()

        assert self.resolver is not None
        self.resolver.refresh(format_id, _done)

    def _on_message(self, source: str, data: bytes) -> None:
        if is_batch(data):
            self._on_batch(source, data)
            return
        header = unpack_header(data)
        fmt = self.registry.lookup_id(header.format_id)
        if fmt is None and self.resolver is not None:
            self._park(header.format_id,
                       lambda: self._on_message(source, data))
            return
        self._current_peer = source
        # Restore the wire-carried trace context (None when untraced) so
        # every span recorded while dispatching — decode, MaxMatch, the
        # transform chain, handlers — joins the publisher's trace.
        body_end = header.body_offset + header.payload_length
        try:
            with activate(header.trace):
                self._dispatch_message(source, data, header, fmt, body_end)
        finally:
            self._current_peer = None

    def _on_batch(self, source: str, data: bytes) -> None:
        """Decompose one BATCH1 frame: validate it once, activate its
        frame-level trace once, then run every contained message through
        the normal dispatch as a zero-copy ``memoryview`` slice."""
        frame = unpack_batch(data)
        view = data if isinstance(data, memoryview) else memoryview(data)
        if not OBS.enabled:
            for off, length in frame.segments:
                self._on_message(source, view[off:off + length])
            return
        with activate(frame.trace), OBS.tracer.span(
            "echo.batch.receive", process=self.address, count=frame.count
        ):
            for off, length in frame.segments:
                self._on_message(source, view[off:off + length])

    def _dispatch_message(
        self,
        source: str,
        data: bytes,
        header: MessageHeader,
        fmt: Optional[IOFormat],
        body_end: int,
    ) -> None:
        if fmt is not None and fmt.name == DERIVED_INFO.name:
            info = self.pbio.decode_as(fmt, data[:body_end])
            trailing = data[body_end:]
            self._handle_derived_info(source, info, trailing)
        elif fmt is not None and fmt.name == EVENT_ENVELOPE.name:
            envelope = self.pbio.decode_as(fmt, data[:body_end])
            payload = data[body_end:]
            channel_id = envelope["channel_id"]
            receiver = self._event_receivers.get(channel_id)
            if receiver is not None:
                if self.resolver is not None and len(payload) > HEADER_SIZE:
                    payload_id = unpack_header(payload).format_id
                    payload_fmt = self.registry.lookup_id(payload_id)
                    if payload_id not in self._refreshed and (
                        payload_fmt is None
                        or not receiver.has_exact_route(payload_fmt)
                    ):
                        self._park(
                            payload_id,
                            lambda: self._deliver_event(
                                channel_id, receiver, payload
                            ),
                        )
                        return
                self._deliver_event(channel_id, receiver, payload)
        else:
            if (
                self.resolver is not None
                and fmt is not None
                and header.format_id not in self._refreshed
                and not self.control.has_exact_route(fmt)
            ):
                # Known format, but no handler and no transform
                # chain reaching one: pull the writer's transform
                # closure from the server before reconciling.
                self._park(header.format_id,
                           lambda: self._on_message(source, data))
                return
            self.control.process(data)

    # ------------------------------------------------------------------
    # Control handlers
    # ------------------------------------------------------------------

    def _handle_derived_info(
        self, source: str, info: Record, response_wire: bytes
    ) -> None:
        """A source's view of a derived channel: store the filter,
        compile it (DCG, cached), and ingest the membership replica."""
        channel_id = info["channel_id"]
        channel = self.channels.get(channel_id)
        if channel is None:
            channel = ChannelState(
                channel_id,
                creator_contact=source,
                parent_id=info["parent_id"],
                filter_code=info["filter_code"],
            )
            self.channels[channel_id] = channel
        else:
            channel.parent_id = info["parent_id"]
            channel.filter_code = info["filter_code"]
        try:
            self._filters[channel_id] = compile_procedure(
                info["filter_code"], ("input",), f"filter_{channel_id}"
            )
        except ECodeError:
            self.filter_errors += 1
            return
        if response_wire:
            self.control.process(response_wire)

    def _handle_open_request(self, record: Record) -> None:
        channel_id = record["channel_id"]
        channel = self.channels.get(channel_id)
        if channel is None or channel.creator_contact != self.address:
            return  # not the creator; drop (simulates a misrouted request)
        channel.add_member(
            record["contact"],
            is_source=bool(record["is_Source"]),
            is_sink=bool(record["is_Sink"]),
        )
        if record["is_Source"]:
            # a new source must learn this channel's derived children
            for child in self.channels.values():
                if child.parent_id == channel_id:
                    self._announce_derived(child, only=record["contact"])
        if channel.is_derived:
            # derived membership changed: refresh the parent's sources
            self._announce_derived(channel)
        response_format = RESPONSE_BY_VERSION[self.version]
        response = channel.to_response_record(response_format)
        wire = self.pbio.encode(response_format, response)
        # reply to the requester and refresh every other member's replica
        # (sorted: set iteration depends on string hash randomization,
        # and send order must be reproducible across processes for the
        # seeded fault-injection harness)
        targets = {record["contact"]}
        targets.update(
            member.contact
            for member in channel.member_list()
            if member.contact != self.address
        )
        for contact in sorted(targets):
            self._send(contact, wire)

    def _handle_leave_request(self, record: Record) -> None:
        channel = self.channels.get(record["channel_id"])
        if channel is None or channel.creator_contact != self.address:
            return
        removed = channel.remove_member(record["contact"])
        if removed is None:
            return
        response_format = RESPONSE_BY_VERSION[self.version]
        wire = self.pbio.encode(
            response_format, channel.to_response_record(response_format)
        )
        for member in channel.member_list():
            if member.contact != self.address:
                self._send(member.contact, wire)

    def _handle_open_response(self, record: Record) -> None:
        channel = self.channels.get(record["channel_id"])
        if channel is None:
            return
        channel.update_from_response(record)
        # keep our own declared roles (the response reflects them anyway,
        # but a racing update may predate our join)
        if channel.local_member_id is None:
            for member in channel.member_list():
                if member.contact == self.address:
                    channel.local_member_id = member.member_id
                    break
