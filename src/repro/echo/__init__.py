"""ECho — channel-based publish/subscribe event middleware (paper
Section 4.1), with message morphing integrated into both the control and
data planes."""

from repro.echo.channel import ChannelState, Member
from repro.echo.process import EChoProcess
from repro.echo.protocol import (
    EVENT_ENVELOPE,
    MEMBER_V1,
    MEMBER_V2,
    OPEN_REQUEST,
    RESPONSE_BY_VERSION,
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V1_TO_V2_TRANSFORM,
    V2_TO_V1_CODE,
    V2_TO_V1_TRANSFORM,
    register_protocol,
)

__all__ = [
    "ChannelState",
    "EChoProcess",
    "EVENT_ENVELOPE",
    "MEMBER_V1",
    "MEMBER_V2",
    "Member",
    "OPEN_REQUEST",
    "RESPONSE_BY_VERSION",
    "RESPONSE_V0",
    "RESPONSE_V1",
    "RESPONSE_V2",
    "V1_TO_V0_TRANSFORM",
    "V1_TO_V2_TRANSFORM",
    "V2_TO_V1_CODE",
    "V2_TO_V1_TRANSFORM",
    "register_protocol",
]
