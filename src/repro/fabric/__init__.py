"""repro.fabric — sharded multi-worker event fabric.

Channels are partitioned across a worker fleet by consistent hashing
over channel ids (:mod:`repro.fabric.hashing`); the
:class:`FabricDirectory` tracks membership under monotonically
increasing ownership epochs and orchestrates drain-and-forward shard
handoff so exactly-once delivery survives rebalancing.  Workers morph
at the owner (:mod:`repro.fabric.worker`) — each subscriber format
group gets one decode + transform chain + re-encode per event — so the
fleet scales morphing capacity, not just routing.

The fabric runs unchanged over the simulated deterministic transport
and the asyncio UDP loopback transport (:mod:`repro.net.socket`); both
honor the same node/timer contract (:mod:`repro.net.scheduler`).

See ``docs/FABRIC.md`` for the architecture and the handoff protocol;
``python -m repro.fabric --smoke`` runs a 2-worker loopback-socket
smoke check.
"""

from repro.fabric.hashing import (
    DEFAULT_NUM_SHARDS,
    HashRing,
    shard_of,
    stable_hash,
)
from repro.fabric.journal import JournalRecovery, JournalStore
from repro.fabric.membership import (
    EventFabric,
    FabricDirectory,
    RemoteWorker,
)
from repro.fabric.protocol import (
    FABRIC_DELIVER,
    FABRIC_FORMATS,
    FABRIC_HANDOFF,
    FABRIC_HANDOFF_ACK,
    FABRIC_PUBLISH,
    FABRIC_REDIRECT,
    FABRIC_SUBSCRIBE,
    register_fabric_protocol,
)
from repro.fabric.worker import FabricChannel, FabricWorker, SeqLedger
from repro.fabric.client import FabricClient

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "EventFabric",
    "FABRIC_DELIVER",
    "FABRIC_FORMATS",
    "FABRIC_HANDOFF",
    "FABRIC_HANDOFF_ACK",
    "FABRIC_PUBLISH",
    "FABRIC_REDIRECT",
    "FABRIC_SUBSCRIBE",
    "FabricChannel",
    "FabricClient",
    "FabricDirectory",
    "FabricWorker",
    "HashRing",
    "JournalRecovery",
    "JournalStore",
    "RemoteWorker",
    "SeqLedger",
    "register_fabric_protocol",
    "shard_of",
    "stable_hash",
]
