"""Fabric smoke check — a real multi-process deployment in miniature.

Usage::

    python -m repro.fabric --smoke [--workers N] [--messages M]

Spawns N worker processes on UDP loopback (each hosting one
:class:`~repro.fabric.worker.FabricWorker` and its own directory
replica), publishes M ChannelOpenResponse v2.0 events round-robin over
ownership-balanced channels, and asserts every one was morphed and
delivered exactly once.  Then replays the seeded churn scenario on the
simulated transport and asserts the exactly-once invariant held across
join/leave handoffs, and runs the crash-recovery A/B: the journaled
arm must survive a mid-stream owner kill with zero loss while the
no-journal ablation arm demonstrably loses or re-delivers events.
Exit 0 on success, 1 on any violation — the CI stage that guards the
subsystem end to end.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.bench.fabric import (
    bench_fabric_churn,
    bench_fabric_recovery,
    bench_fabric_scaling,
)


def _flag_value(args: List[str], flag: str, default: int) -> int:
    if flag in args:
        index = args.index(flag)
        if index + 1 >= len(args):
            raise SystemExit(f"error: {flag} requires an integer")
        return int(args[index + 1])
    return default


def main(argv: "Optional[List[str]]" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" not in args:
        print(__doc__)
        return 2
    workers = _flag_value(args, "--workers", 2)
    messages = _flag_value(args, "--messages", 240)

    failures: List[str] = []
    [row] = bench_fabric_scaling(
        worker_counts=(workers,), messages=messages
    )
    print(
        f"socket fleet: {row.workers} workers, {row.delivered}/"
        f"{row.messages} delivered in {row.wall_seconds * 1000:.0f} ms "
        f"(busiest worker {row.max_cpu_seconds * 1000:.1f} ms CPU)"
    )
    print(f"  per-worker processed: {row.worker_processed}")
    if row.delivered != messages:
        failures.append(
            f"socket fleet lost messages: {row.delivered}/{messages}"
        )
    if sum(row.worker_processed.values()) != messages:
        failures.append(
            "worker processed counts do not add up to the publish count: "
            f"{row.worker_processed}"
        )
    if min(row.worker_processed.values(), default=0) == 0 and workers > 1:
        failures.append(
            f"a worker processed nothing: {row.worker_processed}"
        )

    churn = bench_fabric_churn()
    print(
        f"sim churn: {churn.published} published, "
        f"{churn.delivered_v1}+{churn.delivered_v0} delivered, "
        f"{churn.duplicates} duplicates, {churn.handoffs} handoffs, "
        f"{churn.forwarded} forwarded, {churn.epochs} epochs"
    )
    if not churn.exactly_once:
        failures.append(
            "churn scenario violated exactly-once: "
            f"{churn.delivered_v1}+{churn.delivered_v0} of "
            f"{churn.published}, {churn.duplicates} duplicates"
        )
    if churn.handoffs == 0:
        failures.append("churn scenario produced no handoffs")

    recovery = bench_fabric_recovery(messages=24, crash_fractions=(0.5,))
    for row in recovery:
        print(
            f"sim recovery [{row.label}]: {row.delivered}/{row.published} "
            f"delivered, {row.lost} lost, {row.tail_duplicates} tail "
            f"duplicates suppressed, {row.replayed} replayed, "
            f"unavailable {row.unavailability_seconds * 1000:.0f} ms"
        )
    journal_rows = [r for r in recovery if r.journaled]
    ablation_rows = [r for r in recovery if not r.journaled]
    if any(not r.exactly_once for r in journal_rows):
        failures.append(
            "journaled recovery lost events: "
            + ", ".join(f"{r.label}: {r.lost}" for r in journal_rows)
        )
    if all(r.lost == 0 and r.tail_duplicates == 0 for r in ablation_rows):
        failures.append(
            "ablation arm showed no loss or duplicates — the crash "
            "scenario is not exercising the journal"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("fabric smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
