"""Fabric membership and shard ownership.

:class:`FabricDirectory` is the control plane: it tracks the worker
fleet, computes the shard assignment for each **ownership epoch**
(bumped on every join/leave), and orchestrates handoff of moved shards.
It is an out-of-band authority in the same sense the shared
:class:`~repro.pbio.registry.FormatRegistry` is — directory *lookups*
are in-process calls, but the handoff state itself and every data
message travel over the transport, so drain-and-forward behavior is
exercised on the wire.

Routing staleness is expected, not exceptional: clients cache
``(owner, epoch)`` per channel and keep publishing to the old owner
until a :data:`~repro.fabric.protocol.FABRIC_REDIRECT` corrects them;
the old owner forwards in the meantime.  Exactly-once is therefore a
receiver-side property (the per-publisher sequence ledgers that move
with the shard), never a routing property.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.hashing import DEFAULT_NUM_SHARDS, HashRing, shard_of
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.journal import JournalStore
    from repro.fabric.worker import FabricWorker

#: Default heartbeat-lease timeout (virtual seconds) when lease checking
#: is enabled without an explicit value.
DEFAULT_LEASE_TIMEOUT = 1.0


class RemoteWorker:
    """Stand-in for a worker whose process lives elsewhere.

    Shard assignment is a pure function of the member list, so every OS
    process can hold its own :class:`FabricDirectory` replica: it joins
    a :class:`RemoteWorker` for each remote fleet member (keeping ring
    membership and epoch in sync) and the real :class:`FabricWorker`
    for the one it hosts.  Ownership transitions for remote members are
    applied by the directory replica running in *their* process; this
    stub absorbs them as no-ops."""

    def __init__(self, address: str) -> None:
        self.address = address

    def grant_shard(self, shard: int, epoch: int) -> None:
        pass

    def begin_handoff(self, shard: int, successor: str, epoch: int) -> None:
        pass

    def owned_shards(self) -> List[int]:
        return []


class FabricDirectory:
    """Worker membership, shard assignment, and handoff orchestration.

    Parameters
    ----------
    num_shards:
        Partitioning granularity; every worker and client built from
        this directory inherits it.
    clock:
        Anything with a ``now`` property (the transport).  Required for
        lease-based failure detection; without it heartbeats are
        recorded but never expire.
    lease_timeout:
        Seconds (of *clock* time) a worker may go without renewing its
        heartbeat lease before :meth:`check_leases` declares it dead and
        crash-leaves it.
    """

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        clock: Optional[Any] = None,
        lease_timeout: Optional[float] = None,
    ) -> None:
        self.num_shards = num_shards
        self.clock = clock
        self.lease_timeout = lease_timeout
        self._ring = HashRing()
        self._workers: "Dict[str, FabricWorker]" = {}
        self.epoch = 0
        self.assignment: Dict[int, str] = {}
        #: shard -> epoch at which its *current* owner took it over —
        #: the fencing floor stale owners are checked against
        self.shard_epochs: Dict[int, int] = {}
        #: (shard, old, new) tuples per epoch — the rebalance audit log
        self.moves: List[Tuple[int, int, str, Optional[str]]] = []
        #: (epoch, address) per lease-expiry / crash-leave declaration
        self.deaths: List[Tuple[int, str]] = []
        #: worker address -> last heartbeat time
        self._leases: Dict[str, float] = {}
        self.lease_renewals = 0
        self.lease_rejections = 0
        self.lease_expirations = 0
        #: echo-hosted channels: channel id -> hosting contact string
        self._echo_channels: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def workers(self) -> List[str]:
        return self._ring.members

    def worker(self, address: str) -> "FabricWorker":
        try:
            return self._workers[address]
        except KeyError:
            raise FabricError(f"no worker {address!r} in the fabric") from None

    def join(self, worker: "FabricWorker") -> List[int]:
        """Add *worker* to the fleet; recompute the assignment under a
        new epoch and hand off every shard that moved.  Returns the
        shards the new worker received."""
        address = worker.address
        if address in self._ring:
            raise FabricError(f"worker {address!r} already joined")
        self._ring.add(address)
        self._workers[address] = worker
        self._leases[address] = self._now()
        return self._rebalance()

    def bootstrap(self, members: "List[object]") -> List[int]:
        """Cold-start the fleet: add every member to the ring and assign
        all shards under a single epoch.  Every shard is fresh, so no
        handoff traffic is generated — which is what lets directory
        *replicas* in separate OS processes (each holding
        :class:`RemoteWorker` stubs for the members it does not host)
        bootstrap from the same member list and agree on
        ``(assignment, epoch)`` without any wire exchange."""
        if self._workers or self.assignment:
            raise FabricError("bootstrap requires an empty directory")
        for worker in members:
            address = worker.address  # type: ignore[attr-defined]
            if address in self._ring:
                raise FabricError(f"worker {address!r} already joined")
            self._ring.add(address)
            self._workers[address] = worker  # type: ignore[assignment]
            self._leases[address] = self._now()
        return self._rebalance()

    def leave(self, address: str) -> List[int]:
        """Remove the worker at *address*: its shards are handed off to
        the survivors (the leaving worker keeps draining-and-forwarding
        stale traffic until its process actually dies).  Returns the
        shards that moved."""
        if address not in self._ring:
            raise FabricError(f"worker {address!r} never joined")
        if len(self._ring) == 1:
            raise FabricError("cannot remove the last worker")
        self._ring.remove(address)
        # The leaver stays in ``_workers`` through the rebalance so
        # begin_handoff runs on it — graceful leave drains-and-forwards;
        # only then does it stop being addressable through the
        # directory (its node keeps forwarding stale traffic for as
        # long as the process lives).
        moved = self._rebalance()
        leaver = self._workers.pop(address)
        self._leases.pop(address, None)
        assert not leaver.owned_shards()
        return moved

    def crash_leave(self, address: str) -> List[int]:
        """Remove a worker whose process is gone (or presumed gone —
        lease expiry lands here too): no handoff can run, so its shards
        are granted to the survivors directly and each grantee recovers
        what it can from the shared ledger journal.  Returns the shards
        that moved."""
        if address not in self._ring:
            raise FabricError(f"worker {address!r} never joined")
        if len(self._ring) == 1:
            raise FabricError("cannot declare the last worker dead")
        self._ring.remove(address)
        # Unlike a graceful leave, the corpse is dropped from _workers
        # *before* the rebalance: begin_handoff must never run on it,
        # so every moved shard takes the grant-without-state path (and
        # recovers from the journal there).
        self._workers.pop(address, None)
        self._leases.pop(address, None)
        self.deaths.append((self.epoch + 1, address))
        return self._rebalance()

    # ------------------------------------------------------------------
    # Leases (failure detection)
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return 0.0 if self.clock is None else self.clock.now

    def heartbeat(self, address: str) -> bool:
        """Renew *address*'s lease.  A worker the directory no longer
        lists (declared dead, never joined) gets ``False`` — renewal
        must never resurrect a fenced-out corpse; it has to re-join."""
        if address not in self._ring:
            self.lease_rejections += 1
            if OBS.enabled:
                OBS.metrics.counter("fabric.lease.rejected").inc()
            return False
        self._leases[address] = self._now()
        self.lease_renewals += 1
        if OBS.enabled:
            OBS.metrics.counter("fabric.lease.renewals").inc()
            remaining = self.lease_remaining(address)
            if remaining is not None:
                OBS.metrics.gauge(
                    "fabric.lease.ttl", worker=address
                ).set(remaining)
        return True

    def lease_remaining(self, address: str) -> Optional[float]:
        """Seconds until *address*'s lease expires: ``lease_timeout``
        minus the time since its last heartbeat.  ``None`` when lease
        checking is off (no timeout / no clock) or the worker holds no
        lease (never joined, or already declared dead).  May be
        negative — an expired-but-not-yet-collected lease."""
        if self.lease_timeout is None or self.clock is None:
            return None
        granted = self._leases.get(address)
        if granted is None:
            return None
        return self.lease_timeout - (self._now() - granted)

    def check_leases(self) -> List[str]:
        """Declare every worker whose lease missed its deadline dead and
        crash-leave it (shards reassigned under a bumped epoch).  The
        last worker is never expired — a fleet with nowhere to move
        shards keeps limping rather than losing the assignment.  Returns
        the addresses declared dead."""
        if self.lease_timeout is None or self.clock is None:
            return []
        now = self._now()
        expired = [
            address
            for address in list(self._ring.members)
            if now - self._leases.get(address, now) > self.lease_timeout
        ]
        dead: List[str] = []
        for address in expired:
            if len(self._ring) == 1:
                break
            self.crash_leave(address)
            dead.append(address)
            self.lease_expirations += 1
            if OBS.enabled:
                OBS.metrics.counter("fabric.lease.expired").inc()
        if OBS.enabled:
            for address in self._ring.members:
                remaining = self.lease_remaining(address)
                if remaining is not None:
                    OBS.metrics.gauge(
                        "fabric.lease.ttl", worker=address
                    ).set(remaining)
        return dead

    def _rebalance(self) -> List[int]:
        new_assignment = self._ring.assign(self.num_shards)
        self.epoch += 1
        moved: List[int] = []
        for shard in range(self.num_shards):
            old = self.assignment.get(shard)
            new = new_assignment[shard]
            if old == new:
                continue
            moved.append(shard)
            self.moves.append((self.epoch, shard, new, old))
            self.shard_epochs[shard] = self.epoch
            new_worker = self._workers[new]
            if old is None:
                # Fresh shard: granted directly, nothing to drain.
                new_worker.grant_shard(shard, self.epoch)
            else:
                old_worker = self._workers.get(old)
                if old_worker is None:
                    # The old owner's process is gone (crash-leave):
                    # grant without a handoff — the grantee recovers the
                    # shard's exactly-once state from the shared ledger
                    # journal (when one is wired) and fences the old
                    # epoch out; publishers re-route via redirects.
                    new_worker.grant_shard(shard, self.epoch)
                else:
                    old_worker.begin_handoff(shard, new, self.epoch)
        self.assignment = new_assignment
        return moved

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_epoch(self, shard: int) -> int:
        """The epoch the shard's current owner took it over at — the
        fencing floor: a worker whose owned epoch is older is a stale
        resurrected owner and must not admit publishes."""
        return self.shard_epochs.get(shard, 0)

    def owner_of_shard(self, shard: int) -> str:
        try:
            return self.assignment[shard]
        except KeyError:
            raise FabricError(
                f"shard {shard} unassigned (no workers joined yet?)"
            ) from None

    def owner(self, channel_id: str) -> str:
        """Authoritative owner address for a channel (current epoch)."""
        return self.owner_of_shard(shard_of(channel_id, self.num_shards))

    def route(self, channel_id: str) -> Tuple[str, int]:
        """(owner, epoch) for a channel — what clients cache."""
        return self.owner(channel_id), self.epoch

    # ------------------------------------------------------------------
    # ECho integration (channel routing through the fabric)
    # ------------------------------------------------------------------

    def register_echo_channel(self, channel_id: str, contact: str) -> None:
        """Record that an ECho channel is hosted at *contact* (a worker's
        co-hosted ECho process) so creator-less
        :meth:`~repro.echo.process.EChoProcess.open_channel` calls can
        resolve it."""
        self._echo_channels[channel_id] = contact

    def owner_contact(self, channel_id: str) -> str:
        """The contact string an ECho process should open *channel_id*
        against — the directory protocol
        :class:`~repro.echo.process.EChoProcess` accepts."""
        contact = self._echo_channels.get(channel_id)
        if contact is not None:
            return contact
        return self.owner(channel_id)


class EventFabric:
    """Convenience facade: one directory + one transport + a shared
    format plane, with worker/client factories that wire everything the
    same way.

    ``transport`` is any object honoring the
    :class:`~repro.net.transport.Network` node contract — the simulated
    network or :class:`~repro.net.socket.SocketNetwork` both qualify,
    which is the pluggable-transport point of the subsystem.
    """

    def __init__(
        self,
        network: object,
        registry: object = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        format_servers: "Optional[List[str]]" = None,
        reliable: bool = False,
        journal: "Optional[JournalStore]" = None,
        lease_timeout: Optional[float] = None,
    ) -> None:
        self.network = network
        self.registry = registry
        self.format_servers = format_servers
        self.reliable = reliable
        self.journal = journal
        self.directory = FabricDirectory(
            num_shards=num_shards, clock=network, lease_timeout=lease_timeout,
        )

    def add_worker(self, address: str, **options: object) -> "FabricWorker":
        from repro.fabric.worker import FabricWorker

        options.setdefault("registry", self.registry)
        options.setdefault("format_servers", self.format_servers)
        options.setdefault("reliable", self.reliable)
        options.setdefault("journal", self.journal)
        worker = FabricWorker(self.directory, self.network, address, **options)
        self.directory.join(worker)
        return worker

    def remove_worker(self, address: str) -> List[int]:
        return self.directory.leave(address)

    def crash_worker(self, address: str) -> "FabricWorker":
        """SIGKILL-style: stop the worker's process (volatile state and
        in-flight sends die with it) *without* telling the directory —
        failure detection is the lease checker's job.  Returns the
        crashed worker so the scenario can later :meth:`restart
        <repro.fabric.worker.FabricWorker.restart>` it."""
        worker = self.directory.worker(address)
        worker.crash()
        return worker

    def client(self, address: str, **options: object) -> "FabricClient":
        from repro.fabric.client import FabricClient

        options.setdefault("registry", self.registry)
        options.setdefault("format_servers", self.format_servers)
        options.setdefault("reliable", self.reliable)
        return FabricClient(self.directory, self.network, address, **options)
