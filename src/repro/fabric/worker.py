"""Fabric worker — owns shards, morphs at the owner, hands off cleanly.

A :class:`FabricWorker` is one member of the sharded fleet.  For every
shard it owns it runs the full morphing data plane: decode the published
payload, run the ECode transform chain to each subscriber format group,
reconcile, re-encode, and push a :data:`FABRIC_DELIVER` to every
subscriber in the group.  Morphing happens **at the owner** so adding
workers adds morphing capacity — the property the scaling bench
measures.

Exactly-once across rebalancing rests on three mechanisms:

* a per-``(channel, publisher)`` :class:`SeqLedger` (contiguous
  high-water mark plus a sparse out-of-order set) that admits each
  sequence number once,
* **drain-and-forward handoff**: the old owner snapshots the shard's
  channel state (subscribers + ledgers) into a
  :data:`FABRIC_HANDOFF` message, stops owning, and forwards any
  late-arriving traffic raw to the successor — forwarded bytes are
  untouched, so trace blocks survive the extra hop,
* a **pending buffer** on the successor for traffic that outruns the
  handoff state message (reordering under jitter), replayed once the
  state lands.

Duplicate paths all converge on the ledger: a publisher retry absorbed
by the reliable layer never reaches us; a retry that raced a handoff is
forwarded to the successor, whose moved ledger already admitted the
sequence number and drops it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import FabricError
from repro.fabric.hashing import shard_of
from repro.fabric.protocol import (
    FABRIC_DELIVER,
    FABRIC_HANDOFF,
    FABRIC_HANDOFF_ACK,
    FABRIC_PUBLISH,
    FABRIC_REDIRECT,
    FABRIC_SUBSCRIBE,
    register_fabric_protocol,
)
from repro.morph.receiver import MorphReceiver
from repro.net.batch import is_batch, unpack_batch
from repro.net.reliable import ReliableEndpoint
from repro.obs import OBS
from repro.obs.tracectx import activate, current
from repro.pbio.buffer import attach_trace, peek_trace, unpack_header
from repro.pbio.context import PBIOContext
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry
from repro.pbio.server import CachingFormatResolver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.membership import FabricDirectory

#: Per-shard cap on messages buffered while handoff state is in flight.
PENDING_LIMIT = 1024


class SeqLedger:
    """Exactly-once admission for one ``(channel, publisher)`` stream.

    ``high`` is the highest *contiguous* sequence admitted (all of
    ``1..high`` seen); ``sparse`` holds admitted numbers beyond the gap.
    The pair serializes to a couple of integers for most workloads,
    which is what keeps handoff state small.
    """

    __slots__ = ("high", "sparse")

    def __init__(self, high: int = 0, sparse: Optional[Set[int]] = None) -> None:
        self.high = high
        self.sparse: Set[int] = set(sparse or ())

    def admit(self, seq: int) -> bool:
        """True exactly once per sequence number."""
        if seq <= self.high or seq in self.sparse:
            return False
        self.sparse.add(seq)
        while self.high + 1 in self.sparse:
            self.high += 1
            self.sparse.discard(self.high)
        return True

    @property
    def admitted(self) -> int:
        return self.high + len(self.sparse)

    def to_state(self) -> Dict[str, Any]:
        return {"high": self.high, "sparse": sorted(self.sparse)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SeqLedger":
        return cls(int(state.get("high", 0)), set(state.get("sparse", ())))


class _SubscriberGroup:
    """Subscribers of one channel sharing one event format.

    Each group owns a :class:`MorphReceiver` whose single handler
    re-encodes the morphed record in the group format and pushes it to
    every contact — one decode+transform per *format group*, not per
    subscriber."""

    __slots__ = ("fmt", "contacts", "receiver")

    def __init__(self, fmt: IOFormat, receiver: MorphReceiver) -> None:
        self.fmt = fmt
        self.contacts: List[str] = []
        self.receiver = receiver


class FabricChannel:
    """Owner-side state of one channel: subscriber groups + ledgers."""

    __slots__ = ("channel_id", "groups", "ledgers")

    def __init__(self, channel_id: str) -> None:
        self.channel_id = channel_id
        #: format_id -> subscriber group
        self.groups: Dict[int, _SubscriberGroup] = {}
        #: publisher address -> exactly-once ledger
        self.ledgers: Dict[str, SeqLedger] = {}

    def subscribers(self) -> List[Tuple[str, int]]:
        return [
            (contact, format_id)
            for format_id, group in sorted(self.groups.items())
            for contact in group.contacts
        ]


class FabricWorker:
    """One sharded-fabric worker process.

    Parameters mirror :class:`~repro.echo.process.EChoProcess`: the
    worker sits on one transport node (optionally wrapped in a
    :class:`~repro.net.reliable.ReliableEndpoint`), shares the format
    registry out-of-band or resolves formats through the server fleet
    on demand (*format_servers* / *resolver*).
    """

    def __init__(
        self,
        directory: "FabricDirectory",
        network: Any,
        address: str,
        registry: Optional[FormatRegistry] = None,
        reliable: bool = False,
        reliable_options: Optional[Dict[str, Any]] = None,
        resolver: Optional[CachingFormatResolver] = None,
        format_servers: Optional[List[str]] = None,
        resolver_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.directory = directory
        self.network = network
        self.node = network.add_node(address)
        if resolver is None and format_servers:
            options = dict(resolver_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            resolver = CachingFormatResolver(
                network, f"{address}:meta", servers=format_servers,
                registry=registry, **options,
            )
        self.resolver = resolver
        if registry is None:
            if resolver is None:
                raise FabricError(
                    "FabricWorker needs a registry, a resolver, or "
                    "format_servers"
                )
            registry = resolver.registry
        self.registry = registry
        register_fabric_protocol(registry)
        self.pbio = PBIOContext(registry)
        self.reliable: Optional[ReliableEndpoint] = None
        if reliable:
            options = dict(reliable_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            self.reliable = ReliableEndpoint(network, node=self.node, **options)
            self.reliable.set_handler(self._on_message)
        else:
            self.node.set_handler(self._on_message)
        if self.resolver is not None:
            self.resolver.publish()
        #: shard -> ownership epoch
        self._owned: Dict[int, int] = {}
        #: shard -> (successor address, epoch it moved under)
        self._forwarding: Dict[int, Tuple[str, int]] = {}
        #: shard -> raw datagrams that outran the handoff state message
        self._pending: Dict[int, List[Tuple[str, bytes]]] = {}
        self._channels: Dict[str, FabricChannel] = {}
        #: format ids already refreshed from the server fleet
        self._refreshed: Set[int] = set()
        #: set while fanning out one publish, read by group handlers
        self._delivering: Optional[Tuple[str, str, int, bytes]] = None
        self.processed = 0
        self.duplicates = 0
        self.forwarded = 0
        self.deliveries = 0
        self.handoffs_sent = 0
        self.handoffs_received = 0
        self.handoffs_acked = 0
        self.redirects_sent = 0
        self.errors = 0

    @property
    def address(self) -> str:
        return self.node.address

    def owned_shards(self) -> List[int]:
        return sorted(self._owned)

    def owns(self, channel_id: str) -> bool:
        return shard_of(channel_id, self.directory.num_shards) in self._owned

    def _send(self, destination: str, data: bytes) -> None:
        if self.reliable is not None:
            self.reliable.send(destination, data)
        else:
            self.node.send(destination, data)

    def _update_owned_gauge(self) -> None:
        if OBS.enabled:
            OBS.metrics.gauge(
                "fabric.shards_owned", worker=self.address
            ).set(len(self._owned))

    # ------------------------------------------------------------------
    # Ownership transitions (driven by the directory)
    # ------------------------------------------------------------------

    def grant_shard(self, shard: int, epoch: int) -> None:
        """Own *shard* with no predecessor state (fresh shard, or the
        predecessor's process crashed before it could hand off)."""
        self._owned[shard] = epoch
        self._forwarding.pop(shard, None)
        self._update_owned_gauge()
        self._replay_pending(shard)

    def begin_handoff(self, shard: int, successor: str, epoch: int) -> None:
        """Drain-and-forward handoff of *shard* to *successor*: snapshot
        the shard's channels (subscribers + ledgers), ship the snapshot,
        stop owning, and forward stale traffic from here on."""
        if shard not in self._owned:
            # Stacked membership changes: the shard's snapshot is still
            # in flight to us from the previous owner.  Mark the relay —
            # when the snapshot lands, _on_handoff passes it straight on
            # to the newer successor instead of installing it here.
            self._forwarding[shard] = (successor, epoch)
            return
        state: Dict[str, Any] = {"channels": {}}
        for channel_id in sorted(self._channels):
            if shard_of(channel_id, self.directory.num_shards) != shard:
                continue
            channel = self._channels.pop(channel_id)
            state["channels"][channel_id] = {
                "subscribers": channel.subscribers(),
                "ledgers": {
                    publisher: ledger.to_state()
                    for publisher, ledger in sorted(channel.ledgers.items())
                },
            }
        del self._owned[shard]
        self._forwarding[shard] = (successor, epoch)
        self._update_owned_gauge()
        self.handoffs_sent += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.handoff", worker=self.address, role="source"
            ).inc()
        record = FABRIC_HANDOFF.make_record(
            shard=shard, epoch=epoch, state=json.dumps(state, sort_keys=True)
        )
        self._send(successor, self.pbio.encode(FABRIC_HANDOFF, record))

    def _replay_pending(self, shard: int) -> None:
        for source, data in self._pending.pop(shard, ()):
            self._on_message(source, data)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _park(self, format_id: int, replay: Callable[[], None]) -> None:
        """Fetch missing meta-data from the format-server fleet, then
        replay (mirrors :meth:`EChoProcess._park`)."""

        def _done(found: Optional[IOFormat]) -> None:
            self._refreshed.add(format_id)
            if found is None:
                self.errors += 1
                return
            replay()

        assert self.resolver is not None
        self.resolver.refresh(format_id, _done)

    def _on_message(self, source: str, data: bytes) -> None:
        if is_batch(data):
            self._on_batch(source, data)
            return
        header = unpack_header(data)
        fmt = self.registry.lookup_id(header.format_id)
        if fmt is None:
            if self.resolver is not None and header.format_id not in self._refreshed:
                self._park(header.format_id,
                           lambda: self._on_message(source, data))
            else:
                self.errors += 1
            return
        body_end = header.body_offset + header.payload_length
        record = self.pbio.decode_as(fmt, data[:body_end])
        trailing = data[body_end:]
        name = fmt.name
        if name == FABRIC_PUBLISH.name:
            self._on_publish(source, data, record, trailing)
        elif name == FABRIC_SUBSCRIBE.name:
            self._on_subscribe(source, data, record)
        elif name == FABRIC_HANDOFF.name:
            self._on_handoff(source, record)
        elif name == FABRIC_HANDOFF_ACK.name:
            self.handoffs_acked += 1
        else:
            self.errors += 1

    def _on_batch(self, source: str, data: bytes) -> None:
        """Decompose one BATCH1 frame element-by-element through the
        normal dispatch: each contained message carries its own envelope
        and sequence number, so ledger admission, reroute/forwarding and
        the pending buffer all keep their per-message exactly-once
        semantics — a frame that races a handoff can have some elements
        delivered here and the rest forwarded or buffered individually."""
        try:
            frame = unpack_batch(data)
        except Exception:  # noqa: BLE001 - malformed frame from a peer
            self.errors += 1
            return
        view = data if isinstance(data, memoryview) else memoryview(data)
        with activate(frame.trace):
            for off, length in frame.segments:
                self._on_message(source, view[off:off + length])

    def _reroute(
        self, shard: int, source: str, data: bytes, reply_to: str, channel_id: str
    ) -> None:
        """A channel message for a shard we do not own: forward it raw
        (drain-and-forward — payload bytes, trace block included, pass
        untouched) or buffer it if our own handoff state is in flight."""
        owner = self.directory.assignment.get(shard)
        if owner == self.address:
            # We are the new owner but the FABRIC_HANDOFF snapshot has
            # not landed yet — hold the message, replay on arrival.
            pending = self._pending.setdefault(shard, [])
            if len(pending) >= PENDING_LIMIT:
                self.errors += 1
                return
            pending.append((source, data))
            return
        if shard in self._forwarding:
            target = self._forwarding[shard][0]
        elif owner is not None:
            target = owner
        else:
            self.errors += 1
            return
        self.forwarded += 1
        if OBS.enabled:
            OBS.metrics.counter("fabric.forwarded", worker=self.address).inc()
        self._send(target, data)
        self._send_redirect(channel_id, reply_to)

    def _send_redirect(self, channel_id: str, contact: str) -> None:
        try:
            owner, epoch = self.directory.route(channel_id)
        except FabricError:
            return
        self.redirects_sent += 1
        if OBS.enabled:
            OBS.metrics.counter("fabric.redirects", worker=self.address).inc()
        record = FABRIC_REDIRECT.make_record(
            channel_id=channel_id, owner=owner, epoch=epoch
        )
        self._send(contact, self.pbio.encode(FABRIC_REDIRECT, record))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _channel(self, channel_id: str) -> FabricChannel:
        channel = self._channels.get(channel_id)
        if channel is None:
            channel = FabricChannel(channel_id)
            self._channels[channel_id] = channel
        return channel

    def _on_publish(
        self, source: str, data: bytes, record: Any, payload: bytes
    ) -> None:
        channel_id = record["channel_id"]
        shard = shard_of(channel_id, self.directory.num_shards)
        if shard not in self._owned:
            self._reroute(shard, source, data, record["publisher"], channel_id)
            return
        if record["epoch"] != self.directory.epoch:
            # Stale route: deliver anyway (we own it), but correct the
            # publisher's cache so it stops paying the extra hop.
            self._send_redirect(channel_id, record["publisher"])
        channel = self._channel(channel_id)
        ledger = channel.ledgers.get(record["publisher"])
        if ledger is None:
            ledger = channel.ledgers[record["publisher"]] = SeqLedger()
        if not ledger.admit(record["seq"]):
            self.duplicates += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.duplicates", worker=self.address
                ).inc()
            return
        self.processed += 1
        if OBS.enabled:
            OBS.metrics.bounded_counter(
                "fabric.shard.processed", shard=str(shard)
            ).inc()
        self._fan_out(channel, record["publisher"], record["seq"], payload)

    def _fan_out(
        self, channel: FabricChannel, publisher: str, seq: int, payload: bytes
    ) -> None:
        """Morph-at-owner: run the payload through each format group's
        receiver; the group handler re-encodes and pushes."""
        if not channel.groups:
            return
        # Batch-inner messages carry no per-message trace block — the
        # frame-level context activated by _on_batch covers them.
        ctx = peek_trace(payload) or current()
        self._delivering = (channel.channel_id, publisher, seq, payload)
        try:
            with activate(ctx), OBS.tracer.span(
                "fabric.morph",
                channel=channel.channel_id,
                worker=self.address,
            ):
                for _format_id, group in sorted(channel.groups.items()):
                    if not group.contacts:
                        continue
                    group.receiver.process(payload)
        finally:
            self._delivering = None

    def _make_group(
        self, channel: FabricChannel, fmt: IOFormat
    ) -> _SubscriberGroup:
        receiver = MorphReceiver(self.registry, contain_failures=True)
        group = _SubscriberGroup(fmt, receiver)

        def deliver(morphed: Any, _group: _SubscriberGroup = group) -> None:
            self._deliver_group(_group, morphed)

        receiver.register_handler(fmt, deliver)
        return group

    def _deliver_group(self, group: _SubscriberGroup, morphed: Any) -> None:
        assert self._delivering is not None
        channel_id, publisher, seq, original = self._delivering
        out_payload = self.pbio.encode(group.fmt, morphed)
        envelope = FABRIC_DELIVER.make_record(
            channel_id=channel_id, publisher=publisher, seq=seq
        )
        envelope_wire = self.pbio.encode(FABRIC_DELIVER, envelope)
        # Re-attach the original publish's trace block so the delivery
        # hop joins the same trace even though the payload was
        # re-encoded in the subscriber's format.  Batch-published events
        # have no per-message block; their frame-level context is the
        # active one.
        ctx = peek_trace(original) or current()
        if ctx is not None:
            out_payload = attach_trace(out_payload, ctx)
            envelope_wire = attach_trace(envelope_wire, ctx)
        datagram = envelope_wire + out_payload
        for contact in group.contacts:
            self._send(contact, datagram)
            self.deliveries += 1

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def _on_subscribe(self, source: str, data: bytes, record: Any) -> None:
        channel_id = record["channel_id"]
        shard = shard_of(channel_id, self.directory.num_shards)
        if shard not in self._owned:
            self._reroute(shard, source, data, record["contact"], channel_id)
            return
        self._install_subscriber(
            channel_id, record["contact"], record["format_id"]
        )

    def _install_subscriber(
        self, channel_id: str, contact: str, format_id: int
    ) -> None:
        fmt = self.registry.lookup_id(format_id)
        if fmt is None:
            if self.resolver is not None and format_id not in self._refreshed:
                self._park(
                    format_id,
                    lambda: self._install_subscriber(
                        channel_id, contact, format_id
                    ),
                )
            else:
                self.errors += 1
            return
        channel = self._channel(channel_id)
        group = channel.groups.get(format_id)
        if group is None:
            group = channel.groups[format_id] = self._make_group(channel, fmt)
        if contact not in group.contacts:
            group.contacts.append(contact)

    # ------------------------------------------------------------------
    # Handoff receive side
    # ------------------------------------------------------------------

    def _on_handoff(self, source: str, record: Any) -> None:
        shard = record["shard"]
        epoch = record["epoch"]
        relay = self._forwarding.get(shard)
        if relay is not None and relay[1] >= epoch:
            # Ownership moved on (to ``relay``) while this snapshot was
            # in flight: relay it under the newer epoch, stay in
            # forwarding mode, and flush anything we buffered while the
            # directory briefly pointed at us.
            target, relay_epoch = relay
            self.handoffs_sent += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.handoff", worker=self.address, role="relay"
                ).inc()
            relayed = FABRIC_HANDOFF.make_record(
                shard=shard, epoch=relay_epoch, state=record["state"]
            )
            self._send(target, self.pbio.encode(FABRIC_HANDOFF, relayed))
            ack = FABRIC_HANDOFF_ACK.make_record(shard=shard, epoch=epoch)
            self._send(source, self.pbio.encode(FABRIC_HANDOFF_ACK, ack))
            self._replay_pending(shard)
            return
        try:
            state = json.loads(record["state"])
        except ValueError:
            self.errors += 1
            raise FabricError(
                f"malformed handoff state for shard {shard}"
            ) from None
        for channel_id, channel_state in state.get("channels", {}).items():
            for publisher, ledger_state in channel_state.get(
                "ledgers", {}
            ).items():
                channel = self._channel(channel_id)
                merged = channel.ledgers.get(publisher)
                if merged is None:
                    channel.ledgers[publisher] = SeqLedger.from_state(
                        ledger_state
                    )
                else:
                    # Shouldn't happen (a shard lives in one place), but
                    # merging is strictly safer than replacing.
                    restored = SeqLedger.from_state(ledger_state)
                    for seq in range(1, restored.high + 1):
                        merged.admit(seq)
                    for seq in restored.sparse:
                        merged.admit(seq)
            for contact, format_id in channel_state.get("subscribers", ()):
                self._install_subscriber(channel_id, contact, format_id)
        self._owned[shard] = epoch
        self._forwarding.pop(shard, None)
        self._update_owned_gauge()
        self.handoffs_received += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.handoff", worker=self.address, role="target"
            ).inc()
        ack = FABRIC_HANDOFF_ACK.make_record(shard=shard, epoch=epoch)
        self._send(source, self.pbio.encode(FABRIC_HANDOFF_ACK, ack))
        self._replay_pending(shard)
