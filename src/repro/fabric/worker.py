"""Fabric worker — owns shards, morphs at the owner, hands off cleanly.

A :class:`FabricWorker` is one member of the sharded fleet.  For every
shard it owns it runs the full morphing data plane: decode the published
payload, run the ECode transform chain to each subscriber format group,
reconcile, re-encode, and push a :data:`FABRIC_DELIVER` to every
subscriber in the group.  Morphing happens **at the owner** so adding
workers adds morphing capacity — the property the scaling bench
measures.

Exactly-once across rebalancing rests on three mechanisms:

* a per-``(channel, publisher)`` :class:`SeqLedger` (contiguous
  high-water mark plus a sparse out-of-order set) that admits each
  sequence number once,
* **drain-and-forward handoff**: the old owner snapshots the shard's
  channel state (subscribers + ledgers) into a
  :data:`FABRIC_HANDOFF` message, stops owning, and forwards any
  late-arriving traffic raw to the successor — forwarded bytes are
  untouched, so trace blocks survive the extra hop,
* a **pending buffer** on the successor for traffic that outruns the
  handoff state message (reordering under jitter), replayed once the
  state lands.

Duplicate paths all converge on the ledger: a publisher retry absorbed
by the reliable layer never reaches us; a retry that raced a handoff is
forwarded to the successor, whose moved ledger already admitted the
sequence number and drops it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import FabricError
from repro.fabric.hashing import shard_of
from repro.fabric.journal import JournalStore
from repro.fabric.protocol import (
    FABRIC_DELIVER,
    FABRIC_HANDOFF,
    FABRIC_HANDOFF_ACK,
    FABRIC_PUBLISH,
    FABRIC_REDIRECT,
    FABRIC_SUBSCRIBE,
    register_fabric_protocol,
)
from repro.morph.receiver import MorphReceiver
from repro.net.batch import is_batch, unpack_batch
from repro.net.reliable import ReliableEndpoint
from repro.obs import OBS
from repro.obs.tracectx import activate, current
from repro.pbio.buffer import attach_trace, peek_trace, unpack_header
from repro.pbio.context import PBIOContext
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry
from repro.pbio.server import CachingFormatResolver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.membership import FabricDirectory

#: Per-shard cap on messages buffered while handoff state is in flight.
PENDING_LIMIT = 1024

#: Target size (JSON characters) of one FABRIC_HANDOFF part.  Channel
#: state is split at channel granularity, so one oversized channel still
#: travels whole — the bound is a soft target, not a hard frame limit.
HANDOFF_CHUNK_BYTES = 8192


class SeqLedger:
    """Exactly-once admission for one ``(channel, publisher)`` stream.

    ``high`` is the highest *contiguous* sequence admitted (all of
    ``1..high`` seen); ``sparse`` holds admitted numbers beyond the gap.
    The pair serializes to a couple of integers for most workloads,
    which is what keeps handoff state small.
    """

    __slots__ = ("high", "sparse")

    def __init__(self, high: int = 0, sparse: Optional[Set[int]] = None) -> None:
        self.high = high
        self.sparse: Set[int] = set(sparse or ())

    def admit(self, seq: int) -> bool:
        """True exactly once per sequence number."""
        if seq <= self.high or seq in self.sparse:
            return False
        self.sparse.add(seq)
        while self.high + 1 in self.sparse:
            self.high += 1
            self.sparse.discard(self.high)
        return True

    @property
    def admitted(self) -> int:
        return self.high + len(self.sparse)

    def to_state(self) -> Dict[str, Any]:
        return {"high": self.high, "sparse": sorted(self.sparse)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SeqLedger":
        """Rebuild a ledger from :meth:`to_state` output.

        Handoff snapshots and journal recoveries both funnel through
        here, so the input is network- or disk-derived: validate it and
        raise a clean :class:`FabricError` instead of letting a
        ``KeyError``/``TypeError`` escape or silently admitting bogus
        sequence numbers."""
        if not isinstance(state, dict):
            raise FabricError(
                f"ledger state must be a mapping, got {type(state).__name__}"
            )
        high = state.get("high", 0)
        if isinstance(high, bool) or not isinstance(high, int) or high < 0:
            raise FabricError(f"ledger state has invalid high mark {high!r}")
        sparse = state.get("sparse", ())
        if not isinstance(sparse, (list, tuple, set, frozenset)):
            raise FabricError(
                "ledger state sparse set must be a sequence, got "
                f"{type(sparse).__name__}"
            )
        cleaned: Set[int] = set()
        for seq in sparse:
            if isinstance(seq, bool) or not isinstance(seq, int) or seq <= 0:
                raise FabricError(
                    f"ledger state has invalid sparse entry {seq!r}"
                )
            if seq <= high:
                raise FabricError(
                    f"ledger state sparse entry {seq} is below high mark "
                    f"{high}"
                )
            cleaned.add(seq)
        return cls(high, cleaned)


class _SubscriberGroup:
    """Subscribers of one channel sharing one event format.

    Each group owns a :class:`MorphReceiver` whose single handler
    re-encodes the morphed record in the group format and pushes it to
    every contact — one decode+transform per *format group*, not per
    subscriber."""

    __slots__ = ("fmt", "contacts", "receiver")

    def __init__(self, fmt: IOFormat, receiver: MorphReceiver) -> None:
        self.fmt = fmt
        self.contacts: List[str] = []
        self.receiver = receiver


class FabricChannel:
    """Owner-side state of one channel: subscriber groups + ledgers."""

    __slots__ = ("channel_id", "groups", "ledgers")

    def __init__(self, channel_id: str) -> None:
        self.channel_id = channel_id
        #: format_id -> subscriber group
        self.groups: Dict[int, _SubscriberGroup] = {}
        #: publisher address -> exactly-once ledger
        self.ledgers: Dict[str, SeqLedger] = {}

    def subscribers(self) -> List[Tuple[str, int]]:
        return [
            (contact, format_id)
            for format_id, group in sorted(self.groups.items())
            for contact in group.contacts
        ]


class FabricWorker:
    """One sharded-fabric worker process.

    Parameters mirror :class:`~repro.echo.process.EChoProcess`: the
    worker sits on one transport node (optionally wrapped in a
    :class:`~repro.net.reliable.ReliableEndpoint`), shares the format
    registry out-of-band or resolves formats through the server fleet
    on demand (*format_servers* / *resolver*).
    """

    def __init__(
        self,
        directory: "FabricDirectory",
        network: Any,
        address: str,
        registry: Optional[FormatRegistry] = None,
        reliable: bool = False,
        reliable_options: Optional[Dict[str, Any]] = None,
        resolver: Optional[CachingFormatResolver] = None,
        format_servers: Optional[List[str]] = None,
        resolver_options: Optional[Dict[str, Any]] = None,
        journal: Optional[JournalStore] = None,
        handoff_chunk_bytes: int = HANDOFF_CHUNK_BYTES,
    ) -> None:
        self.directory = directory
        self.network = network
        self.node = network.add_node(address)
        if resolver is None and format_servers:
            options = dict(resolver_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            resolver = CachingFormatResolver(
                network, f"{address}:meta", servers=format_servers,
                registry=registry, **options,
            )
        self.resolver = resolver
        if registry is None:
            if resolver is None:
                raise FabricError(
                    "FabricWorker needs a registry, a resolver, or "
                    "format_servers"
                )
            registry = resolver.registry
        self.registry = registry
        register_fabric_protocol(registry)
        self.pbio = PBIOContext(registry)
        self.reliable: Optional[ReliableEndpoint] = None
        if reliable:
            options = dict(reliable_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            self.reliable = ReliableEndpoint(network, node=self.node, **options)
            self.reliable.set_handler(self._on_message)
        else:
            self.node.set_handler(self._on_message)
        if self.resolver is not None:
            self.resolver.publish()
        #: shard -> ownership epoch
        self._owned: Dict[int, int] = {}
        #: shard -> (successor address, epoch it moved under)
        self._forwarding: Dict[int, Tuple[str, int]] = {}
        #: shard -> raw datagrams that outran the handoff state message
        self._pending: Dict[int, List[Tuple[str, bytes]]] = {}
        self._channels: Dict[str, FabricChannel] = {}
        #: format ids already refreshed from the server fleet
        self._refreshed: Set[int] = set()
        #: set while fanning out one publish, read by group handlers
        self._delivering: Optional[Tuple[str, str, int, bytes]] = None
        #: write-ahead ledger journal shared with whoever inherits our
        #: shards (None disables journaling — the crash-ablation arm)
        self.journal = journal
        self.handoff_chunk_bytes = handoff_chunk_bytes
        #: (shard, epoch) -> {part index -> channels dict} for multi-part
        #: handoff snapshots still being assembled
        self._handoff_staging: Dict[Tuple[int, int], Dict[int, Dict[str, Any]]] = {}
        #: (shard, epoch) -> part indices already relayed onward
        self._relay_seen: Dict[Tuple[int, int], Set[int]] = {}
        self._crashed = False
        #: set True to model a directory partition: the worker keeps
        #: serving traffic but stops renewing its lease
        self.heartbeats_suspended = False
        self._heartbeat_interval: Optional[float] = None
        self._heartbeat_timer: Optional[Any] = None
        #: optional TelemetryAgent whose scrapes piggy-back on heartbeats
        self.telemetry: Optional[Any] = None
        self.processed = 0
        self.duplicates = 0
        self.forwarded = 0
        self.deliveries = 0
        self.handoffs_sent = 0
        self.handoffs_received = 0
        self.handoffs_acked = 0
        self.handoffs_rejected = 0
        self.handoff_parts_sent = 0
        self.redirects_sent = 0
        self.fenced = 0
        self.recovered_shards = 0
        self.tail_replayed = 0
        self.errors = 0

    @property
    def address(self) -> str:
        return self.node.address

    def owned_shards(self) -> List[int]:
        return sorted(self._owned)

    def owns(self, channel_id: str) -> bool:
        return shard_of(channel_id, self.directory.num_shards) in self._owned

    def _send(self, destination: str, data: bytes) -> None:
        if self.reliable is not None:
            self.reliable.send(destination, data)
        else:
            self.node.send(destination, data)

    def _update_owned_gauge(self) -> None:
        if OBS.enabled:
            OBS.metrics.gauge(
                "fabric.shards_owned", worker=self.address
            ).set(len(self._owned))

    # ------------------------------------------------------------------
    # Ownership transitions (driven by the directory)
    # ------------------------------------------------------------------

    def grant_shard(self, shard: int, epoch: int) -> None:
        """Own *shard* with no predecessor state (fresh shard, or the
        predecessor's process crashed before it could hand off).  With a
        journal attached, crash-granted shards are rebuilt from the
        predecessor's journaled admissions before we serve traffic."""
        self._owned[shard] = epoch
        self._forwarding.pop(shard, None)
        if self.journal is not None:
            self._recover_shard(shard, epoch)
        self._update_owned_gauge()
        self._replay_pending(shard)

    def _recover_shard(self, shard: int, epoch: int) -> None:
        """Rebuild *shard* from the journal and fence out its past.

        Fencing first: any stale owner that resurrects and tries to
        journal under its old epoch is rejected at the store.  Then the
        journaled snapshot + admissions are installed through the same
        validated path as a handoff, and the *tail* — admissions after
        the last snapshot, whose deliveries may have died with the old
        owner — is fanned out again.  Subscriber-side ledgers suppress
        and count the re-deliveries that did land the first time, which
        is the "explicitly-counted duplicates at the journal tail"
        contract."""
        recovery = self.journal.recover(shard)
        self.journal.fence(shard, epoch)
        if recovery is None:
            return
        self.recovered_shards += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.recovery.shards", worker=self.address
            ).inc()
        try:
            self._install_channel_state(recovery.state.get("channels", {}))
        except FabricError:
            self.errors += 1
            raise
        for channel_id, publisher, seq, payload in recovery.tail:
            channel = self._channels.get(channel_id)
            if channel is None:
                continue
            self.tail_replayed += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.recovery.replayed", worker=self.address
                ).inc()
            self._fan_out(channel, publisher, seq, payload)
        # The recovered state is the new baseline: compact so the next
        # crash replays from here, not from the predecessor's history.
        self.journal.snapshot(shard, epoch, self._shard_state(shard))

    # ------------------------------------------------------------------
    # Crash / restart / lease lifecycle
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """SIGKILL the process model.

        Incoming traffic stops (the node closes), unacked outgoing sends
        die without a GAP farewell (:meth:`ReliableEndpoint.
        abort_in_flight` — a dead process sends nothing), and all
        volatile shard state is wiped.  Two things survive, matching
        what a real deployment keeps off-heap: the journal (the durable
        medium) and the endpoint's sequence-number session state — a
        modeling simplification standing in for the session
        re-establishment handshake a production transport would run."""
        if self._crashed:
            return
        self._crashed = True
        self.stop_heartbeats()
        if self.telemetry is not None:
            self.telemetry.stop()
            self.telemetry = None
        self.node.close()
        if self.reliable is not None:
            self.reliable.abort_in_flight()
        self._owned.clear()
        self._forwarding.clear()
        self._pending.clear()
        self._channels.clear()
        self._handoff_staging.clear()
        self._relay_seen.clear()
        self._delivering = None
        self._update_owned_gauge()

    def restart(self) -> None:
        """Reopen the transport after a crash.  Shard state stays empty
        until the caller rejoins the directory (``directory.join``),
        which re-grants shards through the journal-recovery path."""
        if not self._crashed:
            raise FabricError(f"worker {self.address} is not crashed")
        self._crashed = False
        self.node.reopen()

    def heartbeat(self) -> bool:
        """Renew our directory lease; piggy-back projection-interest
        re-announcement so TTL-aged interests of a live worker stay
        fresh.  Returns False without touching the directory when the
        worker is crashed or partitioned (``heartbeats_suspended``)."""
        if self._crashed or self.heartbeats_suspended:
            return False
        renewed = self.directory.heartbeat(self.address)
        if renewed and self.resolver is not None:
            self.resolver.reannounce_interests()
        if renewed and self.telemetry is not None:
            # Telemetry rides the liveness cadence: scrapes happen at
            # most once per agent interval, clocked by the same timer
            # that renews the lease — no extra timer, and a crashed
            # worker's telemetry stops exactly when its lease does.
            self.telemetry.maybe_scrape(self.network.now)
        return renewed

    def attach_telemetry(self, agent: Any) -> None:
        """Piggy-back *agent*'s scrapes on this worker's heartbeats (see
        :meth:`heartbeat`); detached automatically on :meth:`crash`."""
        self.telemetry = agent

    def start_heartbeats(self, interval: float) -> None:
        """Self-rescheduling lease renewal every *interval* seconds.
        Note for simulated networks: an armed heartbeat timer keeps the
        event queue non-empty, so drive ``net.run(max_time=...)`` in
        steps (or call :meth:`heartbeat` manually) instead of expecting
        quiescence."""
        self.stop_heartbeats()
        self._heartbeat_interval = interval
        self._heartbeat_timer = self.network.call_later(
            interval, self._heartbeat_tick
        )

    def _heartbeat_tick(self) -> None:
        self._heartbeat_timer = None
        if self._heartbeat_interval is None or self._crashed:
            return
        self.heartbeat()
        self._heartbeat_timer = self.network.call_later(
            self._heartbeat_interval, self._heartbeat_tick
        )

    def stop_heartbeats(self) -> None:
        self._heartbeat_interval = None
        timer = self._heartbeat_timer
        self._heartbeat_timer = None
        if timer is not None:
            timer.cancel()

    def _shard_state(self, shard: int) -> Dict[str, Any]:
        """Non-destructive snapshot of *shard*'s channel state, in the
        shape shared by handoffs and journal snapshots."""
        state: Dict[str, Any] = {"channels": {}}
        for channel_id in sorted(self._channels):
            if shard_of(channel_id, self.directory.num_shards) != shard:
                continue
            channel = self._channels[channel_id]
            state["channels"][channel_id] = {
                "subscribers": channel.subscribers(),
                "ledgers": {
                    publisher: ledger.to_state()
                    for publisher, ledger in sorted(channel.ledgers.items())
                },
            }
        return state

    def _chunk_state(self, state: Dict[str, Any]) -> List[str]:
        """Split a shard snapshot into bounded-size JSON parts at
        channel granularity.  A single channel larger than the target
        still travels whole; an empty shard yields one empty part so
        the successor always sees a complete handoff."""
        channels = state.get("channels", {})
        if not channels:
            return [json.dumps(state, sort_keys=True)]
        parts: List[str] = []
        current: Dict[str, Any] = {}
        size = 0
        for channel_id in sorted(channels):
            piece = len(json.dumps(
                {channel_id: channels[channel_id]}, sort_keys=True
            ))
            if current and size + piece > self.handoff_chunk_bytes:
                parts.append(json.dumps({"channels": current}, sort_keys=True))
                current, size = {}, 0
            current[channel_id] = channels[channel_id]
            size += piece
        parts.append(json.dumps({"channels": current}, sort_keys=True))
        return parts

    def begin_handoff(self, shard: int, successor: str, epoch: int) -> None:
        """Drain-and-forward handoff of *shard* to *successor*: snapshot
        the shard's channels (subscribers + ledgers), ship the snapshot
        in bounded-size parts, stop owning, and forward stale traffic
        from here on."""
        if shard not in self._owned:
            # Stacked membership changes: the shard's snapshot is still
            # in flight to us from the previous owner.  Mark the relay —
            # when the snapshot lands, _on_handoff passes it straight on
            # to the newer successor instead of installing it here.
            self._forwarding[shard] = (successor, epoch)
            return
        state = self._shard_state(shard)
        for channel_id in list(state["channels"]):
            self._channels.pop(channel_id, None)
        del self._owned[shard]
        self._forwarding[shard] = (successor, epoch)
        self._update_owned_gauge()
        self.handoffs_sent += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.handoff", worker=self.address, role="source"
            ).inc()
        chunks = self._chunk_state(state)
        total = len(chunks)
        for index, chunk in enumerate(chunks):
            self.handoff_parts_sent += 1
            record = FABRIC_HANDOFF.make_record(
                shard=shard, epoch=epoch, part=index, parts=total,
                state=chunk,
            )
            self._send(successor, self.pbio.encode(FABRIC_HANDOFF, record))

    def _replay_pending(self, shard: int) -> None:
        for source, data in self._pending.pop(shard, ()):
            self._on_message(source, data)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _park(self, format_id: int, replay: Callable[[], None]) -> None:
        """Fetch missing meta-data from the format-server fleet, then
        replay (mirrors :meth:`EChoProcess._park`)."""

        def _done(found: Optional[IOFormat]) -> None:
            self._refreshed.add(format_id)
            if found is None:
                self.errors += 1
                return
            replay()

        assert self.resolver is not None
        self.resolver.refresh(format_id, _done)

    def _on_message(self, source: str, data: bytes) -> None:
        if is_batch(data):
            self._on_batch(source, data)
            return
        header = unpack_header(data)
        fmt = self.registry.lookup_id(header.format_id)
        if fmt is None:
            if self.resolver is not None and header.format_id not in self._refreshed:
                self._park(header.format_id,
                           lambda: self._on_message(source, data))
            else:
                self.errors += 1
            return
        body_end = header.body_offset + header.payload_length
        record = self.pbio.decode_as(fmt, data[:body_end])
        trailing = data[body_end:]
        name = fmt.name
        if name == FABRIC_PUBLISH.name:
            self._on_publish(source, data, record, trailing)
        elif name == FABRIC_SUBSCRIBE.name:
            self._on_subscribe(source, data, record)
        elif name == FABRIC_HANDOFF.name:
            self._on_handoff(source, record)
        elif name == FABRIC_HANDOFF_ACK.name:
            self.handoffs_acked += 1
        else:
            self.errors += 1

    def _on_batch(self, source: str, data: bytes) -> None:
        """Decompose one BATCH1 frame element-by-element through the
        normal dispatch: each contained message carries its own envelope
        and sequence number, so ledger admission, reroute/forwarding and
        the pending buffer all keep their per-message exactly-once
        semantics — a frame that races a handoff can have some elements
        delivered here and the rest forwarded or buffered individually."""
        try:
            frame = unpack_batch(data)
        except Exception:  # noqa: BLE001 - malformed frame from a peer
            self.errors += 1
            return
        view = data if isinstance(data, memoryview) else memoryview(data)
        with activate(frame.trace):
            for off, length in frame.segments:
                self._on_message(source, view[off:off + length])

    def _reroute(
        self, shard: int, source: str, data: bytes, reply_to: str, channel_id: str
    ) -> None:
        """A channel message for a shard we do not own: forward it raw
        (drain-and-forward — payload bytes, trace block included, pass
        untouched) or buffer it if our own handoff state is in flight."""
        owner = self.directory.assignment.get(shard)
        if owner == self.address:
            # We are the new owner but the FABRIC_HANDOFF snapshot has
            # not landed yet — hold the message, replay on arrival.
            pending = self._pending.setdefault(shard, [])
            if len(pending) >= PENDING_LIMIT:
                self.errors += 1
                return
            pending.append((source, data))
            return
        if shard in self._forwarding:
            target = self._forwarding[shard][0]
        elif owner is not None:
            target = owner
        else:
            self.errors += 1
            return
        self.forwarded += 1
        if OBS.enabled:
            OBS.metrics.counter("fabric.forwarded", worker=self.address).inc()
        self._send(target, data)
        self._send_redirect(channel_id, reply_to)

    def _send_redirect(self, channel_id: str, contact: str) -> None:
        try:
            owner, epoch = self.directory.route(channel_id)
        except FabricError:
            return
        self.redirects_sent += 1
        if OBS.enabled:
            OBS.metrics.counter("fabric.redirects", worker=self.address).inc()
        record = FABRIC_REDIRECT.make_record(
            channel_id=channel_id, owner=owner, epoch=epoch
        )
        self._send(contact, self.pbio.encode(FABRIC_REDIRECT, record))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _channel(self, channel_id: str) -> FabricChannel:
        channel = self._channels.get(channel_id)
        if channel is None:
            channel = FabricChannel(channel_id)
            self._channels[channel_id] = channel
        return channel

    def _fence_check(self, shard: int) -> bool:
        """True if we believed we owned *shard* but the directory has
        moved it under a newer epoch — the resurrected-stale-owner case.
        Drops the zombie ownership (and its channel state, which the
        new owner rebuilt from the journal) so the caller falls through
        to the reroute path instead of admitting under a dead epoch."""
        owned_epoch = self._owned.get(shard)
        if owned_epoch is None:
            return False
        if self.directory.shard_epoch(shard) <= owned_epoch:
            return False
        del self._owned[shard]
        for channel_id in [
            cid for cid in self._channels
            if shard_of(cid, self.directory.num_shards) == shard
        ]:
            del self._channels[channel_id]
        self.fenced += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.fence.rejected", worker=self.address
            ).inc()
        self._update_owned_gauge()
        return True

    def _on_publish(
        self, source: str, data: bytes, record: Any, payload: bytes
    ) -> None:
        channel_id = record["channel_id"]
        shard = shard_of(channel_id, self.directory.num_shards)
        self._fence_check(shard)
        if shard not in self._owned:
            self._reroute(shard, source, data, record["publisher"], channel_id)
            return
        if record["epoch"] != self.directory.epoch:
            # Stale route: deliver anyway (we own it), but correct the
            # publisher's cache so it stops paying the extra hop.
            self._send_redirect(channel_id, record["publisher"])
        channel = self._channel(channel_id)
        ledger = channel.ledgers.get(record["publisher"])
        if ledger is None:
            ledger = channel.ledgers[record["publisher"]] = SeqLedger()
        if not ledger.admit(record["seq"]):
            self.duplicates += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.duplicates", worker=self.address
                ).inc()
            return
        if self.journal is not None:
            # Write-ahead: the admission is durable before any delivery
            # leaves, so a crash between here and the fan-out loses no
            # admitted event — the successor replays it from the tail.
            self.journal.append_admit(
                shard, self._owned[shard], channel_id,
                record["publisher"], record["seq"], payload,
            )
            if self.journal.should_compact(shard):
                self._compact_shard(shard)
        self.processed += 1
        if OBS.enabled:
            OBS.metrics.bounded_counter(
                "fabric.shard.processed", shard=str(shard)
            ).inc()
        self._fan_out(channel, record["publisher"], record["seq"], payload)

    def _compact_shard(self, shard: int) -> None:
        self.journal.snapshot(
            shard, self._owned[shard], self._shard_state(shard)
        )

    def _fan_out(
        self, channel: FabricChannel, publisher: str, seq: int, payload: bytes
    ) -> None:
        """Morph-at-owner: run the payload through each format group's
        receiver; the group handler re-encodes and pushes."""
        if not channel.groups:
            return
        # Batch-inner messages carry no per-message trace block — the
        # frame-level context activated by _on_batch covers them.
        ctx = peek_trace(payload) or current()
        self._delivering = (channel.channel_id, publisher, seq, payload)
        try:
            with activate(ctx), OBS.tracer.span(
                "fabric.morph",
                channel=channel.channel_id,
                worker=self.address,
            ):
                for _format_id, group in sorted(channel.groups.items()):
                    if not group.contacts:
                        continue
                    group.receiver.process(payload)
        finally:
            self._delivering = None

    def _make_group(
        self, channel: FabricChannel, fmt: IOFormat
    ) -> _SubscriberGroup:
        receiver = MorphReceiver(self.registry, contain_failures=True)
        group = _SubscriberGroup(fmt, receiver)

        def deliver(morphed: Any, _group: _SubscriberGroup = group) -> None:
            self._deliver_group(_group, morphed)

        receiver.register_handler(fmt, deliver)
        return group

    def _deliver_group(self, group: _SubscriberGroup, morphed: Any) -> None:
        assert self._delivering is not None
        channel_id, publisher, seq, original = self._delivering
        out_payload = self.pbio.encode(group.fmt, morphed)
        envelope = FABRIC_DELIVER.make_record(
            channel_id=channel_id, publisher=publisher, seq=seq
        )
        envelope_wire = self.pbio.encode(FABRIC_DELIVER, envelope)
        # Re-attach the original publish's trace block so the delivery
        # hop joins the same trace even though the payload was
        # re-encoded in the subscriber's format.  Batch-published events
        # have no per-message block; their frame-level context is the
        # active one.
        ctx = peek_trace(original) or current()
        if ctx is not None:
            out_payload = attach_trace(out_payload, ctx)
            envelope_wire = attach_trace(envelope_wire, ctx)
        datagram = envelope_wire + out_payload
        for contact in group.contacts:
            self._send(contact, datagram)
            self.deliveries += 1

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def _on_subscribe(self, source: str, data: bytes, record: Any) -> None:
        channel_id = record["channel_id"]
        shard = shard_of(channel_id, self.directory.num_shards)
        self._fence_check(shard)
        if shard not in self._owned:
            self._reroute(shard, source, data, record["contact"], channel_id)
            return
        self._install_subscriber(
            channel_id, record["contact"], record["format_id"]
        )
        if self.journal is not None:
            self.journal.append_subscribe(
                shard, self._owned[shard], channel_id,
                record["contact"], record["format_id"],
            )
            if self.journal.should_compact(shard):
                self._compact_shard(shard)

    def _install_subscriber(
        self, channel_id: str, contact: str, format_id: int
    ) -> None:
        fmt = self.registry.lookup_id(format_id)
        if fmt is None:
            if self.resolver is not None and format_id not in self._refreshed:
                self._park(
                    format_id,
                    lambda: self._install_subscriber(
                        channel_id, contact, format_id
                    ),
                )
            else:
                self.errors += 1
            return
        channel = self._channel(channel_id)
        group = channel.groups.get(format_id)
        if group is None:
            group = channel.groups[format_id] = self._make_group(channel, fmt)
        if contact not in group.contacts:
            group.contacts.append(contact)

    # ------------------------------------------------------------------
    # Handoff receive side
    # ------------------------------------------------------------------

    def _install_channel_state(
        self, channels_state: Dict[str, Any]
    ) -> None:
        """Install handoff/recovery channel state, validating shape as
        we go.  Network- and disk-derived input both land here, so
        every structural surprise becomes a :class:`FabricError`."""
        if not isinstance(channels_state, dict):
            raise FabricError(
                "channel state must be a mapping, got "
                f"{type(channels_state).__name__}"
            )
        for channel_id, channel_state in channels_state.items():
            if not isinstance(channel_id, str) or not isinstance(
                channel_state, dict
            ):
                raise FabricError(
                    f"malformed channel entry {channel_id!r}"
                )
            ledgers = channel_state.get("ledgers", {})
            if not isinstance(ledgers, dict):
                raise FabricError(
                    f"channel {channel_id!r} ledgers must be a mapping"
                )
            for publisher, ledger_state in ledgers.items():
                channel = self._channel(channel_id)
                merged = channel.ledgers.get(publisher)
                restored = SeqLedger.from_state(ledger_state)
                if merged is None:
                    channel.ledgers[publisher] = restored
                else:
                    # Shouldn't happen (a shard lives in one place), but
                    # merging is strictly safer than replacing.
                    for seq in range(1, restored.high + 1):
                        merged.admit(seq)
                    for seq in restored.sparse:
                        merged.admit(seq)
            subscribers = channel_state.get("subscribers", ())
            if not isinstance(subscribers, (list, tuple)):
                raise FabricError(
                    f"channel {channel_id!r} subscribers must be a list"
                )
            for entry in subscribers:
                if (
                    not isinstance(entry, (list, tuple))
                    or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or isinstance(entry[1], bool)
                    or not isinstance(entry[1], int)
                ):
                    raise FabricError(
                        f"channel {channel_id!r} has malformed subscriber "
                        f"entry {entry!r}"
                    )
                self._install_subscriber(channel_id, entry[0], entry[1])

    def _on_handoff(self, source: str, record: Any) -> None:
        shard = record["shard"]
        epoch = record["epoch"]
        part = record["part"]
        parts = max(1, record["parts"])
        if part >= parts:
            self.errors += 1
            raise FabricError(
                f"handoff part {part}/{parts} out of range for shard {shard}"
            )
        relay = self._forwarding.get(shard)
        if relay is not None and relay[1] >= epoch:
            # Ownership moved on (to ``relay``) while this snapshot was
            # in flight: relay each part under the newer epoch, stay in
            # forwarding mode, and — once the whole snapshot has passed
            # through — ack the sender and flush anything we buffered
            # while the directory briefly pointed at us.
            target, relay_epoch = relay
            seen = self._relay_seen.setdefault((shard, epoch), set())
            if not seen:
                self.handoffs_sent += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "fabric.handoff", worker=self.address, role="relay"
                    ).inc()
            seen.add(part)
            relayed = FABRIC_HANDOFF.make_record(
                shard=shard, epoch=relay_epoch, part=part, parts=parts,
                state=record["state"],
            )
            self._send(target, self.pbio.encode(FABRIC_HANDOFF, relayed))
            if len(seen) < parts:
                return
            del self._relay_seen[(shard, epoch)]
            ack = FABRIC_HANDOFF_ACK.make_record(shard=shard, epoch=epoch)
            self._send(source, self.pbio.encode(FABRIC_HANDOFF_ACK, ack))
            self._replay_pending(shard)
            return
        if epoch < self.directory.shard_epoch(shard) or (
            self._owned.get(shard, -1) >= epoch
        ):
            # Stale snapshot: the directory moved the shard again under
            # a newer epoch (we recovered it from the journal, or a
            # fresher handoff already landed).  Installing it would
            # resurrect dead ownership — refuse.
            self.handoffs_rejected += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.fence.snapshots", worker=self.address
                ).inc()
            return
        try:
            chunk = json.loads(record["state"])
        except ValueError:
            self.errors += 1
            raise FabricError(
                f"malformed handoff state for shard {shard}"
            ) from None
        if not isinstance(chunk, dict) or not isinstance(
            chunk.get("channels", {}), dict
        ):
            self.errors += 1
            raise FabricError(
                f"malformed handoff state for shard {shard}"
            )
        staging = self._handoff_staging.setdefault((shard, epoch), {})
        staging[part] = chunk.get("channels", {})
        if len(staging) < parts:
            return
        del self._handoff_staging[(shard, epoch)]
        for key in [
            k for k in self._handoff_staging
            if k[0] == shard and k[1] < epoch
        ]:
            del self._handoff_staging[key]
        merged: Dict[str, Any] = {}
        for index in sorted(staging):
            merged.update(staging[index])
        try:
            self._install_channel_state(merged)
        except FabricError:
            self.errors += 1
            raise
        self._owned[shard] = epoch
        self._forwarding.pop(shard, None)
        self._update_owned_gauge()
        self.handoffs_received += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.handoff", worker=self.address, role="target"
            ).inc()
        if self.journal is not None:
            # Graceful moves fence + snapshot too: the journal always
            # reflects the newest owner's view of the shard.
            self.journal.fence(shard, epoch)
            self.journal.snapshot(shard, epoch, self._shard_state(shard))
        ack = FABRIC_HANDOFF_ACK.make_record(shard=shard, epoch=epoch)
        self._send(source, self.pbio.encode(FABRIC_HANDOFF_ACK, ack))
        self._replay_pending(shard)
