"""Fabric client — publish/subscribe against the sharded worker fleet.

Clients cache a ``(owner, epoch)`` route per channel: the directory is
consulted once on first use, then the cache is maintained entirely by
:data:`FABRIC_REDIRECT` corrections from workers.  A stale route is not
an error — the old owner forwards, the redirect catches the cache up,
and the per-``(channel, publisher)`` receive ledger keeps delivery
exactly-once regardless of how many hops a message took.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.protocol import (
    FABRIC_DELIVER,
    FABRIC_PUBLISH,
    FABRIC_REDIRECT,
    FABRIC_SUBSCRIBE,
    register_fabric_protocol,
)
from repro.fabric.worker import SeqLedger
from repro.net.batch import is_batch, pack_batch, unpack_batch
from repro.net.reliable import ReliableEndpoint
from repro.obs import OBS
from repro.obs.tracectx import TraceContext, activate, make_context
from repro.pbio.buffer import attach_trace, peek_trace, unpack_header
from repro.pbio.context import PBIOContext
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry
from repro.pbio.server import CachingFormatResolver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.membership import FabricDirectory

EventHandler = Callable[[str, str, int, Record], Any]


class FabricClient:
    """One application endpoint on the fabric.

    *handler* signature: ``handler(channel_id, publisher, seq, record)``
    — publisher and seq are surfaced so tests can ledger-reconcile
    end-to-end.
    """

    def __init__(
        self,
        directory: "FabricDirectory",
        network: Any,
        address: str,
        registry: Optional[FormatRegistry] = None,
        reliable: bool = False,
        reliable_options: Optional[Dict[str, Any]] = None,
        resolver: Optional[CachingFormatResolver] = None,
        format_servers: Optional[List[str]] = None,
        resolver_options: Optional[Dict[str, Any]] = None,
        publish_buffer_limit: int = 256,
        redrive_base_delay: float = 0.05,
        redrive_max_attempts: int = 8,
    ) -> None:
        self.directory = directory
        self.network = network
        self.node = network.add_node(address)
        if resolver is None and format_servers:
            options = dict(resolver_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            resolver = CachingFormatResolver(
                network, f"{address}:meta", servers=format_servers,
                registry=registry, **options,
            )
        self.resolver = resolver
        if registry is None:
            if resolver is None:
                raise FabricError(
                    "FabricClient needs a registry, a resolver, or "
                    "format_servers"
                )
            registry = resolver.registry
        self.registry = registry
        register_fabric_protocol(registry)
        self.pbio = PBIOContext(registry)
        self.reliable: Optional[ReliableEndpoint] = None
        if reliable:
            options = dict(reliable_options or {})
            options.setdefault("breaker_threshold", 1_000_000)
            self.reliable = ReliableEndpoint(network, node=self.node, **options)
            self.reliable.set_handler(self._on_message)
        else:
            self.node.set_handler(self._on_message)
        if self.resolver is not None:
            self.resolver.publish()
        #: channel -> (owner, epoch) route cache
        self._routes: Dict[str, Tuple[str, int]] = {}
        #: channel -> next publish sequence number
        self._next_seq: Dict[str, int] = {}
        #: channel -> (fmt, handler) local subscription
        self._subscriptions: Dict[str, Tuple[IOFormat, EventHandler]] = {}
        #: (channel, publisher) -> receive-side exactly-once ledger
        self.received: Dict[Tuple[str, str], SeqLedger] = {}
        #: publishes whose reliable send failed (dead owner, open
        #: breaker) awaiting redrive once the successor is live
        self._publish_buffer: List[Tuple[str, bytes]] = []
        self.publish_buffer_limit = publish_buffer_limit
        self.redrive_base_delay = redrive_base_delay
        self.redrive_max_attempts = redrive_max_attempts
        self._redrive_timer: Optional[Any] = None
        self._redrive_attempts = 0
        self.published = 0
        self.delivered = 0
        self.duplicates = 0
        self.redirects = 0
        self.buffered = 0
        self.redrives = 0
        self.dropped = 0
        self.errors = 0

    @property
    def address(self) -> str:
        return self.node.address

    def _send(self, destination: str, data: bytes) -> None:
        if self.reliable is not None:
            self.reliable.send(destination, data)
        else:
            self.node.send(destination, data)

    # ------------------------------------------------------------------
    # Graceful degradation across an ownership gap
    # ------------------------------------------------------------------

    def _send_publish(self, channel_id: str, destination: str,
                      data: bytes) -> None:
        """Send publish traffic with crash awareness.  In reliable mode
        a failed or breaker-rejected send parks the datagram in a
        bounded buffer and schedules a backoff redrive that re-routes
        through a *fresh* directory lookup — by the time the retry
        fires, lease expiry has usually moved the shard to a live
        successor.  Raw mode has no failure signal, so it keeps the
        original fire-and-forget behavior."""
        if self.reliable is None:
            self.node.send(destination, data)
            return

        def _on_result(ticket: Any) -> None:
            if ticket.state == "acked":
                self._redrive_attempts = 0
            elif ticket.state in ("failed", "rejected"):
                self._buffer_publish(channel_id, data)

        self.reliable.send(destination, data, on_result=_on_result)

    def _buffer_publish(self, channel_id: str, data: bytes) -> None:
        # Drop the cached route: the owner we just failed against is
        # gone (or unreachable); the redrive must ask the directory.
        self._routes.pop(channel_id, None)
        if len(self._publish_buffer) >= self.publish_buffer_limit:
            self.dropped += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.recovery.dropped", client=self.address
                ).inc()
            return
        self._publish_buffer.append((channel_id, data))
        self.buffered += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.recovery.buffered", client=self.address
            ).inc()
        self._gauge_buffer_depth()
        self._schedule_redrive()

    def _gauge_buffer_depth(self) -> None:
        if OBS.enabled:
            OBS.metrics.gauge(
                "fabric.recovery.buffer_depth", client=self.address
            ).set(len(self._publish_buffer))

    def _schedule_redrive(self) -> None:
        if self._redrive_timer is not None:
            return
        delay = self.redrive_base_delay * (2 ** self._redrive_attempts)
        self._redrive_timer = self.network.call_later(delay, self._redrive)

    def _redrive(self) -> None:
        self._redrive_timer = None
        if not self._publish_buffer:
            return
        self._redrive_attempts += 1
        if self._redrive_attempts > self.redrive_max_attempts:
            # The fleet never came back within the backoff budget:
            # surface the loss explicitly rather than buffering forever.
            self.dropped += len(self._publish_buffer)
            if OBS.enabled:
                OBS.metrics.counter(
                    "fabric.recovery.dropped", client=self.address
                ).inc(len(self._publish_buffer))
            self._publish_buffer.clear()
            self._redrive_attempts = 0
            self._gauge_buffer_depth()
            return
        batch, self._publish_buffer = self._publish_buffer, []
        self.redrives += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "fabric.recovery.redrives", client=self.address
            ).inc()
        for channel_id, data in batch:
            try:
                owner, _epoch = self._route(channel_id)
            except FabricError:
                self._publish_buffer.append((channel_id, data))
                continue
            # Failures re-buffer through _on_result and reschedule with
            # the next (longer) backoff step.
            self._send_publish(channel_id, owner, data)
        self._gauge_buffer_depth()
        if self._publish_buffer:
            self._schedule_redrive()

    def _route(self, channel_id: str) -> Tuple[str, int]:
        route = self._routes.get(channel_id)
        if route is None:
            # First use: one directory lookup.  From here on the cache
            # is maintained only by worker redirects, so a membership
            # change after this point exercises the stale-route path.
            route = self.directory.route(channel_id)
            self._routes[channel_id] = route
        return route

    # ------------------------------------------------------------------
    # Publish / subscribe
    # ------------------------------------------------------------------

    def publish(self, channel_id: str, fmt: IOFormat, record: Record) -> int:
        """Publish one event; returns the sequence number used."""
        owner, epoch = self._route(channel_id)
        seq = self._next_seq.get(channel_id, 0) + 1
        self._next_seq[channel_id] = seq
        ctx: Optional[TraceContext] = None
        if OBS.enabled:
            ctx = make_context()
        payload = self.pbio.encode(fmt, record)
        envelope = FABRIC_PUBLISH.make_record(
            channel_id=channel_id,
            publisher=self.address,
            seq=seq,
            epoch=epoch,
        )
        envelope_wire = self.pbio.encode(FABRIC_PUBLISH, envelope)
        if ctx is not None:
            payload = attach_trace(payload, ctx)
            envelope_wire = attach_trace(envelope_wire, ctx)
        with activate(ctx), OBS.tracer.span(
            "fabric.publish",
            channel=channel_id,
            publisher=self.address,
            format=fmt.name,
        ):
            self._send_publish(channel_id, owner, envelope_wire + payload)
        self.published += 1
        if OBS.enabled:
            OBS.metrics.bounded_counter(
                "fabric.published", channel=channel_id
            ).inc()
        return seq

    def publish_batch(
        self, channel_id: str, fmt: IOFormat, records: List[Record]
    ) -> List[int]:
        """Publish *records* as one BATCH1 frame to the channel's owner:
        one transport send and one reliable sequence number for the whole
        group.  Each event keeps its own ``FABRIC_PUBLISH`` envelope and
        publish sequence number, so the owner's exactly-once ledger and
        any reroute/handoff races stay per-message.

        Returns the publish sequence numbers used, in order."""
        if not records:
            return []
        owner, epoch = self._route(channel_id)
        ctx: Optional[TraceContext] = None
        if OBS.enabled:
            ctx = make_context()
        seqs: List[int] = []
        datagrams: List[bytes] = []
        for record in records:
            seq = self._next_seq.get(channel_id, 0) + 1
            self._next_seq[channel_id] = seq
            seqs.append(seq)
            envelope = FABRIC_PUBLISH.make_record(
                channel_id=channel_id,
                publisher=self.address,
                seq=seq,
                epoch=epoch,
            )
            datagrams.append(
                self.pbio.encode(FABRIC_PUBLISH, envelope)
                + self.pbio.encode(fmt, record)
            )
        frame = pack_batch(datagrams, ctx)
        with activate(ctx), OBS.tracer.span(
            "fabric.publish_batch",
            channel=channel_id,
            publisher=self.address,
            format=fmt.name,
            count=len(records),
        ):
            self._send_publish(channel_id, owner, frame)
        self.published += len(records)
        if OBS.enabled:
            OBS.metrics.bounded_counter(
                "fabric.published", channel=channel_id
            ).inc(len(records))
        return seqs

    def subscribe(
        self, channel_id: str, fmt: IOFormat, handler: EventHandler
    ) -> None:
        """Subscribe to *channel_id* in *fmt*; the owning worker morphs
        every published event into *fmt* before delivery."""
        if fmt not in self.registry:
            self.registry.register(fmt)
        if self.resolver is not None:
            # Make the subscription format resolvable by whichever
            # worker ends up owning (or inheriting) the shard.
            self.resolver.publish()
        self._subscriptions[channel_id] = (fmt, handler)
        owner, epoch = self._route(channel_id)
        record = FABRIC_SUBSCRIBE.make_record(
            channel_id=channel_id,
            contact=self.address,
            format_id=fmt.format_id,
            epoch=epoch,
        )
        self._send(owner, self.pbio.encode(FABRIC_SUBSCRIBE, record))

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, source: str, data: bytes) -> None:
        if is_batch(data):
            try:
                frame = unpack_batch(data)
            except Exception:  # noqa: BLE001 - malformed frame from a peer
                self.errors += 1
                return
            view = data if isinstance(data, memoryview) else memoryview(data)
            with activate(frame.trace):
                for off, length in frame.segments:
                    self._on_message(source, view[off:off + length])
            return
        header = unpack_header(data)
        fmt = self.registry.lookup_id(header.format_id)
        if fmt is None:
            self.errors += 1
            return
        body_end = header.body_offset + header.payload_length
        record = self.pbio.decode_as(fmt, data[:body_end])
        if fmt.name == FABRIC_DELIVER.name:
            self._on_deliver(record, data[body_end:])
        elif fmt.name == FABRIC_REDIRECT.name:
            self._on_redirect(record)
        else:
            self.errors += 1

    def _on_redirect(self, record: Record) -> None:
        channel_id = record["channel_id"]
        current = self._routes.get(channel_id)
        route = (record["owner"], record["epoch"])
        # Epochs are monotonic; never let a late redirect roll the
        # cache backwards.
        if current is None or route[1] >= current[1]:
            self._routes[channel_id] = route
            self.redirects += 1

    def _on_deliver(self, record: Record, payload: bytes) -> None:
        channel_id = record["channel_id"]
        publisher = record["publisher"]
        seq = record["seq"]
        subscription = self._subscriptions.get(channel_id)
        if subscription is None:
            self.errors += 1
            return
        key = (channel_id, publisher)
        ledger = self.received.get(key)
        if ledger is None:
            ledger = self.received[key] = SeqLedger()
        if not ledger.admit(seq):
            self.duplicates += 1
            return
        fmt, handler = subscription
        with activate(peek_trace(payload)), OBS.tracer.span(
            "fabric.deliver",
            channel=channel_id,
            subscriber=self.address,
        ):
            payload_header = unpack_header(payload)
            body_end = (
                payload_header.body_offset + payload_header.payload_length
            )
            event = self.pbio.decode_as(fmt, payload[:body_end])
            handler(channel_id, publisher, seq, event)
        self.delivered += 1
        if OBS.enabled:
            OBS.metrics.bounded_counter(
                "fabric.delivered", channel=channel_id
            ).inc()
