"""Fabric wire protocol — PBIO formats for the sharded event fabric.

Data-plane messages use the EventEnvelope framing trick: the envelope
is a complete PBIO message and the (separately encoded, possibly
trace-stamped) event payload rides concatenated behind it, so the
payload bytes pass through publish -> forward -> morph untouched — which
is what keeps one trace id on a message across a shard-handoff hop.

Handoff state travels as JSON inside a string field rather than nested
PBIO arrays: it is control-plane meta data (like the format-server
protocol, deliberately not dependent on the format machinery it moves).
"""

from __future__ import annotations

from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

#: One published event, addressed to the channel's owning worker.  The
#: event payload (a PBIO message in the publisher's event format) is
#: concatenated behind.  ``publisher``+``seq`` are the exactly-once
#: ledger key; ``epoch`` is the ownership epoch the publisher routed
#: under (stale epochs still deliver — the owner forwards — but tell
#: the receiving worker to send a redirect).
FABRIC_PUBLISH = IOFormat(
    "FabricPublish",
    [
        IOField("channel_id", "string"),
        IOField("publisher", "string"),
        IOField("seq", "unsigned", 8),
        IOField("epoch", "unsigned", 4),
    ],
    version="1.0",
)

#: Subscribe *contact* to a channel, in the format with id
#: ``format_id`` (resolved out-of-band through the format servers when
#: the owner does not know it).
FABRIC_SUBSCRIBE = IOFormat(
    "FabricSubscribe",
    [
        IOField("channel_id", "string"),
        IOField("contact", "string"),
        IOField("format_id", "unsigned", 8),
        IOField("epoch", "unsigned", 4),
    ],
    version="1.0",
)

#: One morphed event pushed to a subscriber; the payload (re-encoded in
#: the subscriber's format, original trace context re-attached) rides
#: behind.  ``publisher``/``seq`` let subscribers ledger-reconcile.
FABRIC_DELIVER = IOFormat(
    "FabricDeliver",
    [
        IOField("channel_id", "string"),
        IOField("publisher", "string"),
        IOField("seq", "unsigned", 8),
    ],
    version="1.0",
)

#: Routing correction, sent to a publisher whose traffic arrived at a
#: worker that no longer (or never did) own the channel's shard.
FABRIC_REDIRECT = IOFormat(
    "FabricRedirect",
    [
        IOField("channel_id", "string"),
        IOField("owner", "string"),
        IOField("epoch", "unsigned", 4),
    ],
    version="1.0",
)

#: Shard handoff: the old owner ships the shard's channel state
#: (subscriber table + exactly-once ledgers, as JSON) to the successor
#: and switches itself to drain-and-forward mode.  Large shards travel
#: in multiple bounded-size parts (``part`` of ``parts``); the
#: successor stages parts and installs atomically once all arrive.
FABRIC_HANDOFF = IOFormat(
    "FabricHandoff",
    [
        IOField("shard", "unsigned", 4),
        IOField("epoch", "unsigned", 4),
        IOField("part", "unsigned", 4),
        IOField("parts", "unsigned", 4),
        IOField("state", "string"),
    ],
    version="1.1",
)

FABRIC_HANDOFF_ACK = IOFormat(
    "FabricHandoffAck",
    [
        IOField("shard", "unsigned", 4),
        IOField("epoch", "unsigned", 4),
    ],
    version="1.0",
)

FABRIC_FORMATS = (
    FABRIC_PUBLISH,
    FABRIC_SUBSCRIBE,
    FABRIC_DELIVER,
    FABRIC_REDIRECT,
    FABRIC_HANDOFF,
    FABRIC_HANDOFF_ACK,
)


def register_fabric_protocol(registry: FormatRegistry) -> None:
    """Register the fabric control formats (idempotent)."""
    for fmt in FABRIC_FORMATS:
        if fmt not in registry:
            registry.register(fmt)
