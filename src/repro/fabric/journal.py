"""Durable append-only ledger journal for crash-leave recovery.

A graceful leave moves a shard's exactly-once state in a
:data:`~repro.fabric.protocol.FABRIC_HANDOFF` snapshot — but a crashed
worker never gets to snapshot anything, and before this module existed
its successors restarted the :class:`~repro.fabric.worker.SeqLedger`\\ s
empty (re-admitting publisher retries as fresh events, and losing every
admitted event whose delivery had not settled).

:class:`JournalStore` models the durable medium those workers share — a
replicated log service, an NFS volume, a local disk that survives the
process — as per-shard append-only logs:

* ``admit`` entries record one ledger admission **with the event's
  payload bytes**.  Admission is the point of no return (the publisher's
  reliable layer has been acked and will never resend), so recovery must
  be able to re-fan-out the tail of admitted-but-possibly-undelivered
  events; subscriber-side ledgers suppress (and count) the re-delivery
  duplicates this creates.
* ``subscribe`` entries record channel membership changes.
* ``snapshot`` entries are compaction points: the materialized channel
  state (same shape as a handoff snapshot).  Recovery starts from the
  last snapshot and replays only the entries behind it, so the re-fan-out
  tail — and the in-memory log — stay bounded.
* Every append carries the **ownership epoch** it was made under and is
  checked against the shard's *fence*: when a successor recovers a shard
  it fences the journal at the takeover epoch, so a resurrected stale
  owner that somehow still admits traffic cannot corrupt the log
  (``fabric.journal.fenced_appends`` counts the attempts).

The default store is in-memory (shared by reference between the workers
of one simulated deployment).  Passing ``path=`` makes it file-backed
(JSON lines, rewritten on compaction), which is what lets a *restarted*
worker — not just a successor — recover its own shards.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import JournalError
from repro.obs import OBS

#: Appends since the last snapshot that trigger compaction (overridable
#: per store).  Large enough that a fuzzing case never compacts unless
#: the scenario asks to, small enough that long-lived shards stay cheap.
DEFAULT_COMPACT_EVERY = 256


class _ShardLog:
    """One shard's journal: ordered entries plus fencing metadata."""

    __slots__ = ("entries", "fence_epoch", "since_snapshot")

    def __init__(self) -> None:
        self.entries: List[Dict[str, Any]] = []
        #: appends under epochs below this are rejected
        self.fence_epoch = 0
        #: appends since the last ``snapshot`` entry
        self.since_snapshot = 0


class JournalRecovery:
    """What :meth:`JournalStore.recover` hands a worker: the materialized
    channel state and the tail of admits to re-fan-out."""

    __slots__ = ("state", "tail")

    def __init__(
        self,
        state: Dict[str, Any],
        tail: List[Tuple[str, str, int, bytes]],
    ) -> None:
        #: ``{"channels": {cid: {"subscribers": [...], "ledgers": {...}}}}``
        #: — the handoff-snapshot shape, directly installable
        self.state = state
        #: ``(channel_id, publisher, seq, payload)`` admits since the
        #: last snapshot, in admission order
        self.tail = tail


class JournalStore:
    """Append-only, epoch-fenced, per-shard ledger journal.

    Parameters
    ----------
    path:
        Optional file to persist the journal to (JSON lines; loaded on
        construction when it exists, rewritten on compaction).  Without
        it the store is purely in-memory — the shared-medium model for
        single-process deployments and the simulator.
    compact_every:
        Appends since the last snapshot after which
        :meth:`should_compact` turns true.  The *worker* performs the
        compaction (it holds the materialized state); the store only
        tracks the trigger.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        if compact_every < 1:
            raise JournalError("compact_every must be >= 1")
        self.path = path
        self.compact_every = compact_every
        self._shards: Dict[int, _ShardLog] = {}
        self.appends = 0
        self.fenced_appends = 0
        self.compactions = 0
        self.recoveries = 0
        if path is not None and os.path.exists(path):
            self._load(path)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _shard(self, shard: int) -> _ShardLog:
        log = self._shards.get(shard)
        if log is None:
            log = self._shards[shard] = _ShardLog()
        return log

    def _admit_entry(
        self, log: _ShardLog, shard: int, entry: Dict[str, Any]
    ) -> bool:
        """Fence-check and append one entry (persisting it when
        file-backed).  Returns whether the entry was admitted."""
        epoch = entry["epoch"]
        if epoch < log.fence_epoch:
            self.fenced_appends += 1
            self._count("fenced_appends")
            return False
        log.entries.append(entry)
        self.appends += 1
        self._count("appends")
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps({"shard": shard, **entry}, sort_keys=True)
                    + "\n"
                )
        return True

    def append_admit(
        self,
        shard: int,
        epoch: int,
        channel_id: str,
        publisher: str,
        seq: int,
        payload: bytes,
    ) -> bool:
        """Journal one ledger admission, payload included (hex on disk so
        the log stays line-oriented JSON)."""
        log = self._shard(shard)
        admitted = self._admit_entry(log, shard, {
            "kind": "admit",
            "epoch": epoch,
            "channel": channel_id,
            "publisher": publisher,
            "seq": seq,
            "payload": bytes(payload).hex(),
        })
        if admitted:
            log.since_snapshot += 1
            self._gauge_shard(shard, log)
        return admitted

    def append_subscribe(
        self,
        shard: int,
        epoch: int,
        channel_id: str,
        contact: str,
        format_id: int,
    ) -> bool:
        """Journal one subscriber installation."""
        log = self._shard(shard)
        admitted = self._admit_entry(log, shard, {
            "kind": "subscribe",
            "epoch": epoch,
            "channel": channel_id,
            "contact": contact,
            "format_id": format_id,
        })
        if admitted:
            log.since_snapshot += 1
            self._gauge_shard(shard, log)
        return admitted

    def snapshot(self, shard: int, epoch: int, state: Dict[str, Any]) -> bool:
        """Compaction point: record the shard's materialized channel
        state and drop every earlier entry (recovery never needs them
        again).  File-backed stores rewrite the file — that is the
        actual space reclaim."""
        log = self._shard(shard)
        if epoch < log.fence_epoch:
            self.fenced_appends += 1
            self._count("fenced_appends")
            return False
        log.entries = [{
            "kind": "snapshot",
            "epoch": epoch,
            "state": state,
        }]
        log.since_snapshot = 0
        self.compactions += 1
        self._count("compactions")
        if self.path is not None:
            self._rewrite()
        self._gauge_shard(shard, log)
        return True

    def fence(self, shard: int, epoch: int) -> None:
        """Reject any future append for *shard* under an epoch older
        than *epoch* — called by a successor at takeover, so a
        resurrected stale owner cannot write behind it."""
        log = self._shard(shard)
        if epoch > log.fence_epoch:
            log.fence_epoch = epoch
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(
                            {"shard": shard, "kind": "fence", "epoch": epoch},
                            sort_keys=True,
                        ) + "\n"
                    )

    def fence_epoch(self, shard: int) -> int:
        log = self._shards.get(shard)
        return 0 if log is None else log.fence_epoch

    def should_compact(self, shard: int) -> bool:
        log = self._shards.get(shard)
        return log is not None and log.since_snapshot >= self.compact_every

    def entry_count(self, shard: int) -> int:
        log = self._shards.get(shard)
        return 0 if log is None else len(log.entries)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, shard: int) -> Optional[JournalRecovery]:
        """Materialize *shard*'s state from the journal: start from the
        last snapshot, replay later entries in order, and collect the
        tail of admits (with payloads) for re-fan-out.  Entries under an
        epoch older than a later fence are skipped — they were written
        by an owner that had already been superseded.  Returns ``None``
        for a shard with no journal (a genuinely fresh grant)."""
        from repro.fabric.worker import SeqLedger

        log = self._shards.get(shard)
        if log is None or not log.entries:
            return None
        self.recoveries += 1
        self._count("recoveries")
        start = 0
        for index in range(len(log.entries) - 1, -1, -1):
            if log.entries[index].get("kind") == "snapshot":
                start = index
                break
        channels: Dict[str, Dict[str, Any]] = {}
        ledgers: Dict[str, Dict[str, SeqLedger]] = {}
        tail: List[Tuple[str, str, int, bytes]] = []
        floor = 0  # highest epoch seen; later entries must not regress

        def channel_state(channel_id: str) -> Dict[str, Any]:
            state = channels.get(channel_id)
            if state is None:
                state = channels[channel_id] = {
                    "subscribers": [], "ledgers": {},
                }
                ledgers[channel_id] = {}
            return state

        for entry in log.entries[start:]:
            kind = entry.get("kind")
            try:
                epoch = int(entry["epoch"])
            except (KeyError, TypeError, ValueError):
                raise JournalError(
                    f"journal entry for shard {shard} has no valid epoch: "
                    f"{entry!r}"
                ) from None
            if epoch < floor:
                # A stale owner's write that slipped in before the fence
                # landed: position says "after takeover", epoch says
                # "before" — recovery must not resurrect it.
                self.fenced_appends += 1
                self._count("fenced_appends")
                continue
            floor = epoch
            if kind == "snapshot":
                state = entry.get("state")
                if not isinstance(state, dict):
                    raise JournalError(
                        f"journal snapshot for shard {shard} is not a mapping"
                    )
                channels.clear()
                ledgers.clear()
                tail = []
                for channel_id, channel in (
                    state.get("channels") or {}
                ).items():
                    if not isinstance(channel, dict):
                        raise JournalError(
                            f"journal snapshot channel {channel_id!r} is "
                            "not a mapping"
                        )
                    installed = channel_state(channel_id)
                    for contact_entry in channel.get("subscribers", ()):
                        contact, format_id = _subscriber_entry(contact_entry)
                        installed["subscribers"].append([contact, format_id])
                    for publisher, ledger_state in (
                        channel.get("ledgers") or {}
                    ).items():
                        ledgers[channel_id][publisher] = SeqLedger.from_state(
                            ledger_state
                        )
            elif kind == "admit":
                channel_id = entry.get("channel")
                publisher = entry.get("publisher")
                if not isinstance(channel_id, str) or not isinstance(
                    publisher, str
                ):
                    raise JournalError(
                        f"journal admit for shard {shard} lacks a channel "
                        "or publisher"
                    )
                seq = entry.get("seq")
                if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
                    raise JournalError(
                        f"journal admit for shard {shard} has bad seq "
                        f"{seq!r}"
                    )
                try:
                    payload = bytes.fromhex(entry.get("payload", ""))
                except ValueError:
                    raise JournalError(
                        f"journal admit for shard {shard} has undecodable "
                        "payload"
                    ) from None
                channel_state(channel_id)
                ledger = ledgers[channel_id].get(publisher)
                if ledger is None:
                    ledger = ledgers[channel_id][publisher] = SeqLedger()
                if ledger.admit(seq):
                    tail.append((channel_id, publisher, seq, payload))
            elif kind == "subscribe":
                channel_id = entry.get("channel")
                contact = entry.get("contact")
                if not isinstance(channel_id, str) or not isinstance(
                    contact, str
                ):
                    raise JournalError(
                        f"journal subscribe for shard {shard} lacks a "
                        "channel or contact"
                    )
                state = channel_state(channel_id)
                format_id = entry.get("format_id")
                if not isinstance(format_id, int) or isinstance(
                    format_id, bool
                ):
                    raise JournalError(
                        f"journal subscribe for shard {shard} has bad "
                        f"format id {format_id!r}"
                    )
                pair = [contact, format_id]
                if pair not in state["subscribers"]:
                    state["subscribers"].append(pair)
            elif kind == "fence":
                continue
            else:
                raise JournalError(
                    f"unknown journal entry kind {kind!r} for shard {shard}"
                )
        for channel_id, per_publisher in ledgers.items():
            channels[channel_id]["ledgers"] = {
                publisher: ledger.to_state()
                for publisher, ledger in sorted(per_publisher.items())
            }
        return JournalRecovery({"channels": channels}, tail)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _rewrite(self) -> None:
        assert self.path is not None
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for shard in sorted(self._shards):
                log = self._shards[shard]
                if log.fence_epoch:
                    handle.write(json.dumps(
                        {"shard": shard, "kind": "fence",
                         "epoch": log.fence_epoch},
                        sort_keys=True,
                    ) + "\n")
                for entry in log.entries:
                    handle.write(json.dumps(
                        {"shard": shard, **entry}, sort_keys=True
                    ) + "\n")
        os.replace(tmp, self.path)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from None
        for number, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                shard = int(record.pop("shard"))
            except (ValueError, KeyError, TypeError):
                raise JournalError(
                    f"corrupt journal line {number} in {path}"
                ) from None
            log = self._shard(shard)
            if record.get("kind") == "fence":
                epoch = record.get("epoch")
                if isinstance(epoch, int) and epoch > log.fence_epoch:
                    log.fence_epoch = epoch
                continue
            log.entries.append(record)
            if record.get("kind") == "snapshot":
                log.since_snapshot = 0
            else:
                log.since_snapshot += 1

    def disk_size_bytes(self) -> int:
        """On-disk size of the journal file (0 for in-memory stores or
        before the first persisted append)."""
        if self.path is None:
            return 0
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def _count(self, name: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter(f"fabric.journal.{name}").inc()

    def _gauge_shard(self, shard: int, log: _ShardLog) -> None:
        """Mirror the compaction-pressure gauges: entries accumulated
        behind the last snapshot (per shard) and the file size (per
        store) — the journal-lag columns ``--top`` renders."""
        if not OBS.enabled:
            return
        OBS.metrics.gauge(
            "fabric.journal.entries_since_snapshot", shard=str(shard)
        ).set(log.since_snapshot)
        if self.path is not None:
            OBS.metrics.gauge("fabric.journal.disk_bytes").set(
                self.disk_size_bytes()
            )


def _subscriber_entry(entry: Any) -> Tuple[str, int]:
    """Validate one journaled/snapshotted subscriber entry."""
    if (
        not isinstance(entry, (list, tuple))
        or len(entry) != 2
        or not isinstance(entry[0], str)
        or isinstance(entry[1], bool)
        or not isinstance(entry[1], int)
    ):
        raise JournalError(f"malformed subscriber entry {entry!r}")
    return entry[0], entry[1]
