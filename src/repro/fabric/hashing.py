"""Consistent hashing for the event fabric.

Two levels, the classic arrangement:

* **channel -> shard**: a fixed shard count and a stable hash, so every
  process (workers, clients, the directory) computes the same shard for
  a channel id without coordination,
* **shard -> worker**: **rendezvous (highest-random-weight) hashing
  with bounded loads** — every shard ranks the workers by
  ``hash(shard, worker)`` and lands on the highest-ranked worker with
  spare capacity, capped at ``ceil(shards / workers)``.

Rendezvous hashing was chosen over a vnode ring because its movement
on membership change is provably minimal for this workload: a joining
worker wins exactly the shards that now rank it first (≈ ``1/N`` of
them), a leaving worker loses exactly its own shards, and the cap walk
degrades each preference list by at most one position.  Measured on the
128-shard default: 2→3 workers moves 43 shards, 3→4 moves 33 — the
information-theoretic floor — where a vnode ring with an overflow pass
moved 80 %+ of the key space.

All hashes are BLAKE2b (never randomized, unlike ``hash()``), so shard
placement agrees across OS processes — the property the multi-process
socket bench depends on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.errors import FabricError

#: Default number of shards the channel space is partitioned into.
#: Sixteen-ish per worker at the bench's largest fleet: enough
#: granularity for the load cap to balance, small enough that handoff
#: state stays a handful of messages.
DEFAULT_NUM_SHARDS = 128


def stable_hash(text: str) -> int:
    """64-bit stable hash of *text* — identical in every process."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_of(channel_id: str, num_shards: int = DEFAULT_NUM_SHARDS) -> int:
    """The shard a channel id belongs to."""
    if num_shards < 1:
        raise FabricError("num_shards must be >= 1")
    return stable_hash(channel_id) % num_shards


class HashRing:
    """Shard placement over worker addresses.

    Despite the traditional name, placement is rendezvous hashing (see
    the module docstring): :meth:`assign` is a pure function of the
    membership set, so any process holding the same member list computes
    the same assignment.
    """

    def __init__(self) -> None:
        self._members: List[str] = []

    @property
    def members(self) -> List[str]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, address: str) -> bool:
        return address in self._members

    def add(self, address: str) -> None:
        if address in self._members:
            raise FabricError(f"worker {address!r} already on the ring")
        self._members.append(address)

    def remove(self, address: str) -> None:
        if address not in self._members:
            raise FabricError(f"worker {address!r} not on the ring")
        self._members.remove(address)

    def assign(self, num_shards: int) -> Dict[int, str]:
        """Shard -> worker assignment for the current membership:
        highest-random-weight order, first worker under the
        ``ceil(S/N)`` cap wins."""
        if not self._members:
            raise FabricError("cannot assign shards: ring has no workers")
        cap = -(-num_shards // len(self._members))
        assignment: Dict[int, str] = {}
        load: Dict[str, int] = {address: 0 for address in self._members}
        for shard in range(num_shards):
            ranked = sorted(
                self._members,
                key=lambda address: stable_hash(f"{shard}@{address}"),
                reverse=True,
            )
            for address in ranked:
                if load[address] < cap:
                    assignment[shard] = address
                    load[address] += 1
                    break
        return assignment
