"""Message Morphing — the paper's primary contribution.

Combines PBIO meta-data with ECode dynamic code generation so receivers
can accept message formats they were never written to understand:

* :func:`diff` / :func:`mismatch_ratio` — Algorithm 1 and the Mr metric,
* :func:`max_match` — the MaxMatch format-pair selection,
* :class:`Transformation` / :class:`TransformChain` — compiled
  writer-supplied conversions (retro-transformation chains, Figure 1),
* :func:`coerce_record` / :func:`generate_coercion_ecode` — imperfect
  match reconciliation (default fill + field drop),
* :class:`MorphReceiver` — the Algorithm 2 receiver-side pipeline with
  per-format route caching.
"""

from repro.morph.compat import coerce_record, generate_coercion_ecode
from repro.morph.diff import (
    diff,
    is_perfect_match,
    mismatch_ratio,
    weighted_diff,
    weighted_mismatch_ratio,
)
from repro.morph.maxmatch import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_MISMATCH_THRESHOLD,
    MatchResult,
    max_match,
    perfect_matches,
    score_pair,
)
from repro.morph.dynamic import ECodeHandler
from repro.morph.receiver import DeadLetter, MorphReceiver, ReceiverStats
from repro.morph.transform import (
    TransformChain,
    Transformation,
    build_chain,
    growable_record,
)

__all__ = [
    "DEFAULT_DIFF_THRESHOLD",
    "DEFAULT_MISMATCH_THRESHOLD",
    "DeadLetter",
    "ECodeHandler",
    "MatchResult",
    "MorphReceiver",
    "ReceiverStats",
    "TransformChain",
    "Transformation",
    "build_chain",
    "coerce_record",
    "diff",
    "generate_coercion_ecode",
    "growable_record",
    "is_perfect_match",
    "max_match",
    "mismatch_ratio",
    "perfect_matches",
    "score_pair",
    "weighted_diff",
    "weighted_mismatch_ratio",
]
