"""Whole-route fusion — one generated function per cached route.

The staged receiver pipeline decodes a full :class:`Record`, walks the
:class:`TransformChain` one compiled step at a time (materializing and
freezing an intermediate record per hop), then runs reconciliation as yet
another pass.  This module extends the paper's dynamic-code-generation
idea from single conversions to the *complete* retro-transformation
chain: at route-plan time the decode fragment, every transform body and
the reconcile logic are emitted into a single specialized Python
function and compiled once.

What fusion buys over the staged path:

* no per-step dispatch — the chain is straight-line code,
* intermediate records are neither frozen nor re-frozen between hops
  (only the final record is), and no per-step obs/error plumbing runs,
* **dead-field elimination**: a backward liveness pass over the chain
  (:func:`repro.ecode.analyze.fields_used`) determines which top-level
  wire fields anything downstream actually reads, dead stores inside
  transforms feeding only dropped fields are pruned
  (:func:`repro.ecode.analyze.prune_dead_stores`), and the decode
  fragment skips dead fixed-width fields arithmetically instead of
  unpacking them (`live=` support in :mod:`repro.pbio.codegen`).

The staged path remains both the ablation baseline and the runtime
fallback: :func:`plan_fusion` returns ``None`` whenever a route uses a
feature fusion does not support (interpreter procedures, ``return``
inside a transform, output validation, parameter shadowing), and a
compile failure downgrades the route to staged execution instead of
failing the receiver.  Error *classes* and counter effects match the
staged path exactly — the ``fusion`` differential oracle in
:mod:`repro.check` holds the two paths to that contract.
"""

from __future__ import annotations

import struct
import threading
import time
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.ecode import analyze
from repro.ecode.codegen import generate_inline
from repro.ecode.runtime import BUILTINS, c_div, c_mod
from repro.errors import DecodeError, ECodeError, TransformError
from repro.morph.compat import _coerce_field
from repro.morph.transform import Transformation, _freeze, _record_factory
from repro.pbio.codegen import _Emitter, _gen_decode_format, _StructTable
from repro.pbio.format import IOFormat
from repro.pbio.record import Record, trusted_record


_ECODE_ESCAPES = (KeyError, IndexError, TypeError, AttributeError, ValueError)


def _make_fail(stage: str, label: str) -> Callable[[BaseException], None]:
    def _fail(exc: BaseException) -> None:
        err = TransformError(
            f"fused route {label} failed at runtime in its {stage} stage: {exc!r}"
        )
        err.fused_stage = stage  # type: ignore[attr-defined]
        raise err from exc

    return _fail


class FusedRoute:
    """The compiled form of one receiver route.

    Sources and function objects are generated lazily per byte order
    (receiver-makes-right: most receivers only ever see their native
    order).  A compile failure marks the order as fallen back — the
    receiver keeps using the staged path for it.
    """

    __slots__ = (
        "wire_format",
        "wire_live",
        "label",
        "_steps",
        "_walker_coercion",
        "_fns",
        "_sources",
        "_lock",
    )

    def __init__(
        self,
        wire_format: IOFormat,
        wire_live: Optional[Set[str]],
        label: str,
        steps: List[Tuple[Transformation, "analyze.ast.Program", str]],
        walker_coercion: Optional[Tuple[IOFormat, IOFormat]],
    ) -> None:
        self.wire_format = wire_format
        self.wire_live = wire_live
        self.label = label
        self._steps = steps
        self._walker_coercion = walker_coercion
        self._fns: Dict[
            str, Optional[Callable[[bytes, int, int], Tuple[Record, int]]]
        ] = {}
        self._sources: Dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def fn_for(
        self, order: str
    ) -> Optional[Callable[[bytes, int, int], Tuple[Record, int]]]:
        """The fused routine for payloads in *order* (``"<"``/``">"``),
        compiling it on first use; ``None`` when compilation failed and
        the staged path must run instead.  The routine returns
        ``(record, consumed_offset)`` — the offset lets batch receivers
        walk successive records through one shared buffer."""
        try:
            return self._fns[order]
        except KeyError:
            pass
        with self._lock:
            if order not in self._fns:
                self._fns[order] = self._compile(order)
            return self._fns[order]

    def source(self, order: str = "<") -> str:
        """The generated Python source for *order* (audited by tests)."""
        self.fn_for(order)
        return self._sources[order]

    # ------------------------------------------------------------------

    def _compile(
        self, order: str
    ) -> Optional[Callable[[bytes, int, int], Tuple[Record, int]]]:
        from repro.obs import OBS

        start = time.perf_counter()
        try:
            source, namespace = self._emit(order)
            self._sources[order] = source
            code = compile(source, f"<fused-route:{self.label}:{order}>", "exec")
            exec(code, namespace)
            fn = namespace["_fused_route"]
        except Exception:
            if OBS.enabled:
                OBS.metrics.counter("morph.fusion.fallbacks").inc()
            return None
        if OBS.enabled:
            OBS.metrics.counter("morph.fusion.compiles").inc()
            OBS.metrics.histogram("morph.fusion.compile_seconds").observe(
                time.perf_counter() - start
            )
        return fn

    def _emit(self, order: str) -> Tuple[str, Dict[str, Any]]:
        em = _Emitter()
        structs = _StructTable(order)
        namespace: Dict[str, Any] = {
            "_S": structs,
            "_U32": struct.Struct(order + "I"),
            "_mk": trusted_record,
            "_DecodeError": DecodeError,
            "_struct_error": struct.error,
            "_ECodeError": ECodeError,
            "_frz": _freeze,
            "_Record": Record,
            "_cdiv": c_div,
            "_cmod": c_mod,
        }
        for fn_name, fn in BUILTINS.items():
            namespace[f"_fn_{fn_name}"] = fn

        em.emit("def _fused_route(data, off, end):")
        em.indent += 1
        em.emit(f'"""Fused route for {self.label} (payload order {order!r})."""')

        # -- decode (dead fields skipped) ------------------------------
        em.emit("try:")
        em.indent += 1
        _gen_decode_format(
            em, self.wire_format, structs, "data", "end", "_r0",
            live=self.wire_live,
        )
        em.emit("if off != end:")
        em.indent += 1
        em.emit(
            "raise _DecodeError('%d trailing bytes after decoding format "
            f"{self.wire_format.name}' % (end - off,))"
        )
        em.indent -= 2
        em.emit("except _struct_error as exc:")
        em.indent += 1
        em.emit(
            f"raise _DecodeError('truncated message for {self.wire_format.name}:"
            " %s' % (exc,)) from None"
        )
        em.indent -= 1
        em.emit("except UnicodeDecodeError as exc:")
        em.indent += 1
        em.emit(
            "raise _DecodeError('invalid UTF-8 in string field of "
            f"{self.wire_format.name}: %s' % (exc,)) from None"
        )
        em.indent -= 1
        em.emit("except (IndexError, KeyError, MemoryError, OverflowError) as exc:")
        em.indent += 1
        em.emit(
            f"raise _DecodeError('corrupt message for {self.wire_format.name}:"
            " %r' % (exc,)) from None"
        )
        em.indent -= 1

        # -- inlined transform chain -----------------------------------
        result = "_r0"
        chain_steps = [
            (k, step, program)
            for k, (step, program, stage) in enumerate(self._steps)
            if stage == "chain"
        ]
        coercion_steps = [
            (k, step, program)
            for k, (step, program, stage) in enumerate(self._steps)
            if stage == "coercion"
        ]
        if chain_steps:
            result = self._emit_steps(
                em, namespace, chain_steps, "_chain_fail",
                _make_fail("chain", self.label),
                freeze=not coercion_steps,
            )
        if coercion_steps:
            result = self._emit_steps(
                em, namespace, coercion_steps, "_coerce_fail",
                _make_fail("coercion", self.label),
                freeze=True,
            )

        # -- structural reconcile (total: no try region needed) --------
        if self._walker_coercion is not None:
            result = self._emit_walker(em, namespace, result)

        # consumed length rides along so batch receivers decoding
        # successive records from one shared buffer can advance a cursor
        em.emit(f"return {result}, off")
        return em.source(), namespace

    def _emit_steps(
        self,
        em: _Emitter,
        namespace: Dict[str, Any],
        steps: List[Tuple[int, Transformation, "analyze.ast.Program"]],
        fail_name: str,
        fail: Callable[[BaseException], None],
        freeze: bool,
    ) -> str:
        """Inline a run of transform steps inside one try region whose
        failures all map to *fail* (chain vs coercion stage — the
        receiver's counters distinguish the two, like the staged path)."""
        namespace[fail_name] = fail
        last = steps[-1][0]
        em.emit("try:")
        em.indent += 1
        for k, step, program in steps:
            out = f"_r{k + 1}"
            factory = f"_gr{k}"
            namespace[factory] = _record_factory(step.target)
            em.emit(f"{out} = {factory}()")
            rename = {"new": f"_r{k}", "old": out}
            for local in analyze.declared_names(program):
                rename[local] = f"_s{k}_{local}"
            em.lines.extend(generate_inline(program, rename, indent=em.indent))
        if freeze:
            # only the record leaving the fused pipeline is frozen; the
            # intermediates die here and skip the staged path's per-hop
            # freeze walk entirely
            em.emit(f"_frz(_r{last + 1})")
        em.indent -= 1
        em.emit("except _ECodeError as exc:")
        em.indent += 1
        em.emit(f"{fail_name}(exc)")
        em.indent -= 1
        escapes = "(KeyError, IndexError, TypeError, AttributeError, ValueError)"
        em.emit(f"except {escapes} as exc:")
        em.indent += 1
        em.emit(f"{fail_name}(exc)")
        em.indent -= 1
        return f"_r{last + 1}"

    def _emit_walker(
        self, em: _Emitter, namespace: Dict[str, Any], rec: str
    ) -> str:
        """Inline :func:`repro.morph.compat.coerce_record` for this
        route's fixed ``(src, dst)`` pair: per-field copy/default
        decisions are taken at compile time, the per-value coercions stay
        the exact same (total) helpers the walker uses."""
        src_fmt, dst_fmt = self._walker_coercion  # type: ignore[misc]
        em.emit("_out = _Record()")
        for i, field in enumerate(dst_fmt.fields):
            default = f"_df{i}"
            namespace[default] = field.default_instance
            src_field = src_fmt.get_field(field.name)
            if src_field is not None and field.matches(src_field):
                copier = f"_cp{i}"
                namespace[copier] = partial(_coerce_field, src_field, field)
                em.emit(
                    f"_out[{field.name!r}] = {copier}({rec}[{field.name!r}])"
                    f" if {field.name!r} in {rec} else {default}()"
                )
            else:
                em.emit(f"_out[{field.name!r}] = {default}()")
        for field in dst_fmt.fields:
            spec = field.array
            if spec is not None and spec.length_field is not None:
                em.emit(
                    f"_out[{spec.length_field!r}] = len(_out[{field.name!r}])"
                )
        return "_out"


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def plan_fusion(route: Any) -> Optional[FusedRoute]:
    """Build the fusion plan for a freshly planned ``_Route``, or ``None``
    when the route must stay staged.

    Runs the backward liveness pass here (cheap AST work); actual source
    emission and ``compile()`` happen lazily per byte order in
    :meth:`FusedRoute.fn_for`.
    """
    if route.is_reject or route.handler_format is None:
        return None
    transforms: List[Tuple[Transformation, str]] = []
    if route.chain is not None:
        transforms.extend((step, "chain") for step in route.chain.steps)
    if route.coercion_transform is not None:
        transforms.append((route.coercion_transform, "coercion"))
    walker_coercion = (
        route.coercion if route.coercion_transform is None else None
    )
    if not transforms and walker_coercion is None:
        return None  # plain decode + dispatch: nothing to fuse
    for step, _stage in transforms:
        program = getattr(step.procedure, "program", None)
        if program is None:  # interpreter procedure: no AST-to-inline
            return None
        if step.validate_output:
            return None
        if analyze.has_return(program):
            return None
        if {"new", "old"} & analyze.declared_names(program):
            return None  # shadowed parameters defeat the rename map

    # backward liveness: what does each stage's consumer actually read?
    if walker_coercion is not None:
        src_fmt, dst_fmt = walker_coercion
        live_after: Optional[Set[str]] = {
            f.name
            for f in dst_fmt.fields
            if (sf := src_fmt.get_field(f.name)) is not None and f.matches(sf)
        }
    else:
        live_after = None  # the handler sees the record: everything live

    steps: List[Tuple[Transformation, "analyze.ast.Program", str]] = []
    for step, stage in reversed(transforms):
        program = step.procedure.program
        if live_after is not None:
            program = analyze.prune_dead_stores(
                program,
                "old",
                live_after,
                "new",
                {f.name for f in step.source.fields},
                {f.name for f in step.target.fields},
            )
        steps.append((step, program, stage))
        live_after = analyze.fields_used(program, "new")
    steps.reverse()

    wire_live = live_after
    if wire_live is not None and wire_live >= {
        f.name for f in route.wire_format.fields
    }:
        wire_live = None  # everything live: use the plain full decode
    label = (
        f"{route.wire_format.name}.v{route.wire_format.version}"
        f"->{route.handler_format.name}.v{route.handler_format.version}"
    )
    return FusedRoute(
        wire_format=route.wire_format,
        wire_live=wire_live,
        label=label,
        steps=steps,
        walker_coercion=walker_coercion,
    )
