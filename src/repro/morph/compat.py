"""Imperfect-match reconciliation (Algorithm 2, lines 25-28).

When MaxMatch picks a pair that is *not* perfect, the receiver must still
deliver a record of the format its handler expects:

    "Put in the default values for the missing fields.
     Remove fields in f1 that are not in f2."

:func:`coerce_record` implements that reconciliation structurally —
copying same-named same-typed fields (recursing through complex fields
and arrays), dropping everything else, and filling the rest of the target
from field defaults (XML-style name-based mapping with default values,
Section 2 of the paper).

:func:`generate_coercion_ecode` emits the equivalent ECode source, so the
same reconciliation can ride the normal transformation pipeline; the test
suite checks the generated ECode agrees with the structural path.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from repro.errors import MorphError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.types import TypeKind, coerce_value


def coerce_record(src_fmt: IOFormat, dst_fmt: IOFormat, rec: Mapping[str, Any]) -> Record:
    """Reshape *rec* (a record of *src_fmt*) into a record of *dst_fmt*.

    Fields of *dst_fmt* with a same-named, same-typed counterpart in
    *src_fmt* are copied (recursively); everything else gets the target
    field's default.  Fields of *src_fmt* with no counterpart are dropped.
    Count fields of variable arrays are re-synchronized with the actual
    element counts afterwards, so the result always validates.
    """
    out = Record()
    for field in dst_fmt.fields:
        src_field = src_fmt.get_field(field.name)
        if src_field is not None and field.matches(src_field) and field.name in rec:
            out[field.name] = _coerce_field(src_field, field, rec[field.name])
        else:
            out[field.name] = field.default_instance()
    # re-synchronize variable-array count fields
    for field in dst_fmt.fields:
        spec = field.array
        if spec is not None and spec.length_field is not None:
            out[spec.length_field] = len(out[field.name])
    return out


def _coerce_field(src_field: IOField, dst_field: IOField, value: Any) -> Any:
    if dst_field.is_array:
        if not isinstance(value, list):
            return dst_field.default_instance()
        elements = [_coerce_element(src_field, dst_field, item) for item in value]
        spec = dst_field.array
        assert spec is not None
        if spec.fixed_length is not None:
            if len(elements) > spec.fixed_length:
                elements = elements[: spec.fixed_length]
            while len(elements) < spec.fixed_length:
                elements.append(_element_default(dst_field))
        return elements
    return _coerce_element(src_field, dst_field, value)


def _coerce_element(src_field: IOField, dst_field: IOField, value: Any) -> Any:
    if dst_field.is_complex:
        assert dst_field.subformat is not None and src_field.subformat is not None
        if not isinstance(value, Mapping):
            return dst_field.subformat.default_record()
        return coerce_record(src_field.subformat, dst_field.subformat, value)
    try:
        return coerce_value(dst_field.kind, value)
    except Exception:
        return _element_default(dst_field)


def _element_default(field: IOField) -> Any:
    if field.is_complex:
        assert field.subformat is not None
        return field.subformat.default_record()
    from repro.pbio.types import default_value

    return default_value(field.kind)


def reconcile_field_stats(src_fmt: IOFormat, dst_fmt: IOFormat) -> "tuple[int, int]":
    """``(dropped, defaulted)`` top-level field counts for the
    ``src_fmt -> dst_fmt`` reconciliation: how many incoming fields have
    no landing spot (removed) and how many target fields get filled from
    defaults (missing).  Computed once per route and recorded per morph
    by the observability layer."""
    dropped = 0
    for field in src_fmt.fields:
        counterpart = dst_fmt.get_field(field.name)
        if counterpart is None or not counterpart.matches(field):
            dropped += 1
    defaulted = 0
    for field in dst_fmt.fields:
        counterpart = src_fmt.get_field(field.name)
        if counterpart is None or not field.matches(counterpart):
            defaulted += 1
    return dropped, defaulted


# ---------------------------------------------------------------------------
# ECode auto-generation
# ---------------------------------------------------------------------------


def generate_coercion_ecode(src_fmt: IOFormat, dst_fmt: IOFormat) -> str:
    """Emit ECode implementing ``coerce_record(src_fmt, dst_fmt, .)``.

    The generated snippet reads the incoming record as ``new`` and writes
    the receiver's record as ``old`` — the same convention as hand-written
    transformations, so it compiles and caches through the identical DCG
    pipeline.  Supports scalar fields, complex fields and *variable*
    arrays; mismatched fixed arrays raise :class:`MorphError` (reshaping a
    fixed array needs application knowledge a structural mapping cannot
    invent).
    """
    gen = _ECodeCoercionGenerator()
    gen.emit_format("new", "old", src_fmt, dst_fmt)
    return "\n".join(gen.lines) + "\n"


_DEFAULT_LITERALS = {
    TypeKind.INTEGER: "0",
    TypeKind.UNSIGNED: "0",
    TypeKind.ENUMERATION: "0",
    TypeKind.FLOAT: "0.0",
    TypeKind.BOOLEAN: "0",
    TypeKind.CHAR: "'\\0'",
    TypeKind.STRING: '""',
}


class _ECodeCoercionGenerator:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self._loop_depth = 0

    def _emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _loop_var(self) -> str:
        self._loop_depth += 1
        name = f"i{self._loop_depth}"
        self._emit(f"int {name};")
        return name

    def emit_format(self, src: str, dst: str, src_fmt: IOFormat, dst_fmt: IOFormat) -> None:
        for field in dst_fmt.fields:
            src_field = src_fmt.get_field(field.name)
            if src_field is not None and field.matches(src_field):
                self._emit_copy(src, dst, src_field, field)
            else:
                self._emit_default(dst, field)
        for field in dst_fmt.fields:
            spec = field.array
            if spec is not None and spec.length_field is not None:
                src_field = src_fmt.get_field(field.name)
                if src_field is None or not field.matches(src_field):
                    self._emit(f"{dst}.{spec.length_field} = 0;")

    def _emit_copy(self, src: str, dst: str, src_field: IOField, field: IOField) -> None:
        if field.is_array:
            src_spec, dst_spec = src_field.array, field.array
            assert src_spec is not None and dst_spec is not None
            if dst_spec.fixed_length is not None or src_spec.fixed_length is not None:
                if src_spec.fixed_length == dst_spec.fixed_length:
                    count_expr = str(src_spec.fixed_length)
                else:
                    raise MorphError(
                        f"cannot auto-generate ECode for mismatched fixed "
                        f"arrays ({field.name!r})"
                    )
            else:
                count_expr = f"{src}.{src_spec.length_field}"
                self._emit(f"{dst}.{dst_spec.length_field} = {count_expr};")
            var = self._loop_var()
            self._emit(f"for ({var} = 0; {var} < {count_expr}; {var}++) {{")
            self.indent += 1
            if field.is_complex:
                assert field.subformat is not None and src_field.subformat is not None
                self.emit_format(
                    f"{src}.{field.name}[{var}]",
                    f"{dst}.{field.name}[{var}]",
                    src_field.subformat,
                    field.subformat,
                )
            else:
                self._emit(f"{dst}.{field.name}[{var}] = {src}.{field.name}[{var}];")
            self.indent -= 1
            self._emit("}")
        elif field.is_complex:
            assert field.subformat is not None and src_field.subformat is not None
            self.emit_format(
                f"{src}.{field.name}",
                f"{dst}.{field.name}",
                src_field.subformat,
                field.subformat,
            )
        else:
            self._emit(f"{dst}.{field.name} = {src}.{field.name};")

    def _emit_default(self, dst: str, field: IOField) -> None:
        if field.is_array:
            return  # left empty; the count field is zeroed in emit_format
        if field.is_complex:
            assert field.subformat is not None
            for sub in field.subformat.fields:
                self._emit_default(f"{dst}.{field.name}", sub)
            return
        self._emit(f"{dst}.{field.name} = {_DEFAULT_LITERALS[field.kind]};")
