"""Receiver-side message processing — Algorithm 2 of the paper.

The :class:`MorphReceiver` is the morphing middleware layer that sits
between the wire and the application's handlers:

1. the format of an incoming message is resolved from its wire id,
2. if this format was seen before, the **cached** route (decode →
   transform chain → reconciliation → handler) runs immediately,
3. otherwise ``MaxMatch(fm, Fr)`` looks for a direct match among the
   reader's registered formats of the same name; a perfect match
   dispatches straight to its handler,
4. failing that, ``MaxMatch(Ft, Fr)`` runs over the *transform closure*
   ``Ft`` of the incoming format (the format itself plus everything
   reachable through writer-supplied retro-transformations, chains
   included — Figure 1), and the chosen chain is dynamically compiled,
5. an imperfect final pair is reconciled by default-filling missing
   fields and dropping unknown ones,
6. the handler registered for the matched format is invoked; with no
   acceptable match the message goes to the default handler or is
   rejected with :class:`~repro.errors.NoMatchError`.

Every decision is cached per incoming format id, so the expensive steps
run once per format, not once per message — the cost structure the
paper's evaluation relies on.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import (
    MorphError,
    NoMatchError,
    TransformError,
    UnknownFormatError,
)
from repro.morph.compat import (
    coerce_record,
    generate_coercion_ecode,
    reconcile_field_stats,
)
from repro.obs import OBS
from repro.obs.metrics import COUNT_BUCKETS, RATIO_BUCKETS
from repro.obs.metrics import Registry as MetricsRegistry
from repro.morph.maxmatch import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_MISMATCH_THRESHOLD,
    MatchResult,
    max_match,
)
from repro.morph.fusion import FusedRoute, plan_fusion
from repro.morph.transform import TransformChain, Transformation, build_chain
from repro.obs.tracectx import activate
from repro.pbio.buffer import (
    FLAG_BIG_ENDIAN,
    HEADER_SIZE,
    peek_trace,
    unpack_header,
)
from repro.pbio.codegen import make_checked_payload_decoder
from repro.pbio.context import PBIOContext
from repro.pbio.format import IOFormat
from repro.pbio.projection import ProjectionFormat, widen_record
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry, TransformSpec

Handler = Callable[[Record], Any]
DefaultHandler = Callable[[IOFormat, Record], Any]


#: Counter names kept by every receiver, exposed both as legacy
#: attributes (``stats.messages``) and as ``morph.receiver.*`` metrics.
STAT_COUNTERS = (
    "messages",
    "cache_hits",
    "cache_misses",
    "perfect_matches",
    "morphed",
    "reconciled",
    "rejected",
    "compiled_chains",
    "broken_transforms",
)


class ReceiverStats:
    """Per-receiver counters, backed by the observability registry.

    Each receiver owns a private :class:`repro.obs.metrics.Registry`
    holding its ``morph.receiver.*`` counters and the
    ``morph.maxmatch.mismatch_ratio`` histogram; when process-wide
    observability is enabled (:func:`repro.obs.enable`) every update is
    mirrored into the global registry as well, so exporters see the
    aggregate across all receivers.

    The historical attributes (``stats.messages``, ``stats.cache_hits``,
    ...) remain readable as thin properties over the counters.
    """

    __slots__ = ("registry", "_counters", "_mismatch")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"morph.receiver.{name}")
            for name in STAT_COUNTERS
        }
        self._mismatch = self.registry.histogram(
            "morph.maxmatch.mismatch_ratio", bounds=RATIO_BUCKETS
        )

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)
        if OBS.enabled:
            OBS.metrics.counter(f"morph.receiver.{name}").inc(amount)

    def observe_mismatch(self, ratio: float) -> None:
        """Record one MaxMatch decision's mismatch ratio."""
        self._mismatch.observe(ratio)
        if OBS.enabled:
            OBS.metrics.histogram(
                "morph.maxmatch.mismatch_ratio", bounds=RATIO_BUCKETS
            ).observe(ratio)

    @property
    def mismatch_ratios(self):
        """The per-receiver mismatch-ratio histogram."""
        return self._mismatch

    def snapshot(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}

    def set_route_cache_size(self, size: int) -> None:
        """Track the bounded route cache's occupancy (a gauge, so it is
        *not* part of :meth:`snapshot` — fused and staged receivers plan
        identical routes but the comparison is over counters)."""
        self.registry.gauge("morph.receiver.route_cache_size").set(size)
        if OBS.enabled:
            OBS.metrics.gauge("morph.receiver.route_cache_size").set(size)


def _stat_property(name: str):
    return property(
        lambda self: self._counters[name].value,
        doc=f"Value of the morph.receiver.{name} counter.",
    )


for _name in STAT_COUNTERS:
    setattr(ReceiverStats, _name, _stat_property(_name))
del _name


@dataclass
class DeadLetter:
    """One message the receiver could not process, parked for forensics
    and retry: the raw wire bytes, the wire format id (when the header
    was readable), the pipeline stage that failed and the error.

    Dead letters are the *Schema Evolution in Interactive Programming
    Systems* stance made concrete: unconvertible data is an inspectable
    state, not a crash."""

    data: bytes
    format_id: Optional[int]
    stage: str  # "decode" | "unknown_format" | "transform" | "no_match" | "dispatch"
    error: str
    attempts: int = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeadLetter(stage={self.stage!r}, format_id={self.format_id}, "
            f"attempts={self.attempts}, error={self.error!r})"
        )


@dataclass
class _Route:
    """The cached per-format processing pipeline."""

    wire_format: IOFormat
    chain: Optional[TransformChain]
    coercion: Optional[Tuple[IOFormat, IOFormat]]  # (from, to) for reconcile
    handler_format: Optional[IOFormat]  # None -> default handler / reject
    match: Optional[MatchResult] = None
    #: when ecode_coercion is enabled and the shapes allow it, the
    #: reconcile step runs as a DCG-compiled generated transform instead
    #: of the structural Python walker
    coercion_transform: Optional[Transformation] = None
    #: top-level fields dropped / default-filled by the reconcile step,
    #: computed once at plan time and recorded per morph by obs
    fields_dropped: int = 0
    fields_defaulted: int = 0
    #: whole-route fusion plan (decode + chain + reconcile compiled into
    #: one function); None keeps the route on the staged pipeline
    fused: Optional[FusedRoute] = None
    #: set on projection routes that fall back to the staged pipeline:
    #: (projection, parent) — the projected record is widened back to the
    #: full parent shape (defaults for dead fields) before the parent's
    #: transform chain runs, since the chain's ECode was compiled against
    #: the parent's field set
    pre_coercion: Optional[Tuple[IOFormat, IOFormat]] = None
    #: per-byte-order checked payload decoders for the batch hot path —
    #: identity routes are never fused (there is nothing to fuse), so the
    #: batch loop decodes them straight from the parsed header instead of
    #: re-entering the per-message pipeline
    payload_decoders: Dict[str, Callable[[bytes, int, int], Tuple[Record, int]]] = field(
        default_factory=dict
    )

    @property
    def is_reject(self) -> bool:
        return self.handler_format is None


class MorphReceiver:
    """Morphing-aware message receiver for one endpoint.

    Parameters
    ----------
    registry:
        Format registry holding out-of-band meta-data (formats and their
        writer-supplied transformations).  Shared or replicated with the
        sending side.
    diff_threshold / mismatch_threshold:
        The MaxMatch acceptance constants.  ``diff_threshold=0,
        mismatch_threshold=0.0`` admits only perfect matches.
    use_codegen:
        False switches both PBIO decoding and ECode transforms to their
        interpretive implementations (ablation).
    use_fusion:
        Whether wire messages run through whole-route fusion — decode,
        transform chain and reconcile compiled into a single generated
        function per route (:mod:`repro.morph.fusion`).  ``None`` (the
        default) follows the class attribute ``DEFAULT_USE_FUSION``;
        False keeps every route on the staged pipeline (ablation
        baseline and differential-test reference).  Fusion requires
        ``use_codegen`` and is disabled under ``validate_transforms``
        (fused chains skip per-step output validation by design).
    validate_transforms:
        Forwarded to :class:`~repro.morph.transform.Transformation`.
        Defaults to False on this hot path — the paper's system writes
        transform output straight into a C struct with no re-check; turn
        it on when debugging new transformations.
    weighted:
        True scores MaxMatch by field *importance*
        (:func:`repro.morph.diff.weighted_diff`) instead of field counts —
        the paper's future-work refinement.  Thresholds then bound
        importance mass.
    ecode_coercion:
        True routes the imperfect-match reconcile step through
        :func:`~repro.morph.compat.generate_coercion_ecode` — the fill/
        drop mapping is emitted as ECode and DCG-compiled like any other
        transform (falling back to the structural Python walker for
        shapes the generator does not support, e.g. resized fixed
        arrays).
    contain_failures:
        True turns :meth:`process` into a total function: instead of
        raising, failed messages (undecodable bytes, unknown formats,
        broken transforms, rejected matches, handler exceptions) land in
        a bounded **dead-letter queue** with the raw bytes and error
        attached, and :meth:`process` returns ``None``.  A format id
        failing *quarantine_threshold* consecutive times is
        **quarantined**: its messages are counted and dropped at the
        header peek, so poison traffic stops paying pipeline costs.
        :meth:`retry_dead_letters` re-processes the queue (e.g. after a
        late format registration), lifting quarantines for the formats
        it retries.
    dlq_limit:
        Dead-letter queue capacity; the oldest entry is evicted (and
        counted) when a new failure arrives at capacity.
    quarantine_threshold:
        Consecutive failures of one format id before it is quarantined.
    """

    #: default for the ``use_fusion`` constructor argument; the test
    #: suite's parametrized fixture flips this to run everything against
    #: both pipelines
    DEFAULT_USE_FUSION = True
    #: bound on the per-format route cache (and thereby on the compiled
    #: fused routines a receiver can hold): format churn through
    #: ``FormatRegistry.unregister`` must not leak generated code
    MAX_ROUTES = 256

    def __init__(
        self,
        registry: Optional[FormatRegistry] = None,
        diff_threshold: int = DEFAULT_DIFF_THRESHOLD,
        mismatch_threshold: float = DEFAULT_MISMATCH_THRESHOLD,
        use_codegen: bool = True,
        validate_transforms: bool = False,
        weighted: bool = False,
        ecode_coercion: bool = False,
        use_fusion: Optional[bool] = None,
        contain_failures: bool = False,
        dlq_limit: int = 64,
        quarantine_threshold: int = 3,
    ) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.context = PBIOContext(self.registry, use_codegen=use_codegen)
        self.diff_threshold = diff_threshold
        self.mismatch_threshold = mismatch_threshold
        self.use_codegen = use_codegen
        self.validate_transforms = validate_transforms
        self.weighted = weighted
        self.ecode_coercion = ecode_coercion
        if use_fusion is None:
            use_fusion = self.DEFAULT_USE_FUSION
        self.use_fusion = use_fusion and use_codegen and not validate_transforms
        self.stats = ReceiverStats()
        self._lock = threading.RLock()
        self._handlers: Dict[int, Handler] = {}
        self._handler_formats: List[IOFormat] = []
        self._default_handler: Optional[DefaultHandler] = None
        self._routes: Dict[int, _Route] = {}
        self.contain_failures = contain_failures
        self.quarantine_threshold = quarantine_threshold
        self._dead_letters: Deque[DeadLetter] = deque(maxlen=dlq_limit)
        self._quarantined: Set[int] = set()
        self._failure_counts: Dict[int, int] = {}
        #: "dispatch" while a handler runs; lets containment attribute a
        #: generic exception to the handler rather than the pipeline
        self._stage = "pipeline"
        self._retrying = False
        self.containment = {
            "dead_lettered": 0,
            "evicted": 0,
            "quarantined_formats": 0,
            "quarantine_drops": 0,
            "retried": 0,
            "retry_failures": 0,
        }

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_handler(self, fmt: IOFormat, handler: Handler) -> None:
        """Declare that this reader understands *fmt*, delivering its
        records to *handler*.  Mirrors PBIO's reader-side format+handler
        registration."""
        with self._lock:
            self.registry.register(fmt)
            self._handlers[fmt.format_id] = handler
            if all(f.format_id != fmt.format_id for f in self._handler_formats):
                self._handler_formats.append(fmt)
            self._routes.clear()  # a new handler can change every route

    def register_default_handler(self, handler: DefaultHandler) -> None:
        """Handler of last resort, called as ``handler(fmt, record)`` for
        messages no match admits (Algorithm 2's "default handler")."""
        with self._lock:
            self._default_handler = handler
            self._routes.clear()

    def known_formats(self) -> List[IOFormat]:
        with self._lock:
            return list(self._handler_formats)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, data: bytes) -> Any:
        """Process one wire message; returns whatever the handler returns.

        Raises :class:`UnknownFormatError` for unregistered wire ids and
        :class:`NoMatchError` for rejected messages when no default
        handler is installed — unless ``contain_failures`` is set, in
        which case failures dead-letter and ``None`` is returned."""
        if self.contain_failures:
            return self._process_contained(data)
        if not OBS.enabled:
            return self._process(data)
        # re-activate the wire-carried trace context (a no-op for
        # untraced messages) so standalone receivers — and replays from
        # queues where the publishing call stack is gone — still join
        # the message's distributed trace
        with activate(peek_trace(data)), OBS.tracer.span("morph.process"):
            return self._process(data)

    def process_batch(self, data: bytes) -> List[Any]:
        """Process one BATCH1 frame (:mod:`repro.net.batch`): validate
        the frame once, activate its frame-level trace context once, then
        run every contained message through :meth:`process` as a
        zero-copy ``memoryview`` slice of the shared receive buffer.

        Containment is per *message*: with ``contain_failures`` set, a
        poisoned message dead-letters alone (its raw bytes are copied out
        of the shared buffer) and the rest of the batch still delivers.
        A malformed *frame* dead-letters whole — there is no trustworthy
        way to split it.  Without containment the first failure raises,
        exactly like :meth:`process`.

        Returns the per-message handler results, in wire order."""
        from repro.net.batch import unpack_batch

        try:
            frame = unpack_batch(data)
        except Exception as exc:  # noqa: BLE001 - malformed frame
            if self.contain_failures:
                self._dead_letter(data, None, "decode", exc)
                return []
            raise
        view = data if isinstance(data, memoryview) else memoryview(data)
        # one trace splice per frame: activate(None) is a passthrough, so
        # the frame context survives each message's own (trace-less)
        # activate in process()
        if not self.contain_failures and not OBS.enabled:
            with activate(frame.trace):
                return self._process_batch_fast(view, frame.segments)
        results: List[Any] = []
        with activate(frame.trace):
            for off, length in frame.segments:
                results.append(self.process(view[off:off + length]))
        return results

    def _process_batch_fast(
        self, view: memoryview, segments: Tuple[Tuple[int, int], ...]
    ) -> List[Any]:
        """The zero-copy decode hot path: successive records are decoded
        straight out of the shared frame buffer through each format's
        cached fused routine — or, for routes with nothing to fuse
        (identity traffic), a cached checked payload decoder driven by
        the already-parsed header — with the per-message wrapper work
        (route lookup, stat increments) hoisted out of the loop.  Counter
        totals stay identical to running :meth:`process` per message —
        the batching differential oracle depends on that.  Segments whose
        route is cold or rejecting, or interpretive-decode receivers
        (``use_codegen=False``), fall back to the normal per-message
        pipeline."""
        results: List[Any] = []
        routes = self._routes
        handlers = self._handlers
        stats = self.stats
        use_codegen = self.use_codegen
        fast = morphed = reconciled = perfect = 0
        last_id = -1
        route: Optional[_Route] = None
        try:
            for off, length in segments:
                seg = view[off:off + length]
                try:
                    header = unpack_header(seg)
                except Exception:
                    # _process counts a message before parsing its header
                    stats.inc("messages")
                    raise
                if header.format_id != last_id:
                    last_id = header.format_id
                    route = routes.get(last_id)
                if route is None or route.is_reject:
                    results.append(self._process(seg))
                    continue
                order = ">" if header.flags & FLAG_BIG_ENDIAN else "<"
                fused = route.fused
                fn = fused.fn_for(order) if fused is not None else None
                if fn is None and not use_codegen:
                    results.append(self._process(seg))
                    continue
                # committed to the fast path: messages/cache_hits count
                # even if decode fails, exactly like _process
                fast += 1
                body = header.body_offset
                end = body + header.payload_length
                if fn is not None:
                    try:
                        record, _consumed = fn(seg, body, end)
                    except TransformError as exc:
                        # mirror _run_fused: a chain that completed before
                        # a failing reconcile still counts as morphed
                        if (
                            getattr(exc, "fused_stage", None) == "coercion"
                            and route.chain is not None
                        ):
                            morphed += 1
                        raise
                    if route.chain is not None:
                        morphed += 1
                else:
                    dec = route.payload_decoders.get(order)
                    if dec is None:
                        dec = make_checked_payload_decoder(
                            route.wire_format, order
                        )
                        route.payload_decoders[order] = dec
                    record, _consumed = dec(seg, body, end)
                    if route.pre_coercion is not None:
                        record = widen_record(*route.pre_coercion, record)
                        if OBS.enabled:
                            OBS.metrics.counter(
                                "morph.projection.widened"
                            ).inc()
                    if route.chain is not None:
                        record = route.chain.apply(record)
                        morphed += 1
                    if route.coercion is not None:
                        record = self._reconcile(route, record)
                if route.coercion is not None:
                    reconciled += 1
                else:
                    perfect += 1
                results.append(
                    self._invoke(handlers[route.handler_format.format_id], record)
                )
        finally:
            if fast:
                stats.inc("messages", fast)
                stats.inc("cache_hits", fast)
                if morphed:
                    stats.inc("morphed", morphed)
                if reconciled:
                    stats.inc("reconciled", reconciled)
                if perfect:
                    stats.inc("perfect_matches", perfect)
        return results

    def _process_contained(self, data: bytes) -> Any:
        """Total-function variant of :meth:`process`: classify failures
        by pipeline stage, dead-letter the message, quarantine repeat
        offenders — and never raise into the transport."""
        try:
            format_id: Optional[int] = unpack_header(data).format_id
        except Exception as exc:  # noqa: BLE001 - malformed header
            self._dead_letter(data, None, "decode", exc)
            return None
        if format_id in self._quarantined and not self._retrying:
            self.containment["quarantine_drops"] += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "morph.receiver.quarantine_drops"
                ).inc()
            return None
        self._stage = "pipeline"
        try:
            if not OBS.enabled:
                return self._process(data)
            # the DLQ keeps the raw wire bytes, so a retry_dead_letters
            # pass re-enters here with the original trace block intact —
            # the retry's spans resume the original trace
            with activate(peek_trace(data)), OBS.tracer.span("morph.process"):
                return self._process(data)
        except UnknownFormatError as exc:
            self._dead_letter(data, format_id, "unknown_format", exc)
        except NoMatchError as exc:
            self._dead_letter(data, format_id, "no_match", exc)
        except TransformError as exc:
            self._dead_letter(data, format_id, "transform", exc)
        except Exception as exc:  # noqa: BLE001 - defined containment
            stage = "dispatch" if self._stage == "dispatch" else "decode"
            self._dead_letter(data, format_id, stage, exc)
        finally:
            self._stage = "pipeline"
        return None

    def _dead_letter(
        self,
        data: bytes,
        format_id: Optional[int],
        stage: str,
        exc: BaseException,
    ) -> None:
        with self._lock:
            if (
                self._dead_letters.maxlen is not None
                and len(self._dead_letters) == self._dead_letters.maxlen
            ):
                self.containment["evicted"] += 1
                if OBS.enabled:
                    OBS.metrics.counter("morph.receiver.dlq_evicted").inc()
            self._dead_letters.append(
                DeadLetter(
                    # copy: batch receivers hand memoryview slices into a
                    # shared receive buffer; a dead letter must own its
                    # bytes so retry_dead_letters outlives the buffer
                    data=bytes(data),
                    format_id=format_id,
                    stage=stage,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            self.containment["dead_lettered"] += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "morph.receiver.dead_letters", stage=stage
                ).inc()
            if format_id is None:
                return
            count = self._failure_counts.get(format_id, 0) + 1
            self._failure_counts[format_id] = count
            if (
                count >= self.quarantine_threshold
                and format_id not in self._quarantined
            ):
                self._quarantined.add(format_id)
                # drop any cached route: if the quarantine is later
                # lifted, the route is replanned against fresh meta-data
                self._routes.pop(format_id, None)
                self.containment["quarantined_formats"] += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "morph.receiver.quarantined_formats"
                    ).inc()

    # ------------------------------------------------------------------
    # Dead-letter queue / quarantine introspection and retry
    # ------------------------------------------------------------------

    @property
    def dead_letters(self) -> List[DeadLetter]:
        """A snapshot of the dead-letter queue, oldest first."""
        with self._lock:
            return list(self._dead_letters)

    @property
    def quarantined_formats(self) -> Set[int]:
        with self._lock:
            return set(self._quarantined)

    def is_quarantined(self, format_id: int) -> bool:
        return format_id in self._quarantined

    def lift_quarantine(self, format_id: int) -> bool:
        """Manually unquarantine a format id (its failure count resets;
        its route is replanned on the next message)."""
        with self._lock:
            self._failure_counts.pop(format_id, None)
            if format_id in self._quarantined:
                self._quarantined.discard(format_id)
                return True
            return False

    def retry_dead_letters(self) -> Tuple[int, int]:
        """Re-process every dead letter — the hook to call after the
        failure cause is fixed (a late format registration, a repaired
        transform, a redeployed handler).  Quarantines and failure
        counts for the retried formats are lifted first; messages that
        fail again re-enter the queue with ``attempts`` bumped.

        Returns ``(succeeded, requeued)``."""
        with self._lock:
            entries = list(self._dead_letters)
            self._dead_letters.clear()
            for entry in entries:
                if entry.format_id is not None:
                    self._quarantined.discard(entry.format_id)
                    self._failure_counts.pop(entry.format_id, None)
        succeeded = 0
        requeued = 0
        self._retrying = True
        try:
            for entry in entries:
                depth_before = len(self._dead_letters)
                self._process_contained(entry.data)
                if len(self._dead_letters) > depth_before:
                    self._dead_letters[-1].attempts = entry.attempts + 1
                    requeued += 1
                    self.containment["retry_failures"] += 1
                else:
                    succeeded += 1
                    self.containment["retried"] += 1
        finally:
            self._retrying = False
        if OBS.enabled and entries:
            OBS.metrics.counter("morph.receiver.dlq_retried").inc(succeeded)
            OBS.metrics.counter("morph.receiver.dlq_requeued").inc(requeued)
        return succeeded, requeued

    def has_exact_route(self, fmt: IOFormat) -> bool:
        """Whether *fmt* reaches a registered handler without falling
        back to MaxMatch reconciliation: either a handler is registered
        for it directly, or a writer-supplied transform chain ends at a
        handled format.  The morphing-aware transports use this to
        decide when to refresh a format's transform closure from the
        format server before processing."""
        with self._lock:
            if fmt.format_id in self._handlers:
                return True
            for chain in self.registry.transform_closure(fmt):
                if chain[-1].target.format_id in self._handlers:
                    return True
        return False

    def _process(self, data: bytes) -> Any:
        self.stats.inc("messages")
        header = unpack_header(data)
        format_id = header.format_id
        route = self._routes.get(format_id)
        if route is not None:
            self.stats.inc("cache_hits")
        else:
            incoming = self.registry.lookup_id(format_id)
            if incoming is None:
                raise UnknownFormatError(format_id)
            self.stats.inc("cache_misses")
            with self._lock:
                route = self._routes.get(format_id)
                if route is None:
                    route = self._plan_route(incoming)
                    self._cache_route(format_id, route)
        if route.fused is not None:
            order = ">" if header.flags & FLAG_BIG_ENDIAN else "<"
            fn = route.fused.fn_for(order)
            if fn is not None:
                return self._run_fused(route, fn, data, header)
        return self._run_route(route, data)

    def process_record(self, fmt: IOFormat, record: Record) -> Any:
        """Process an already-decoded record (used when the transport
        delivers in-process without a wire hop)."""
        self.stats.inc("messages")
        self.registry.register(fmt)
        route = self._routes.get(fmt.format_id)
        if route is not None:
            self.stats.inc("cache_hits")
        else:
            self.stats.inc("cache_misses")
            with self._lock:
                route = self._routes.get(fmt.format_id)
                if route is None:
                    route = self._plan_route(fmt)
                    self._cache_route(fmt.format_id, route)
        return self._deliver(route, record)

    def _cache_route(self, format_id: int, route: _Route) -> None:
        """Insert under ``self._lock``, evicting the oldest entry once the
        cache is full (FIFO: route planning is cheap relative to holding
        compiled routines for formats that stopped arriving)."""
        while len(self._routes) >= self.MAX_ROUTES:
            self._routes.pop(next(iter(self._routes)))
        self._routes[format_id] = route
        self.stats.set_route_cache_size(len(self._routes))

    # ------------------------------------------------------------------
    # Route planning (the expensive, once-per-format part)
    # ------------------------------------------------------------------

    def _plan_route(self, incoming: IOFormat) -> _Route:
        if not OBS.enabled:
            return self._attach_fusion(self._plan_any(incoming))
        with OBS.tracer.span(
            "morph.maxmatch", format=incoming.name, version=incoming.version
        ) as active:
            route = self._plan_any(incoming)
            if route.match is not None:
                active.set_attr("mismatch", route.match.mismatch)
                active.set_attr("diff", route.match.diff_forward)
            active.set_attr("rejected", route.is_reject)
            return self._attach_fusion(route)

    def _plan_any(self, incoming: IOFormat) -> _Route:
        """Projection-aware planning entry: a projection format whose
        parent has a usable route rides that route; everything else (and
        every fallback) goes through ordinary MaxMatch planning."""
        if isinstance(incoming, ProjectionFormat):
            route = self._plan_projection_route(incoming)
            if route is not None:
                return route
        return self._plan_route_inner(incoming)

    def _plan_projection_route(
        self, incoming: ProjectionFormat
    ) -> Optional[_Route]:
        """Route a projected wire format through its *parent's* plan.

        The projection carries only the negotiated live fields, but its
        field declarations are identical to the parent's, so the parent's
        transform chain, reconcile step and handler apply unchanged —
        provided the projection covers every wire field the parent route
        actually reads (its fused liveness set).  When it does, the
        projection route reuses the parent's pipeline with the projection
        as wire format: fusion re-plans against the narrower decode, and
        the staged fallback widens the record back to the parent shape
        first (``pre_coercion``).  When coverage fails — an incoherent
        negotiation window, or a parent route without a provable liveness
        set — ``None`` sends the projection through ordinary MaxMatch
        planning as just another evolved revision."""
        parent = self.registry.lookup_id(incoming.parent_format_id)
        if parent is None or parent.format_id == incoming.format_id:
            return None
        with self._lock:
            parent_route = self._routes.get(parent.format_id)
            if parent_route is None:
                parent_route = self._plan_route(parent)
                self._cache_route(parent.format_id, parent_route)
        if parent_route.is_reject:
            return None
        fused = parent_route.fused
        needed: Set[str] = (
            set(fused.wire_live)
            if fused is not None and fused.wire_live is not None
            else {f.name for f in parent.fields}
        )
        transmitted = {f.name for f in incoming.fields}
        if not needed <= transmitted:
            if OBS.enabled:
                OBS.metrics.counter("morph.projection.fallbacks").inc()
            return None
        if OBS.enabled:
            OBS.metrics.counter("morph.projection.routes").inc()
        return _Route(
            wire_format=incoming,
            chain=parent_route.chain,
            coercion=parent_route.coercion,
            handler_format=parent_route.handler_format,
            match=parent_route.match,
            coercion_transform=parent_route.coercion_transform,
            fields_dropped=parent_route.fields_dropped,
            fields_defaulted=parent_route.fields_defaulted,
            pre_coercion=(incoming, parent),
        )

    def _attach_fusion(self, route: _Route) -> _Route:
        """Plan whole-route fusion for a freshly planned route (liveness
        analysis now, per-order source emission and compile lazily)."""
        if self.use_fusion and not route.is_reject:
            route.fused = plan_fusion(route)
        return route

    def _plan_route_inner(self, incoming: IOFormat) -> _Route:
        # Line 4: Fr -- reader formats with the same name as fm
        reader_formats = [
            fmt for fmt in self._handler_formats if fmt.name == incoming.name
        ]
        # Line 11: direct MaxMatch(fm, Fr)
        direct = max_match(
            incoming,
            reader_formats,
            self.diff_threshold,
            self.mismatch_threshold,
            weighted=self.weighted,
        )
        if direct is not None and direct.is_perfect:
            self.stats.observe_mismatch(direct.mismatch)
            coercion = None
            if direct.f2.format_id != incoming.format_id:
                # perfect structural match but a different declaration
                # (e.g. widened scalar sizes): reshape field-by-field
                coercion = (incoming, direct.f2)
            dropped, defaulted = (
                reconcile_field_stats(*coercion) if coercion else (0, 0)
            )
            return _Route(
                wire_format=incoming,
                chain=None,
                coercion=coercion,
                handler_format=direct.f2,
                match=direct,
                coercion_transform=self._coercion_transform(coercion),
                fields_dropped=dropped,
                fields_defaulted=defaulted,
            )
        # Line 16: MaxMatch(Ft, Fr) over the transform closure.  A chain
        # whose writer-supplied ECode fails to compile is dropped from the
        # candidate set and planning retries — one broken transform must
        # not take the whole receiver down (other candidates, including
        # the untransformed format itself, may still match).
        chains = self.registry.transform_closure(incoming)
        while True:
            candidates: List[IOFormat] = [incoming] + [c[-1].target for c in chains]
            best = max_match(
                candidates,
                reader_formats,
                self.diff_threshold,
                self.mismatch_threshold,
                weighted=self.weighted,
            )
            if best is None:
                return _Route(
                    wire_format=incoming, chain=None, coercion=None,
                    handler_format=None,
                )
            chain: Optional[TransformChain] = None
            if best.f1.format_id != incoming.format_id:
                specs = next(
                    c for c in chains if c[-1].target.format_id == best.f1.format_id
                )
                try:
                    chain = build_chain(
                        specs,
                        use_codegen=self.use_codegen,
                        validate_output=self.validate_transforms,
                    )
                except TransformError:
                    self.stats.inc("broken_transforms")
                    chains = [
                        c for c in chains
                        if c[-1].target.format_id != best.f1.format_id
                    ]
                    continue
                self.stats.inc("compiled_chains")
            self.stats.observe_mismatch(best.mismatch)
            coercion = None
            if not best.is_perfect or best.f1.format_id != best.f2.format_id:
                coercion = (best.f1, best.f2)
            dropped, defaulted = (
                reconcile_field_stats(*coercion) if coercion else (0, 0)
            )
            return _Route(
                wire_format=incoming,
                chain=chain,
                coercion=coercion,
                handler_format=best.f2,
                match=best,
                coercion_transform=self._coercion_transform(coercion),
                fields_dropped=dropped,
                fields_defaulted=defaulted,
            )

    def _coercion_transform(
        self, coercion: Optional[Tuple[IOFormat, IOFormat]]
    ) -> Optional[Transformation]:
        """When enabled, compile the structural reconcile mapping as
        generated ECode (None -> fall back to the Python walker)."""
        if coercion is None or not self.ecode_coercion:
            return None
        src_fmt, dst_fmt = coercion
        try:
            code = generate_coercion_ecode(src_fmt, dst_fmt)
            return Transformation(
                TransformSpec(source=src_fmt, target=dst_fmt, code=code,
                              description="auto-generated reconcile"),
                use_codegen=self.use_codegen,
                validate_output=self.validate_transforms,
            )
        except (MorphError, TransformError):
            return None

    # ------------------------------------------------------------------
    # Route execution (the cheap, per-message part)
    # ------------------------------------------------------------------

    def _run_route(self, route: _Route, data: bytes) -> Any:
        if OBS.enabled:
            OBS.metrics.counter("morph.receiver.staged_messages").inc()
        record = self.context.decode_as(route.wire_format, data)
        return self._deliver(route, record)

    def _run_fused(
        self,
        route: _Route,
        fn: Callable[[bytes, int, int], Tuple[Record, int]],
        data: bytes,
        header: Any,
    ) -> Any:
        """Execute one message through the fused routine, keeping counter
        effects identical to the staged pipeline: ``morphed`` counts a
        chain that ran to completion (including when a subsequent ecode
        reconcile step fails), ``reconciled``/``perfect_matches`` count
        deliveries."""
        body = header.body_offset
        end = body + header.payload_length
        observing = OBS.enabled
        try:
            if observing:
                OBS.metrics.counter("morph.receiver.fused_messages").inc()
                with OBS.tracer.span(
                    "morph.fused",
                    format=route.wire_format.name,
                    version=route.wire_format.version,
                ):
                    start = time.perf_counter()
                    record, _consumed = fn(data, body, end)
                    elapsed = time.perf_counter() - start
                OBS.metrics.histogram("morph.fused.seconds").observe(elapsed)
            else:
                record, _consumed = fn(data, body, end)
        except TransformError as exc:
            if (
                getattr(exc, "fused_stage", None) == "coercion"
                and route.chain is not None
            ):
                # the staged path counts the chain before reconciling
                self.stats.inc("morphed")
            raise
        if route.chain is not None:
            self.stats.inc("morphed")
            if observing:
                # identical labeled counter to the staged path, so the
                # fused/staged differential oracle sees no divergence
                OBS.metrics.bounded_counter(
                    "morph.transform.applied", format=route.wire_format.name
                ).inc()
        if route.coercion is not None:
            self.stats.inc("reconciled")
        else:
            self.stats.inc("perfect_matches")
        handler_format = route.handler_format
        assert handler_format is not None
        handler = self._handlers[handler_format.format_id]
        if observing:
            OBS.metrics.bounded_counter(
                "morph.dispatch.delivered", format=handler_format.name
            ).inc()
            with OBS.tracer.span(
                "morph.dispatch",
                format=handler_format.name,
                version=handler_format.version,
            ):
                return self._invoke(handler, record)
        return self._invoke(handler, record)

    def _invoke(self, handler: Handler, record: Record) -> Any:
        """Run the application handler with the containment stage marked,
        so a handler exception dead-letters as ``dispatch``, not as a
        pipeline failure."""
        self._stage = "dispatch"
        return handler(record)

    def _deliver(self, route: _Route, record: Record) -> Any:
        if route.is_reject:
            self.stats.inc("rejected")
            if self._default_handler is not None:
                self._stage = "dispatch"
                return self._default_handler(route.wire_format, record)
            raise NoMatchError(
                f"no acceptable match for incoming format "
                f"{route.wire_format.name!r} v{route.wire_format.version} "
                f"(diff_threshold={self.diff_threshold}, "
                f"mismatch_threshold={self.mismatch_threshold})"
            )
        observing = OBS.enabled
        if route.pre_coercion is not None:
            record = widen_record(*route.pre_coercion, record)
            if observing:
                OBS.metrics.counter("morph.projection.widened").inc()
        if route.chain is not None:
            if observing:
                with OBS.tracer.span(
                    "morph.transform",
                    source=route.wire_format.version,
                    target=route.chain.target.version,
                    steps=len(route.chain),
                ):
                    start = time.perf_counter()
                    record = route.chain.apply(record)
                    elapsed = time.perf_counter() - start
                OBS.metrics.histogram("morph.transform.seconds").observe(elapsed)
                OBS.metrics.bounded_counter(
                    "morph.transform.applied", format=route.wire_format.name
                ).inc()
            else:
                record = route.chain.apply(record)
            self.stats.inc("morphed")
        if route.coercion is not None:
            if observing:
                with OBS.tracer.span(
                    "morph.reconcile",
                    dropped=route.fields_dropped,
                    defaulted=route.fields_defaulted,
                ):
                    record = self._reconcile(route, record)
                metrics = OBS.metrics
                metrics.histogram(
                    "morph.reconcile.fields_dropped", bounds=COUNT_BUCKETS
                ).observe(route.fields_dropped)
                metrics.histogram(
                    "morph.reconcile.fields_defaulted", bounds=COUNT_BUCKETS
                ).observe(route.fields_defaulted)
            else:
                record = self._reconcile(route, record)
            self.stats.inc("reconciled")
        else:
            self.stats.inc("perfect_matches")
        handler_format = route.handler_format
        assert handler_format is not None
        handler = self._handlers[handler_format.format_id]
        if observing:
            OBS.metrics.bounded_counter(
                "morph.dispatch.delivered", format=handler_format.name
            ).inc()
            with OBS.tracer.span(
                "morph.dispatch",
                format=handler_format.name,
                version=handler_format.version,
            ):
                return self._invoke(handler, record)
        return self._invoke(handler, record)

    def _reconcile(self, route: _Route, record: Record) -> Record:
        if route.coercion_transform is not None:
            return route.coercion_transform.apply(record)
        src_fmt, dst_fmt = route.coercion  # type: ignore[misc]
        return coerce_record(src_fmt, dst_fmt, record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def route_for(self, fmt: IOFormat) -> Optional[_Route]:
        """The cached route for *fmt*, if one was planned (tests use this
        to assert which pipeline a message took)."""
        return self._routes.get(fmt.format_id)

    def interest_for(self, fmt: IOFormat) -> Optional[FrozenSet[str]]:
        """The top-level wire fields of *fmt* this receiver's pipeline
        can ever observe — the interest set it announces for projection
        push-down — or ``None`` when it needs the full format.

        The set is the route's fused backward-liveness result; a route
        without a provable liveness set (rejects, identity dispatch,
        interpreter chains, fusion disabled) conservatively reports
        ``None``, which negotiates full-format traffic."""
        with self._lock:
            route = self._routes.get(fmt.format_id)
            if route is None:
                self.registry.register(fmt)
                route = self._plan_route(fmt)
                self._cache_route(fmt.format_id, route)
        if route.is_reject:
            return None
        fused = route.fused
        if fused is None or fused.wire_live is None:
            return None
        return frozenset(fused.wire_live)

    def invalidate_route(self, format_id: int) -> bool:
        """Drop the cached route (and compiled pipeline) for
        *format_id* — the hook a resolver invalidation calls when the
        format server ships different content under a cached id.  The
        next message of that id replans against the fresh meta-data.
        Returns whether a route was dropped."""
        with self._lock:
            removed = self._routes.pop(format_id, None) is not None
            if removed:
                self.stats.set_route_cache_size(len(self._routes))
            return removed

    def compatibility_space(self) -> List[IOFormat]:
        """Every registered format this receiver would accept — its
        *compatibility space* (Section 3.1).  Computed by dry-planning a
        route for each format in the registry."""
        accepted: List[IOFormat] = []
        for fmt in self.registry.formats():
            route = self._routes.get(fmt.format_id)
            if route is None:
                route = self._plan_route(fmt)
            if not route.is_reject:
                accepted.append(fmt)
        return accepted
