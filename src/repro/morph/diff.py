"""Algorithm 1 — the recursive format ``diff`` and the Mismatch Ratio.

``diff(f1, f2)`` is the total number of *basic* fields present in ``f1``
but absent from ``f2``:

* a basic field of ``f1`` counts 1 when ``f2`` has no basic field of the
  same name and type,
* a complex field of ``f1`` recurses into the same-named complex field of
  ``f2`` when one exists, and otherwise contributes its whole weight
  ``W_f``.

``(f1, f2)`` is a **perfect matching pair** iff
``diff(f1, f2) == diff(f2, f1) == 0``.

The **Mismatch Ratio** normalizes the reverse diff by the target's
weight::

    Mr(f1, f2) = diff(f2, f1) / W_{f2}

so a pair missing 4 fields out of 100 scores far better than a pair
missing 2 fields out of 2 (the paper's motivating example for the
metric).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.pbio.format import IOFormat


def diff(f1: IOFormat, f2: IOFormat) -> int:
    """Number of basic fields in *f1* that are not present in *f2*."""
    return _diff_cached(f1, f2)


@lru_cache(maxsize=4096)
def _diff_cached(f1: IOFormat, f2: IOFormat) -> int:
    total = 0
    for field in f1.fields:
        if field.is_basic:
            other = f2.get_field(field.name)
            if other is None or not field.matches(other):
                total += 1
        else:
            assert field.subformat is not None
            other = f2.get_field(field.name)
            if (
                other is None
                or not other.is_complex
                or other.is_array != field.is_array
            ):
                total += field.subformat.weight
            else:
                assert other.subformat is not None
                total += _diff_cached(field.subformat, other.subformat)
    return total


def mismatch_ratio(f1: IOFormat, f2: IOFormat) -> float:
    """``Mr(f1, f2) = diff(f2, f1) / W_{f2}``.

    The ratio of fields the *receiver's* format ``f2`` expects but the
    incoming ``f1`` cannot supply — i.e. how much of ``f2`` would have to
    be filled with defaults."""
    weight = f2.weight
    if weight == 0:  # cannot happen: IOFormat requires >= 1 field
        return 0.0
    return diff(f2, f1) / weight


def is_perfect_match(f1: IOFormat, f2: IOFormat) -> bool:
    """True iff ``(f1, f2)`` is a perfect matching pair."""
    return diff(f1, f2) == 0 and diff(f2, f1) == 0


def mismatch_order_key(f1: IOFormat, f2: IOFormat) -> Tuple[int, int]:
    """Sort key implementing the paper's "less mismatch" ordering:
    lexicographic on ``(diff(f1,f2), diff(f2,f1))``."""
    return (diff(f1, f2), diff(f2, f1))


# ---------------------------------------------------------------------------
# Importance-weighted variant (the paper's future-work MaxMatch refinement)
# ---------------------------------------------------------------------------


def weighted_diff(f1: IOFormat, f2: IOFormat) -> float:
    """Like :func:`diff`, but each missing basic field contributes its
    ``importance`` instead of 1, and a missing complex field contributes
    its importance times its subtree's weighted weight.

    With all importances at their default 1.0 this coincides with
    :func:`diff` exactly (tested as an invariant)."""
    return _weighted_diff_cached(f1, f2)


@lru_cache(maxsize=4096)
def _weighted_diff_cached(f1: IOFormat, f2: IOFormat) -> float:
    total = 0.0
    for field in f1.fields:
        if field.is_basic:
            other = f2.get_field(field.name)
            if other is None or not field.matches(other):
                total += field.importance
        else:
            assert field.subformat is not None
            other = f2.get_field(field.name)
            if (
                other is None
                or not other.is_complex
                or other.is_array != field.is_array
            ):
                total += field.importance * field.subformat.weighted_weight
            else:
                assert other.subformat is not None
                total += field.importance * _weighted_diff_cached(
                    field.subformat, other.subformat
                )
    return total


def weighted_mismatch_ratio(f1: IOFormat, f2: IOFormat) -> float:
    """``Mr`` over importance mass: the share of *f2*'s weighted weight
    that *f1* cannot supply."""
    weight = f2.weighted_weight
    if weight == 0.0:
        return 0.0
    return weighted_diff(f2, f1) / weight
