"""Compiled message transformations.

A :class:`~repro.pbio.registry.TransformSpec` carries ECode source; this
module turns it into an executable :class:`Transformation` by compiling
the ECode (dynamic code generation) and wiring up a *growable* output
record of the target format — ECode transforms assign into variable
arrays without explicit allocation (paper Figure 5 writes
``old.src_list[src_count].info = ...``), which
:class:`~repro.ecode.runtime.AutoList` supports by growing on demand.

Chains of transformations (Figure 1's retro-transformation ladder
Rev 2.0 → Rev 1.0 → Rev 0.0) compose into a single
:class:`TransformChain` applied per message.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.ecode.codegen import compile_procedure
from repro.ecode.interp import interpret_procedure
from repro.ecode.runtime import AutoList
from repro.errors import ECodeError, FormatError, TransformError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.registry import TransformSpec


_record_factories: "dict[int, Callable[[], Record]]" = {}

#: Bound on the factory memo: long-running servers with churning formats
#: (``FormatRegistry.unregister`` + re-register) must not accumulate one
#: closure per format id forever.  Eviction is FIFO; callers that need a
#: factory to outlive eviction (fused routes) hold their own reference.
RECORD_FACTORY_CACHE_MAX = 1024


def growable_record(fmt: IOFormat) -> Record:
    """A default record of *fmt* whose arrays auto-grow on indexed writes.

    Complex array elements produced by growth are themselves growable, so
    nested variable arrays work.  Factories are memoized per format: a
    flat subformat (scalars only) gets a shallow-copy prototype factory,
    which keeps per-element cost near a dict copy on the morph hot path.
    """
    return _record_factory(fmt)()


def _record_factory(fmt: IOFormat) -> Callable[[], Record]:
    factory = _record_factories.get(fmt.format_id)
    if factory is None:
        while len(_record_factories) >= RECORD_FACTORY_CACHE_MAX:
            _record_factories.pop(next(iter(_record_factories)))
        if all(f.is_basic and not f.is_array for f in fmt.fields):
            prototype = {f.name: f.default_instance() for f in fmt.fields}

            def factory() -> Record:
                rec = Record.__new__(Record)
                dict.update(rec, prototype)
                return rec

        else:
            builders = [(f.name, _field_builder(f)) for f in fmt.fields]

            def factory() -> Record:
                rec = Record.__new__(Record)
                dict.update(rec, {name: build() for name, build in builders})
                return rec

        _record_factories[fmt.format_id] = factory
        from repro.obs import OBS

        if OBS.enabled:
            OBS.metrics.gauge("morph.transform.record_factory_cache_size").set(
                len(_record_factories)
            )
    return factory


def _field_builder(field: IOField) -> Callable[[], Any]:
    if field.is_array:
        element_factory = _element_factory(field)
        spec = field.array
        assert spec is not None
        fixed = spec.fixed_length
        if fixed is not None:
            return lambda: AutoList(
                element_factory, [element_factory() for _ in range(fixed)]
            )
        return lambda: AutoList(element_factory)
    if field.is_complex:
        assert field.subformat is not None
        return _record_factory(field.subformat)
    value = field.default_instance()  # scalars are immutable: share one
    return lambda: value


def _element_factory(field: IOField) -> Callable[[], Any]:
    if field.is_complex:
        assert field.subformat is not None
        return _record_factory(field.subformat)
    value = field.element_default()  # scalar: immutable, share one
    return lambda: value


def _freeze(value: Any) -> Any:
    """Convert AutoLists back to plain lists after a transform ran (the
    factory closure should not outlive the morph)."""
    if isinstance(value, Record):
        for key in value:
            dict.__setitem__(value, key, _freeze(value[key]))
        return value
    if isinstance(value, list):
        return [_freeze(item) for item in value]
    return value


class Transformation:
    """One compiled format-to-format conversion.

    Parameters
    ----------
    spec:
        The writer-supplied :class:`TransformSpec`.
    use_codegen:
        True (default) compiles the ECode to Python bytecode; False runs
        the AST interpreter — the ablation knob mirroring the paper's
        DCG-vs-interpretation distinction.
    validate_output:
        When True (default) the transformed record is validated against
        the target format, so a buggy transform fails loudly at the
        morph layer instead of corrupting the application.
    """

    __slots__ = ("spec", "procedure", "use_codegen", "validate_output")

    def __init__(
        self,
        spec: TransformSpec,
        use_codegen: bool = True,
        validate_output: bool = True,
    ) -> None:
        self.spec = spec
        self.use_codegen = use_codegen
        self.validate_output = validate_output
        name = f"{spec.source.name}_to_{spec.target.name}"
        try:
            if use_codegen:
                self.procedure = compile_procedure(spec.code, ("new", "old"), name)
            else:
                self.procedure = interpret_procedure(spec.code, ("new", "old"), name)
        except ECodeError as exc:
            raise TransformError(
                f"transform {spec.source.name} -> {spec.target.name} failed to "
                f"compile: {exc}"
            ) from exc

    @property
    def source(self) -> IOFormat:
        return self.spec.source

    @property
    def target(self) -> IOFormat:
        return self.spec.target

    def apply(self, record: Record) -> Record:
        """Run the transform: build a growable target record, execute the
        ECode with ``(new=record, old=output)``, freeze and validate."""
        output = growable_record(self.spec.target)
        try:
            self.procedure(record, output)
        except ECodeError as exc:
            raise TransformError(
                f"transform {self.spec.source.name} -> {self.spec.target.name} "
                f"failed at runtime: {exc}"
            ) from exc
        _freeze(output)
        if self.validate_output:
            try:
                self.spec.target.validate_record(output)
            except FormatError as exc:
                raise TransformError(
                    f"transform {self.spec.source.name} -> "
                    f"{self.spec.target.name} produced an invalid record: {exc}"
                ) from exc
        return output

    def __call__(self, record: Record) -> Record:
        return self.apply(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "compiled" if self.use_codegen else "interpreted"
        return (
            f"Transformation({self.spec.source.name} v{self.spec.source.version} "
            f"-> {self.spec.target.name} v{self.spec.target.version}, {mode})"
        )


class TransformChain:
    """A sequence of transformations applied back to back.

    ``chain.source`` is the first hop's source, ``chain.target`` the last
    hop's target; hops must be contiguous."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[Transformation]) -> None:
        steps = list(steps)
        if not steps:
            raise TransformError("a transform chain needs at least one step")
        for earlier, later in zip(steps, steps[1:]):
            if earlier.target != later.source:
                raise TransformError(
                    f"chain is not contiguous: {earlier.target.name} "
                    f"v{earlier.target.version} != {later.source.name} "
                    f"v{later.source.version}"
                )
        self.steps = steps

    @property
    def source(self) -> IOFormat:
        return self.steps[0].source

    @property
    def target(self) -> IOFormat:
        return self.steps[-1].target

    def apply(self, record: Record) -> Record:
        for step in self.steps:
            record = step.apply(record)
        return record

    def __call__(self, record: Record) -> Record:
        return self.apply(record)

    def __len__(self) -> int:
        return len(self.steps)


def build_chain(
    specs: Sequence[TransformSpec],
    use_codegen: bool = True,
    validate_output: bool = True,
) -> TransformChain:
    """Compile a spec sequence (as returned by
    :meth:`FormatRegistry.transform_closure`) into a TransformChain."""
    return TransformChain(
        [Transformation(spec, use_codegen, validate_output) for spec in specs]
    )
