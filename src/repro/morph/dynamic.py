"""Dynamically-generated service functionality (Service Morphing hooks).

The paper's conclusion points at Service Morphing [25]: meeting run-time
variation "using dynamically-adapting services and dynamically-generated
added functionality".  This module supplies the mechanism on top of the
morphing stack: *handlers themselves* can be ECode, compiled at runtime
and hot-swapped while messages flow.

An :class:`ECodeHandler` is registered with a
:class:`~repro.morph.receiver.MorphReceiver` like any Python handler.  It
runs the current ECode with ``(input, reply)`` — the delivered record and
a growable record of the declared reply format — and returns the reply.
:meth:`ECodeHandler.swap` replaces the behaviour atomically between
messages: the next delivery runs the new code, no restart, no
re-registration (the paper's "no need to modify or restart an
application" extended from formats to behaviour).
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

from repro.ecode.codegen import compile_procedure
from repro.ecode.interp import interpret_procedure
from repro.errors import ECodeError, TransformError
from repro.morph.transform import growable_record
from repro.pbio.format import IOFormat
from repro.pbio.record import Record


class ECodeHandler:
    """A message handler whose behaviour is runtime-compiled ECode.

    Parameters
    ----------
    reply_format:
        Format of the record the handler produces (bound as ``reply``).
        ``None`` for pure side-effect handlers (bound ``reply`` is an
        empty record; the handler's return value is the ECode ``return``
        value instead).
    code:
        Initial ECode source with parameters ``(input, reply)``.
    use_codegen:
        False selects the AST interpreter (ablation parity with the rest
        of the stack).
    """

    def __init__(
        self,
        code: str,
        reply_format: Optional[IOFormat] = None,
        use_codegen: bool = True,
    ) -> None:
        self.reply_format = reply_format
        self.use_codegen = use_codegen
        self._lock = threading.Lock()
        self._procedure = self._compile(code)
        self._code = code
        self.generation = 1
        self.invocations = 0
        #: (generation, record) history of swap events for observability
        self.swap_log: List[Tuple[int, str]] = []

    def _compile(self, code: str):
        try:
            if self.use_codegen:
                return compile_procedure(code, ("input", "reply"), "handler")
            return interpret_procedure(code, ("input", "reply"), "handler")
        except ECodeError as exc:
            raise TransformError(f"handler code does not compile: {exc}") from exc

    # ------------------------------------------------------------------
    # Behaviour management
    # ------------------------------------------------------------------

    @property
    def code(self) -> str:
        return self._code

    def swap(self, code: str) -> int:
        """Replace the handler's behaviour.  The new code is compiled
        *before* the old one is retired, so a bad swap leaves the running
        behaviour untouched.  Returns the new generation number."""
        procedure = self._compile(code)
        with self._lock:
            self._procedure = procedure
            self._code = code
            self.generation += 1
            self.swap_log.append((self.generation, code))
            return self.generation

    # ------------------------------------------------------------------
    # Invocation (the MorphReceiver handler protocol)
    # ------------------------------------------------------------------

    def __call__(self, record: Record) -> Any:
        with self._lock:
            procedure = self._procedure
        self.invocations += 1
        if self.reply_format is not None:
            reply = growable_record(self.reply_format)
        else:
            reply = Record()
        try:
            result = procedure(record, reply)
        except ECodeError as exc:
            raise TransformError(f"handler failed at runtime: {exc}") from exc
        if self.reply_format is not None:
            return reply
        return result
