"""MaxMatch — the best-matching format pair between two format sets.

``MaxMatch(F1, F2)`` returns the pair ``(f1, f2)`` with ``f1 ∈ F1``,
``f2 ∈ F2`` such that:

i.   ``diff(f1, f2) <= DIFF_THRESHOLD``,
ii.  ``Mr(f1, f2) <= MISMATCH_THRESHOLD``,
iii. among the surviving pairs, least ``Mr``, then least ``diff(f1, f2)``;
     remaining ties break deterministically on enumeration order (the
     paper breaks them arbitrarily).

Setting ``DIFF_THRESHOLD`` to zero admits only pairs whose incoming
format is fully understood (everything in ``f1`` lands somewhere in
``f2``); setting both thresholds to zero admits only perfect matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.morph.diff import (
    diff,
    is_perfect_match,
    mismatch_ratio,
    weighted_diff,
    weighted_mismatch_ratio,
)
from repro.pbio.format import IOFormat

#: Default thresholds.  The paper leaves the constants system-specific;
#: these defaults admit the evolution scenarios in its examples (ECho
#: v2.0 -> v1.0 has Mr = 6/10) while rejecting grossly incompatible pairs.
DEFAULT_DIFF_THRESHOLD = 16
DEFAULT_MISMATCH_THRESHOLD = 0.75


@dataclass(frozen=True)
class MatchResult:
    """One scored candidate pair."""

    f1: IOFormat
    f2: IOFormat
    diff_forward: float  # diff(f1, f2)
    diff_reverse: float  # diff(f2, f1)
    mismatch: float  # Mr(f1, f2)

    @property
    def is_perfect(self) -> bool:
        return self.diff_forward == 0 and self.diff_reverse == 0

    def sort_key(self) -> tuple:
        return (self.mismatch, self.diff_forward)


def score_pair(f1: IOFormat, f2: IOFormat, weighted: bool = False) -> MatchResult:
    """Compute the full score of one candidate pair.

    ``weighted=True`` scores by field *importance* instead of field
    count — the paper's future-work MaxMatch refinement."""
    if weighted:
        return MatchResult(
            f1=f1,
            f2=f2,
            diff_forward=weighted_diff(f1, f2),
            diff_reverse=weighted_diff(f2, f1),
            mismatch=weighted_mismatch_ratio(f1, f2),
        )
    return MatchResult(
        f1=f1,
        f2=f2,
        diff_forward=diff(f1, f2),
        diff_reverse=diff(f2, f1),
        mismatch=mismatch_ratio(f1, f2),
    )


def max_match(
    candidates: "Iterable[IOFormat] | IOFormat",
    targets: Sequence[IOFormat],
    diff_threshold: float = DEFAULT_DIFF_THRESHOLD,
    mismatch_threshold: float = DEFAULT_MISMATCH_THRESHOLD,
    weighted: bool = False,
) -> Optional[MatchResult]:
    """``MaxMatch(F1, F2)`` over *candidates* x *targets*.

    Accepts a single format for *candidates* as a convenience (Algorithm 2
    line 11 calls ``MaxMatch(fm, Fr)``).  Returns ``None`` when no pair
    satisfies both thresholds.  With ``weighted=True`` the thresholds
    bound importance mass rather than field counts.
    """
    if isinstance(candidates, IOFormat):
        candidates = (candidates,)
    best: Optional[MatchResult] = None
    for f1 in candidates:
        for f2 in targets:
            result = score_pair(f1, f2, weighted=weighted)
            if result.diff_forward > diff_threshold:
                continue
            if result.mismatch > mismatch_threshold:
                continue
            if best is None or result.sort_key() < best.sort_key():
                best = result
            if best is not None and best.is_perfect:
                # nothing can beat (Mr=0, diff=0); keep the first perfect
                # pair in enumeration order (deterministic tie-break)
                return best
    return best


def perfect_matches(
    candidates: Sequence[IOFormat], targets: Sequence[IOFormat]
) -> "list[MatchResult]":
    """All perfect pairs — used by tests and the compatibility-space
    example to enumerate the zero-cost region."""
    return [
        score_pair(f1, f2)
        for f1 in candidates
        for f2 in targets
        if is_perfect_match(f1, f2)
    ]
