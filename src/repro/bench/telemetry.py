"""Telemetry-plane overhead bench: what does shipping the numbers cost?

Three arms of the *same* fabric workload — a reliable 3-worker fleet
morphing V2 publishes down to V1 subscribers while each worker's app
registry takes counter/histogram updates — differing only in the
telemetry agent riding the worker heartbeats:

* ``off``    — no agents attached (the baseline arm);
* ``1s``     — agents scraping at a 1-second interval (the deployment
  default this repo recommends);
* ``100ms``  — a 10x-hotter scrape, to show the cost scales with
  scrape rate, not with app traffic.

Each arm builds its fleet **once**, drives a warm-up pass so one-time
costs (telemetry format codegen, route caches, import machinery) stay
off the clock, then wall-clocks repeated drives of the same
virtual-time workload and keeps the best round.  The reported
``overhead_ratio`` (arm wall time over the same run's ``off`` arm) is
**self-normalized**: both sides share the host regime and
machine-speed drift cancels — the same construction the fusion/batch/
projection benches use.  The record ships under ``metrics`` — the
wall-time regression gate ignores it (a ratio of two in-process drains
is too scheduler-noisy to gate at the default tolerance), but the
acceptance target is printed: the 1 s arm should stay within a few
percent of end-to-end cost.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.bench.fabric import _bench_record, _make_registry
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2
from repro.fabric.membership import EventFabric
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.agent import TelemetryAgent
from repro.obs.collector import TelemetryCollector
from repro.obs.metrics import Registry

_WORKERS = ("w1", "w2", "w3")
#: virtual seconds between published events (and app-registry updates)
_STEP = 0.005
#: heartbeats (and scrape opportunities) ride every N-th event
_HEARTBEAT_EVERY = 4


@dataclass(frozen=True)
class TelemetryOverheadRow:
    label: str
    scrape_interval: Optional[float]  # None = agent disabled
    wall_seconds: float               # best timed drive
    events: int                       # publishes per timed drive
    deltas: int                       # telemetry records admitted, total
    overhead_ratio: float             # wall / same-run "off" wall

    @property
    def overhead_percent(self) -> float:
        return (self.overhead_ratio - 1.0) * 100.0


class _Arm:
    """One telemetry configuration over a persistent fleet.

    The fleet lives across drives so every cache (generated codecs,
    morph routes, reliable endpoints) is warm when the clock runs —
    rebuilding per round was measured to swamp the agent's cost with
    cold-start noise."""

    def __init__(self, interval: Optional[float], seed: int) -> None:
        self.interval = interval
        self.net = Network(
            seed=seed, default_link=LinkSpec(latency=0.002)
        )
        self.fabric = EventFabric(
            self.net, registry=_make_registry(), reliable=True
        )
        self.workers = {address: self.fabric.add_worker(address)
                        for address in _WORKERS}
        self.publisher = self.fabric.client("pub")
        subscriber = self.fabric.client("sub")
        self.channels = [f"tele/{index}" for index in range(4)]
        for channel_id in self.channels:
            subscriber.subscribe(
                channel_id, RESPONSE_V1, lambda c, p, s, r: None
            )
        self.registries: Dict[str, Registry] = {
            address: Registry() for address in _WORKERS
        }
        self.collector: Optional[TelemetryCollector] = None
        if interval is not None:
            self.collector = TelemetryCollector(clock=self.net)
            self.collector.subscribe_fabric(self.fabric.client("monitor"))
            for address, worker in self.workers.items():
                worker.attach_telemetry(TelemetryAgent.over_fabric(
                    self.fabric.client(f"app-{address}"),
                    process=f"app-{address}",
                    worker=address,
                    registry=self.registries[address],
                    interval=interval,
                ))
        self.net.run()  # settle subscriptions before any clock runs
        self.records = {
            channel_id: _bench_record(channel_id)
            for channel_id in self.channels
        }

    def drive(self, steps: int) -> float:
        """Publish *steps* events (app updates and heartbeats riding
        along) and return the wall time of the drain."""
        gc.collect()
        start = time.perf_counter()
        for step_index in range(steps):
            channel_id = self.channels[step_index % len(self.channels)]
            self.publisher.publish(
                channel_id, RESPONSE_V2, self.records[channel_id]
            )
            # the instrumented app this telemetry would watch
            local = self.registries[_WORKERS[step_index % len(_WORKERS)]]
            local.counter("app.events", channel=channel_id).inc()
            local.histogram("app.latency").observe(
                0.001 * (step_index % 7)
            )
            if step_index % _HEARTBEAT_EVERY == 0:
                for worker in self.workers.values():
                    worker.heartbeat()
            self.net.run(max_time=self.net.now + _STEP)
        self.net.run()
        return time.perf_counter() - start

    def deltas(self) -> int:
        if self.collector is None:
            return 0
        return sum(
            source.deltas for source in self.collector.sources.values()
        )


def bench_telemetry(
    steps: int = 600, rounds: int = 5, seed: int = 5
) -> List[TelemetryOverheadRow]:
    """Run the three arms — warm-up drive, then best-of-*rounds* timed
    drives each, interleaved so a mid-run host-speed shift cannot bias
    one whole arm."""
    obs.disable(reset=True)
    obs.enable()
    try:
        arms: List[Tuple[str, _Arm]] = [
            ("off", _Arm(None, seed)),
            ("1s", _Arm(1.0, seed)),
            ("100ms", _Arm(0.1, seed)),
        ]
        for _label, arm in arms:
            arm.drive(steps // 2)  # warm-up: codegen/caches off the clock
        best: Dict[str, float] = {}
        for _round in range(rounds):
            for label, arm in arms:
                wall = arm.drive(steps)
                if label not in best or wall < best[label]:
                    best[label] = wall
        baseline_wall = best["off"]
        return [
            TelemetryOverheadRow(
                label=label,
                scrape_interval=arm.interval,
                wall_seconds=best[label],
                events=steps,
                deltas=arm.deltas(),
                overhead_ratio=(
                    best[label] / baseline_wall if baseline_wall else 1.0
                ),
            )
            for label, arm in arms
        ]
    finally:
        obs.disable(reset=True)
