"""Benchmark harness: workload generators, timing and the per-figure
data-series functions.  ``python -m repro.bench`` prints every table and
figure of the paper's evaluation as text."""

from repro.bench.figures import (
    ComparisonRow,
    SizeRow,
    fig8_encoding,
    fig9_decoding,
    fig10_morphing,
    table1_sizes,
)
from repro.bench.timing import Measurement, measure
from repro.bench.workloads import (
    FIGURE_SIZES,
    TABLE1_SIZES_KB,
    V2_TO_V1_STYLESHEET,
    figure_workloads,
    make_member,
    members_for_size,
    response_v1_from_v2,
    response_v2,
    response_v2_of_size,
)

__all__ = [
    "ComparisonRow",
    "FIGURE_SIZES",
    "Measurement",
    "SizeRow",
    "TABLE1_SIZES_KB",
    "V2_TO_V1_STYLESHEET",
    "fig10_morphing",
    "fig8_encoding",
    "fig9_decoding",
    "figure_workloads",
    "make_member",
    "measure",
    "members_for_size",
    "response_v1_from_v2",
    "response_v2",
    "response_v2_of_size",
    "table1_sizes",
]
