"""Figure/table data generators — one function per evaluation artifact.

Each function regenerates the data series behind one figure or table of
the paper's Section 5, returning plain rows that the pytest benches
assert shape properties on and that ``python -m repro.bench`` prints as
paper-style tables.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.timing import Measurement, measure
from repro.bench.workloads import (
    FIGURE_SIZES,
    TABLE1_SIZES_KB,
    V2_TO_V1_STYLESHEET,
    response_v1_from_v2,
    response_v2_of_size,
)
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V2_TO_V1_TRANSFORM,
)
from repro.errors import ReproError
from repro.morph.receiver import MorphReceiver
from repro.net.batch import pack_batch
from repro.net.link import LinkSpec
from repro.net.reliable import ReliableEndpoint
from repro.net.transport import Network
from repro.pbio.context import PBIOContext
from repro.pbio.encode import native_size
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.projection import project_format
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry
from repro.xmlrep.decode import record_from_tree
from repro.xmlrep.encode import encode_xml
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.xslt import Stylesheet


@dataclass(frozen=True)
class ComparisonRow:
    """One x-axis point of a PBIO-vs-XML figure."""

    label: str
    unencoded_bytes: int
    pbio: Measurement
    xml: Measurement

    @property
    def ratio(self) -> float:
        """XML time / PBIO time — the factor the paper reports."""
        return self.xml.best / self.pbio.best if self.pbio.best else float("inf")


def _workloads(sizes: Optional[Dict[str, int]]) -> List:
    chosen = sizes if sizes is not None else FIGURE_SIZES
    out = []
    for label, target in chosen.items():
        record = response_v2_of_size(target)
        out.append((label, native_size(RESPONSE_V2, record), record))
    return out


# ---------------------------------------------------------------------------
# Figure 8 — encoding cost
# ---------------------------------------------------------------------------


def fig8_encoding(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[ComparisonRow]:
    """Encoding cost of the v2.0 ChannelOpenResponse, PBIO vs XML.

    Paper result: XML encoding is at least 2x PBIO across all sizes."""
    rows: List[ComparisonRow] = []
    ctx = PBIOContext()
    for label, unencoded, record in _workloads(sizes):
        ctx.encode(RESPONSE_V2, record)  # warm the generated encoder
        pbio = measure(lambda: ctx.encode(RESPONSE_V2, record), rounds=rounds)
        xml = measure(lambda: encode_xml(RESPONSE_V2, record), rounds=rounds)
        rows.append(ComparisonRow(label, unencoded, pbio, xml))
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — decoding cost without evolution
# ---------------------------------------------------------------------------


def fig9_decoding(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[ComparisonRow]:
    """Decoding cost without format evolution: a v2.0 reader receives
    v2.0 messages.  PBIO decodes with its generated routine; XML parses
    the text and traverses the tree back into a record.

    Paper result: PBIO is much less expensive than XML (order of
    magnitude), because of its DCG-specialized decode routine."""
    rows: List[ComparisonRow] = []
    ctx = PBIOContext()
    for label, unencoded, record in _workloads(sizes):
        wire = ctx.encode(RESPONSE_V2, record)
        xml_text = encode_xml(RESPONSE_V2, record)
        ctx.decode_as(RESPONSE_V2, wire)  # warm the generated decoder

        def decode_xml_path(text: str = xml_text) -> Record:
            return record_from_tree(RESPONSE_V2, parse_xml(text))

        pbio = measure(lambda: ctx.decode_as(RESPONSE_V2, wire), rounds=rounds)
        xml = measure(decode_xml_path, rounds=rounds)
        rows.append(ComparisonRow(label, unencoded, pbio, xml))
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — decoding cost with evolution (message morphing vs XSLT)
# ---------------------------------------------------------------------------


def fig10_morphing(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[ComparisonRow]:
    """Decoding cost *with* evolution: a v1.0-only reader receives v2.0
    messages.

    PBIO morphing = decode v2.0 (generated routine) + compiled ECode
    transform to v1.0 (Figure 5).  XML/XSLT = parse text into a tree +
    apply the XSL transformation (new tree) + traverse the new tree into
    a v1.0 record.

    Paper result: XML/XSLT is an order of magnitude slower."""
    rows: List[ComparisonRow] = []
    stylesheet = Stylesheet.from_string(V2_TO_V1_STYLESHEET)
    for label, unencoded, record in _workloads(sizes):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        receiver = MorphReceiver(registry)
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        ctx = PBIOContext(registry)
        wire = ctx.encode(RESPONSE_V2, record)
        xml_text = encode_xml(RESPONSE_V2, record)
        receiver.process(wire)  # plan + compile + cache the route

        def xslt_path(text: str = xml_text) -> Record:
            tree = parse_xml(text)
            transformed = stylesheet.transform(tree)
            return record_from_tree(RESPONSE_V1, transformed)

        pbio = measure(lambda: receiver.process(wire), rounds=rounds)
        xml = measure(xslt_path, rounds=rounds)
        rows.append(ComparisonRow(label, unencoded, pbio, xml))
    return rows


# ---------------------------------------------------------------------------
# Fusion ablation — whole-route fusion vs staged vs interpreted
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    """One x-axis point of the fusion ablation: the same chain-length-2
    morphing workload under three receiver modes."""

    label: str
    unencoded_bytes: int
    fused: Measurement
    staged: Measurement
    interpreted: Measurement

    @property
    def speedup(self) -> float:
        """Staged time / fused time — the whole-route fusion win."""
        return (
            self.staged.best / self.fused.best if self.fused.best else float("inf")
        )


def fig_fusion_ablation(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[AblationRow]:
    """Morphing latency at chain length 2 — a v0.0-only reader receives
    v2.0 messages through the retro ladder v2.0 -> v1.0 -> v0.0 — under:

    * ``fused``: whole-route fusion (decode + both transform steps +
      reconcile compiled into one routine, dead fields skipped),
    * ``staged``: the per-stage DCG pipeline (generated decoder, then
      two compiled ECode hops, each materializing a record),
    * ``interpreted``: no code generation anywhere (the paper's
      interpretation ablation arm).
    """

    def receiver_for(record, **kwargs):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
        receiver = MorphReceiver(registry, **kwargs)
        receiver.register_handler(RESPONSE_V0, lambda rec: rec)
        wire = PBIOContext(registry).encode(RESPONSE_V2, record)
        receiver.process(wire)  # plan + compile + cache the route
        return receiver, wire

    rows: List[AblationRow] = []
    for label, unencoded, record in _workloads(sizes):
        fused_rx, wire = receiver_for(record, use_fusion=True)
        staged_rx, _ = receiver_for(record, use_fusion=False)
        interp_rx, _ = receiver_for(record, use_fusion=False, use_codegen=False)
        rows.append(
            AblationRow(
                label,
                unencoded,
                fused=measure(lambda: fused_rx.process(wire), rounds=rounds),
                staged=measure(lambda: staged_rx.process(wire), rounds=rounds),
                interpreted=measure(
                    lambda: interp_rx.process(wire), rounds=rounds
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Reliability figure — goodput and delivery latency under loss
# ---------------------------------------------------------------------------

#: Loss rates swept by the reliability figure (fractions).
RELIABILITY_LOSS_RATES = (0.0, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class ReliabilityRow:
    """One x-axis point of the reliability figure: the same paced
    message stream over an increasingly lossy link, with and without the
    reliable endpoint's ack/retry machinery.  Latencies are virtual
    (simulated) seconds from send to application delivery — retransmits
    show up as a fat p99 tail, losses as goodput below 1.0."""

    loss_pct: float
    messages: int
    reliable_delivered: int
    raw_delivered: int
    reliable_p99_seconds: float
    raw_p99_seconds: float
    retries: int

    @property
    def reliable_goodput(self) -> float:
        return self.reliable_delivered / self.messages if self.messages else 0.0

    @property
    def raw_goodput(self) -> float:
        return self.raw_delivered / self.messages if self.messages else 0.0


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


def _reliability_arm(
    loss_rate: float, messages: int, seed: int, reliable: bool
) -> Tuple[int, float, int]:
    """Run one arm: *messages* small payloads, paced on the virtual
    clock, sender -> receiver over a lossy, jittery link.  Returns
    ``(delivered, p99_latency, retries)``."""
    net = Network(
        default_link=LinkSpec(
            latency=0.001, loss_rate=loss_rate, jitter=0.0005
        ),
        seed=seed,
    )
    send_times: Dict[bytes, float] = {}
    latencies: List[float] = []

    def on_delivery(_source: str, data: bytes) -> None:
        latencies.append(net.now - send_times[data])

    retries = 0
    if reliable:
        sender = ReliableEndpoint(
            net, "sender", seed=seed, breaker_threshold=1_000_000
        )
        receiver = ReliableEndpoint(net, "receiver", seed=seed)
        receiver.set_handler(on_delivery)
        transmit = lambda payload: sender.send("receiver", payload)  # noqa: E731
    else:
        net.add_node("sender")
        net.add_node("receiver").set_handler(on_delivery)
        transmit = lambda payload: net.send("sender", "receiver", payload)  # noqa: E731

    def send_at(index: int) -> Callable[[], None]:
        payload = index.to_bytes(4, "big")

        def fire() -> None:
            send_times[payload] = net.now
            transmit(payload)

        return fire

    for index in range(messages):
        # 200 msgs/s of virtual time: retransmit tails overlap later
        # sends, like a real stream (not one isolated stop-and-wait).
        net.call_at(index * 0.005, send_at(index))
    net.run()
    if reliable:
        retries = sender.retries
    return len(latencies), _p99(latencies), retries


def fig_reliability(
    loss_rates: Optional[List[float]] = None,
    messages: int = 200,
    seed: int = 0,
) -> List[ReliabilityRow]:
    """Goodput and p99 delivery latency vs link loss rate, with the
    reliable endpoint's retries on vs raw datagrams.

    Expected shape: the reliable arm holds goodput at 1.0 across the
    sweep, paying for it with a retransmission latency tail that grows
    with the loss rate; the raw arm's latency stays flat but its goodput
    decays roughly as ``1 - loss``."""
    chosen = list(loss_rates) if loss_rates is not None else list(
        RELIABILITY_LOSS_RATES
    )
    rows: List[ReliabilityRow] = []
    for loss in chosen:
        reliable_delivered, reliable_p99, retries = _reliability_arm(
            loss, messages, seed, reliable=True
        )
        raw_delivered, raw_p99, _ = _reliability_arm(
            loss, messages, seed, reliable=False
        )
        rows.append(
            ReliabilityRow(
                loss_pct=loss * 100.0,
                messages=messages,
                reliable_delivered=reliable_delivered,
                raw_delivered=raw_delivered,
                reliable_p99_seconds=reliable_p99,
                raw_p99_seconds=raw_p99,
                retries=retries,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 1 — message sizes
# ---------------------------------------------------------------------------
# Wire-level batching: BATCH1 frames vs one datagram per message
# ---------------------------------------------------------------------------


#: The small, fixed-shape event the batching bench streams — batching
#: pays off exactly when per-message framing/ack/dispatch overhead
#: rivals the payload decode cost, i.e. for small events.
_BATCH_EVENT = IOFormat(
    "BatchBenchEvent",
    [IOField("seq", "integer"), IOField("value", "integer")],
)


@dataclass(frozen=True)
class BatchRow:
    """One arm of the wire-level batching figure: the same pre-encoded
    message stream pushed through a reliable endpoint pair, either one
    datagram per message (``batch_size=1``) or packed into BATCH1 frames
    of *batch_size* messages, decoded on the receiver by
    :meth:`~repro.morph.receiver.MorphReceiver.process_batch`'s
    zero-copy hot path."""

    label: str
    batch_size: int  # 1 = the unbatched arm
    messages: int
    frames: int  # reliable sends issued (== messages when unbatched)
    wall: Measurement  # wall seconds for the whole stream, best/mean

    @property
    def per_message_seconds(self) -> float:
        return self.wall.best / self.messages if self.messages else 0.0


def _batching_arm(
    batch_size: int, messages: int, rounds: int
) -> BatchRow:
    """Time one arm: fresh network + endpoints + receiver per round (the
    reliable layer's sequence space and the route cache must not leak
    across rounds), route warmed before the clock starts, framing cost
    (``pack_batch``) *inside* the timed region — it is part of the
    batched pipeline's sender-side work."""
    registry = FormatRegistry()
    ctx = PBIOContext(registry)
    wires = [
        ctx.encode(_BATCH_EVENT, {"seq": i, "value": i * 3})
        for i in range(messages)
    ]
    expected = list(range(messages))
    timings: List[float] = []
    for _ in range(rounds):
        net = Network(seed=29)
        sender = ReliableEndpoint(net, "bench-src")
        sink = ReliableEndpoint(net, "bench-dst")
        receiver = MorphReceiver(registry=FormatRegistry())
        got: List[int] = []
        receiver.register_handler(
            _BATCH_EVENT, lambda r, got=got: got.append(r["seq"])
        )
        if batch_size > 1:
            sink.set_handler(
                lambda _src, data, r=receiver: r.process_batch(data)
            )
        else:
            sink.set_handler(lambda _src, data, r=receiver: r.process(data))
        receiver.process(wires[0])  # plan + warm the route off the clock
        got.clear()
        start = time.perf_counter()
        if batch_size > 1:
            for i in range(0, messages, batch_size):
                sender.send(
                    "bench-dst", pack_batch(wires[i:i + batch_size])
                )
        else:
            for wire in wires:
                sender.send("bench-dst", wire)
        net.run()
        timings.append(time.perf_counter() - start)
        if got != expected:
            raise ReproError(
                f"batching bench arm batch_size={batch_size} delivered "
                f"{len(got)}/{messages} messages (or out of order)"
            )
    return BatchRow(
        label="single" if batch_size == 1 else f"batch{batch_size}",
        batch_size=batch_size,
        messages=messages,
        frames=math.ceil(messages / batch_size),
        wall=Measurement(
            best=min(timings),
            mean=sum(timings) / len(timings),
            rounds=rounds,
            number=1,
        ),
    )


def fig_batching(
    messages: int = 4096,
    batch_sizes: Tuple[int, ...] = (16, 64, 256),
    rounds: int = 3,
) -> List[BatchRow]:
    """The wire-level batching figure: per-message cost of the same
    event stream, unbatched vs BATCH1 frames of increasing size.  The
    first row is always the unbatched arm — it anchors the
    self-normalized ``batch_relative_cost`` the regression gate tracks
    (both arms share one run's host regime, so machine-speed drift
    cancels)."""
    rows = [_batching_arm(1, messages, rounds)]
    for size in batch_sizes:
        rows.append(_batching_arm(size, messages, rounds))
    return rows


# ---------------------------------------------------------------------------
# Projection push-down: negotiated selective field transmission
# ---------------------------------------------------------------------------


#: The bulky telemetry-style event the projection bench streams: a
#: narrow subscriber is live on 2 of its 8 declared fields (25%), so the
#: fixed sample/pad arrays are dead weight the full-format arm still
#: marshals, ships and decodes on every message.
_PROJ_EVENT = IOFormat(
    "ProjBenchEvent",
    [
        IOField("seq", "integer"),
        IOField("value", "integer"),
        IOField("samples", "integer", array=ArraySpec(fixed_length=24)),
        IOField("aux", "float", array=ArraySpec(fixed_length=16)),
        IOField("tag", "integer"),
        IOField("flag", "integer"),
        IOField("origin", "integer"),
        IOField("pad", "integer", array=ArraySpec(fixed_length=12)),
    ],
    version="1.0",
)

#: What the narrow subscriber actually reads.
_PROJ_LIVE = ("seq", "value")

#: The subscriber's handler format — same name, narrower revision, so
#: the full-format arm morphs down to it by ordinary MaxMatch.
_PROJ_READER = IOFormat(
    "ProjBenchEvent",
    [IOField("seq", "integer"), IOField("value", "integer")],
    version="0.1",
)


@dataclass(frozen=True)
class ProjectionRow:
    """One arm of the projection push-down figure: the same event stream
    pushed through a reliable endpoint pair to a narrow subscriber,
    either full-format (the subscriber's receiver drops the dead fields
    after decode) or pre-projected onto the subscriber group's
    negotiated live set (the sender never encodes the dead fields)."""

    label: str
    fields_sent: int
    messages: int
    wire_bytes: int  # per-message bytes on the wire
    wall: Measurement  # wall seconds for the whole stream, best/mean

    @property
    def per_message_seconds(self) -> float:
        return self.wall.best / self.messages if self.messages else 0.0


def _projection_arm(
    projected: bool, messages: int, rounds: int
) -> ProjectionRow:
    """Time one arm: fresh network + endpoints + receiver per round,
    route warmed off the clock, the full sender-side encode *inside* the
    timed region — selective encoding is the sender half of the win."""
    wire_fmt = (
        project_format(_PROJ_EVENT, _PROJ_LIVE, epoch=1)
        if projected
        else _PROJ_EVENT
    )
    records = [
        _PROJ_EVENT.make_record(seq=i, value=i * 3)
        for i in range(messages)
    ]
    wire_bytes = len(PBIOContext().encode(wire_fmt, records[0]))
    expected = list(range(messages))
    timings: List[float] = []
    for _ in range(rounds):
        registry = FormatRegistry()
        registry.register(_PROJ_EVENT)
        registry.register(wire_fmt)
        ctx = PBIOContext(registry)
        net = Network(seed=31)
        sender = ReliableEndpoint(net, "bench-src")
        sink = ReliableEndpoint(net, "bench-dst")
        rx_registry = FormatRegistry()
        rx_registry.register(_PROJ_EVENT)
        rx_registry.register(wire_fmt)
        receiver = MorphReceiver(registry=rx_registry)
        got: List[int] = []
        receiver.register_handler(
            _PROJ_READER, lambda r, got=got: got.append(r["seq"])
        )
        sink.set_handler(lambda _src, data, r=receiver: r.process(data))
        # plan + warm the route and the generated encoder off the clock
        sender.send("bench-dst", ctx.encode(wire_fmt, records[0]))
        net.run()
        got.clear()
        start = time.perf_counter()
        for record in records:
            sender.send("bench-dst", ctx.encode(wire_fmt, record))
        net.run()
        timings.append(time.perf_counter() - start)
        if got != expected:
            raise ReproError(
                f"projection bench arm projected={projected} delivered "
                f"{len(got)}/{messages} messages (or out of order)"
            )
    return ProjectionRow(
        label="projected" if projected else "full",
        fields_sent=len(wire_fmt.fields),
        messages=messages,
        wire_bytes=wire_bytes,
        wall=Measurement(
            best=min(timings),
            mean=sum(timings) / len(timings),
            rounds=rounds,
            number=1,
        ),
    )


def fig_projection(
    messages: int = 2048, rounds: int = 3
) -> List[ProjectionRow]:
    """The projection push-down figure: end-to-end cost of the same
    stream to a narrow subscriber (live on 25% of the fields), full
    format vs the negotiated projection.  The first row is always the
    full-format arm — it anchors the self-normalized
    ``projection_relative_cost`` the regression gate tracks (both arms
    share one run's host regime, so machine-speed drift cancels)."""
    return [
        _projection_arm(False, messages, rounds),
        _projection_arm(True, messages, rounds),
    ]


# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SizeRow:
    """One column of Table 1 (sizes in bytes)."""

    target_kb: float
    unencoded_v2: int
    pbio_v2: int
    unencoded_v1: int
    xml_v2: int
    xml_v1: int


def table1_sizes(sizes_kb: Optional[List[float]] = None) -> List[SizeRow]:
    """ChannelOpenResponse sizes across representations.

    Paper results: PBIO adds < 30 bytes to the unencoded data; rollback
    to v1.0 triples the size (duplicated lists); XML inflates v2.0 by
    ~6-12x and v1.0 further."""
    chosen = list(sizes_kb) if sizes_kb is not None else list(TABLE1_SIZES_KB)
    ctx = PBIOContext()
    rows: List[SizeRow] = []
    for kb in chosen:
        record_v2 = response_v2_of_size(int(kb * 1000))
        record_v1 = response_v1_from_v2(record_v2)
        rows.append(
            SizeRow(
                target_kb=kb,
                unencoded_v2=native_size(RESPONSE_V2, record_v2),
                pbio_v2=len(ctx.encode(RESPONSE_V2, record_v2)),
                unencoded_v1=native_size(RESPONSE_V1, record_v1),
                xml_v2=len(encode_xml(RESPONSE_V2, record_v2).encode("utf-8")),
                xml_v1=len(encode_xml(RESPONSE_V1, record_v1).encode("utf-8")),
            )
        )
    return rows
