"""Figure/table data generators — one function per evaluation artifact.

Each function regenerates the data series behind one figure or table of
the paper's Section 5, returning plain rows that the pytest benches
assert shape properties on and that ``python -m repro.bench`` prints as
paper-style tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bench.timing import Measurement, measure
from repro.bench.workloads import (
    FIGURE_SIZES,
    TABLE1_SIZES_KB,
    V2_TO_V1_STYLESHEET,
    response_v1_from_v2,
    response_v2_of_size,
)
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V2_TO_V1_TRANSFORM,
)
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.encode import native_size
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry
from repro.xmlrep.decode import record_from_tree
from repro.xmlrep.encode import encode_xml
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.xslt import Stylesheet


@dataclass(frozen=True)
class ComparisonRow:
    """One x-axis point of a PBIO-vs-XML figure."""

    label: str
    unencoded_bytes: int
    pbio: Measurement
    xml: Measurement

    @property
    def ratio(self) -> float:
        """XML time / PBIO time — the factor the paper reports."""
        return self.xml.best / self.pbio.best if self.pbio.best else float("inf")


def _workloads(sizes: Optional[Dict[str, int]]) -> List:
    chosen = sizes if sizes is not None else FIGURE_SIZES
    out = []
    for label, target in chosen.items():
        record = response_v2_of_size(target)
        out.append((label, native_size(RESPONSE_V2, record), record))
    return out


# ---------------------------------------------------------------------------
# Figure 8 — encoding cost
# ---------------------------------------------------------------------------


def fig8_encoding(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[ComparisonRow]:
    """Encoding cost of the v2.0 ChannelOpenResponse, PBIO vs XML.

    Paper result: XML encoding is at least 2x PBIO across all sizes."""
    rows: List[ComparisonRow] = []
    ctx = PBIOContext()
    for label, unencoded, record in _workloads(sizes):
        ctx.encode(RESPONSE_V2, record)  # warm the generated encoder
        pbio = measure(lambda: ctx.encode(RESPONSE_V2, record), rounds=rounds)
        xml = measure(lambda: encode_xml(RESPONSE_V2, record), rounds=rounds)
        rows.append(ComparisonRow(label, unencoded, pbio, xml))
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — decoding cost without evolution
# ---------------------------------------------------------------------------


def fig9_decoding(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[ComparisonRow]:
    """Decoding cost without format evolution: a v2.0 reader receives
    v2.0 messages.  PBIO decodes with its generated routine; XML parses
    the text and traverses the tree back into a record.

    Paper result: PBIO is much less expensive than XML (order of
    magnitude), because of its DCG-specialized decode routine."""
    rows: List[ComparisonRow] = []
    ctx = PBIOContext()
    for label, unencoded, record in _workloads(sizes):
        wire = ctx.encode(RESPONSE_V2, record)
        xml_text = encode_xml(RESPONSE_V2, record)
        ctx.decode_as(RESPONSE_V2, wire)  # warm the generated decoder

        def decode_xml_path(text: str = xml_text) -> Record:
            return record_from_tree(RESPONSE_V2, parse_xml(text))

        pbio = measure(lambda: ctx.decode_as(RESPONSE_V2, wire), rounds=rounds)
        xml = measure(decode_xml_path, rounds=rounds)
        rows.append(ComparisonRow(label, unencoded, pbio, xml))
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — decoding cost with evolution (message morphing vs XSLT)
# ---------------------------------------------------------------------------


def fig10_morphing(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[ComparisonRow]:
    """Decoding cost *with* evolution: a v1.0-only reader receives v2.0
    messages.

    PBIO morphing = decode v2.0 (generated routine) + compiled ECode
    transform to v1.0 (Figure 5).  XML/XSLT = parse text into a tree +
    apply the XSL transformation (new tree) + traverse the new tree into
    a v1.0 record.

    Paper result: XML/XSLT is an order of magnitude slower."""
    rows: List[ComparisonRow] = []
    stylesheet = Stylesheet.from_string(V2_TO_V1_STYLESHEET)
    for label, unencoded, record in _workloads(sizes):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        receiver = MorphReceiver(registry)
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        ctx = PBIOContext(registry)
        wire = ctx.encode(RESPONSE_V2, record)
        xml_text = encode_xml(RESPONSE_V2, record)
        receiver.process(wire)  # plan + compile + cache the route

        def xslt_path(text: str = xml_text) -> Record:
            tree = parse_xml(text)
            transformed = stylesheet.transform(tree)
            return record_from_tree(RESPONSE_V1, transformed)

        pbio = measure(lambda: receiver.process(wire), rounds=rounds)
        xml = measure(xslt_path, rounds=rounds)
        rows.append(ComparisonRow(label, unencoded, pbio, xml))
    return rows


# ---------------------------------------------------------------------------
# Fusion ablation — whole-route fusion vs staged vs interpreted
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    """One x-axis point of the fusion ablation: the same chain-length-2
    morphing workload under three receiver modes."""

    label: str
    unencoded_bytes: int
    fused: Measurement
    staged: Measurement
    interpreted: Measurement

    @property
    def speedup(self) -> float:
        """Staged time / fused time — the whole-route fusion win."""
        return (
            self.staged.best / self.fused.best if self.fused.best else float("inf")
        )


def fig_fusion_ablation(
    sizes: Optional[Dict[str, int]] = None, rounds: int = 5
) -> List[AblationRow]:
    """Morphing latency at chain length 2 — a v0.0-only reader receives
    v2.0 messages through the retro ladder v2.0 -> v1.0 -> v0.0 — under:

    * ``fused``: whole-route fusion (decode + both transform steps +
      reconcile compiled into one routine, dead fields skipped),
    * ``staged``: the per-stage DCG pipeline (generated decoder, then
      two compiled ECode hops, each materializing a record),
    * ``interpreted``: no code generation anywhere (the paper's
      interpretation ablation arm).
    """

    def receiver_for(record, **kwargs):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
        receiver = MorphReceiver(registry, **kwargs)
        receiver.register_handler(RESPONSE_V0, lambda rec: rec)
        wire = PBIOContext(registry).encode(RESPONSE_V2, record)
        receiver.process(wire)  # plan + compile + cache the route
        return receiver, wire

    rows: List[AblationRow] = []
    for label, unencoded, record in _workloads(sizes):
        fused_rx, wire = receiver_for(record, use_fusion=True)
        staged_rx, _ = receiver_for(record, use_fusion=False)
        interp_rx, _ = receiver_for(record, use_fusion=False, use_codegen=False)
        rows.append(
            AblationRow(
                label,
                unencoded,
                fused=measure(lambda: fused_rx.process(wire), rounds=rounds),
                staged=measure(lambda: staged_rx.process(wire), rounds=rounds),
                interpreted=measure(
                    lambda: interp_rx.process(wire), rounds=rounds
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 1 — message sizes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SizeRow:
    """One column of Table 1 (sizes in bytes)."""

    target_kb: float
    unencoded_v2: int
    pbio_v2: int
    unencoded_v1: int
    xml_v2: int
    xml_v1: int


def table1_sizes(sizes_kb: Optional[List[float]] = None) -> List[SizeRow]:
    """ChannelOpenResponse sizes across representations.

    Paper results: PBIO adds < 30 bytes to the unencoded data; rollback
    to v1.0 triples the size (duplicated lists); XML inflates v2.0 by
    ~6-12x and v1.0 further."""
    chosen = list(sizes_kb) if sizes_kb is not None else list(TABLE1_SIZES_KB)
    ctx = PBIOContext()
    rows: List[SizeRow] = []
    for kb in chosen:
        record_v2 = response_v2_of_size(int(kb * 1000))
        record_v1 = response_v1_from_v2(record_v2)
        rows.append(
            SizeRow(
                target_kb=kb,
                unencoded_v2=native_size(RESPONSE_V2, record_v2),
                pbio_v2=len(ctx.encode(RESPONSE_V2, record_v2)),
                unencoded_v1=native_size(RESPONSE_V1, record_v1),
                xml_v2=len(encode_xml(RESPONSE_V2, record_v2).encode("utf-8")),
                xml_v1=len(encode_xml(RESPONSE_V1, record_v1).encode("utf-8")),
            )
        )
    return rows
