"""Timing helpers for the standalone benchmark harness.

``pytest-benchmark`` drives the benches under ``benchmarks/``; these
helpers serve the table-printing harness functions that regenerate the
paper's figures as text (so `python -m repro.bench` works without
pytest).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Any, Callable, List


@dataclass(frozen=True)
class Measurement:
    """Result of timing one callable."""

    best: float  # seconds per call, best round
    mean: float
    rounds: int
    number: int  # calls per round

    @property
    def best_ms(self) -> float:
        return self.best * 1e3

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3


def measure(
    fn: Callable[[], Any],
    rounds: int = 5,
    number: int = 0,
    target_round_seconds: float = 0.05,
) -> Measurement:
    """Time ``fn()`` like ``timeit``: *rounds* rounds of *number* calls,
    reporting the best and mean per-call time.

    ``number=0`` auto-calibrates so one round takes roughly
    *target_round_seconds* (keeps fast paths statistically meaningful and
    slow paths fast to measure).
    """
    if number <= 0:
        number = 1
        while True:
            start = time.perf_counter()
            for _ in range(number):
                fn()
            elapsed = time.perf_counter() - start
            if elapsed >= target_round_seconds / 4 or number >= 1_000_000:
                break
            number *= 4
        number = max(1, int(number * target_round_seconds / max(elapsed, 1e-9)))
        number = min(number, 1_000_000)
    timings: List[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(number):
                fn()
            timings.append((time.perf_counter() - start) / number)
    finally:
        if gc_was_enabled:
            gc.enable()
    return Measurement(
        best=min(timings),
        mean=sum(timings) / len(timings),
        rounds=rounds,
        number=number,
    )
