"""Print every evaluation artifact (Figures 8-10, Table 1) as text.

Usage::

    python -m repro.bench                  # figure sizes up to 1 MB
    python -m repro.bench --quick          # up to 10 KB (CI-friendly)
    python -m repro.bench --json out.json  # machine-readable BENCH_* results
    python -m repro.bench --obs            # attach the observability
                                           # registry: per-stage breakdown
                                           # (decode vs transform vs codegen)
                                           # per figure, printed and included
                                           # in the JSON

The ``--json`` document carries one ``BENCH_fig8`` / ``BENCH_fig9`` /
``BENCH_fig10`` / ``BENCH_fusion`` / ``BENCH_batch`` /
``BENCH_projection`` / ``BENCH_recovery`` / ``BENCH_telemetry``
record per figure — ``{figure,
workloads: [{label, unencoded_bytes, timings}], stages?}`` — so later
perf PRs can diff per-stage numbers instead of end-to-end wall time.

``--compare BASELINE.json`` re-runs the figures and gates on the
committed baseline: per figure, the geometric mean of the current/
baseline PBIO-time ratios over overlapping workload labels must stay
within :data:`REGRESSION_TOLERANCE`; any figure above it fails the run
(nonzero exit) — the perf regression gate CI runs on every change.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.bench.fabric import (
    bench_fabric_churn,
    bench_fabric_recovery,
    bench_fabric_scaling,
    calibration_seconds,
)
from repro.bench.figures import (
    ComparisonRow,
    fig8_encoding,
    fig9_decoding,
    fig10_morphing,
    fig_batching,
    fig_fusion_ablation,
    fig_projection,
    fig_reliability,
    table1_sizes,
)
from repro.bench.reporting import format_kb, format_ms, format_table
from repro.bench.telemetry import bench_telemetry
from repro.bench.workloads import FIGURE_SIZES
from repro.obs.metrics import Histogram


#: A figure fails the ``--compare`` gate when its geometric-mean
#: current/baseline timing ratio exceeds this (1.15 = >15% slower).
REGRESSION_TOLERANCE = 1.15

#: Timing metrics the gate compares, in priority order (the first one a
#: workload carries wins): end-to-end PBIO time for the comparison
#: figures, and two *self-normalized* intra-run ratios — the ablation's
#: fused-over-staged cost and the fabric bench's per-fleet cost over
#: the same run's 1-worker row.  Each ratio's sides share the host
#: regime, so machine-speed drift cancels and the gate tracks exactly
#: what those figures demonstrate (the fusion win; horizontal scaling).
#: ``fused_seconds`` stays listed after the ratio for old baselines.
#: ``batch_relative_cost`` is the batching figure's intra-run ratio —
#: batched per-message time over the same run's unbatched arm.
_GATE_METRICS = (
    "pbio_seconds",
    "fused_relative_cost",
    "fused_seconds",
    "fabric_scaling_cost",
    "batch_relative_cost",
    "projection_relative_cost",
)

#: Per-figure tolerance overrides.  The fabric scaling cost is a ratio
#: of two multiprocess CPU measurements, each noisier than a best-of-K
#: single-process wall loop, so its gate is wider: 1.35 still catches a
#: genuine loss of horizontal scaling (a serialized fabric would push
#: the cost ratio toward 2-4x) without tripping on scheduler noise.
#: The batching cost ratio divides two wall-clocked virtual-network
#: drains; scheduler noise hits both sides but not identically, so its
#: gate matches the fabric one.  With a ~0.15 baseline ratio (a ~6x
#: speedup at batch >= 64), 1.35 still fails the gate long before the
#: speedup erodes to the 3x the batching work is meant to guarantee.
#: The projection cost ratio is the same construction as the batching
#: one (two wall-clocked virtual-network drains in one run), so its gate
#: matches; with a ~0.6 baseline ratio, 1.35 fails long before the
#: projected arm stops being a win at all.
_GATE_TOLERANCES = {
    "BENCH_fabric": 1.35,
    "BENCH_batch": 1.35,
    "BENCH_projection": 1.35,
}


def _rows_record(figure: str, rows: "List[ComparisonRow]") -> Dict[str, Any]:
    """One BENCH_fig* JSON record (sans stage breakdown)."""
    return {
        "figure": figure,
        "workloads": [
            {
                "label": row.label,
                "unencoded_bytes": row.unencoded_bytes,
                "timings": {
                    "pbio_seconds": row.pbio.best,
                    "pbio_mean_seconds": row.pbio.mean,
                    "xml_seconds": row.xml.best,
                    "xml_mean_seconds": row.xml.mean,
                    "ratio": row.ratio,
                },
            }
            for row in rows
        ],
    }


def _ablation_record(rows) -> Dict[str, Any]:
    """The BENCH_fusion JSON record.

    The gated timing is ``fused_relative_cost`` — fused over staged
    time, the inverse of the figure's speedup column.  Both arms run
    back-to-back on the same wire, so host-speed drift cancels and the
    gate tracks exactly what the ablation demonstrates: the fusion win.
    (Absolute morph-path latency is gated by ``BENCH_fig10``, whose
    pipeline takes the fused route.)"""
    return {
        "figure": "fusion_ablation",
        "chain_length": 2,
        "workloads": [
            {
                "label": row.label,
                "unencoded_bytes": row.unencoded_bytes,
                "timings": {
                    "fused_relative_cost": (
                        row.fused.best / row.staged.best
                        if row.staged.best
                        else 1.0
                    ),
                    "fused_seconds": row.fused.best,
                    "staged_seconds": row.staged.best,
                    "interpreted_seconds": row.interpreted.best,
                    "speedup": row.speedup,
                },
            }
            for row in rows
        ],
    }


def _compare_to_baseline(
    payload: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = REGRESSION_TOLERANCE,
) -> "Tuple[Dict[str, float], List[str]]":
    """Per-figure geometric mean of current/baseline timing ratios over
    the workload labels both documents carry.  Returns ``(geomeans,
    failures)`` — a figure missing from either side is skipped, not
    failed (quick runs gate against a full baseline)."""
    geomeans: Dict[str, float] = {}
    failures: List[str] = []
    for key in sorted(payload):
        record = payload[key]
        base = baseline.get(key)
        if not (
            isinstance(record, dict)
            and isinstance(base, dict)
            and "workloads" in record
            and "workloads" in base
        ):
            continue
        base_by_label = {w["label"]: w for w in base["workloads"]}
        ratios: List[float] = []
        for work in record["workloads"]:
            other = base_by_label.get(work["label"])
            timings = work.get("timings")
            base_timings = other.get("timings") if other else None
            if not timings or not base_timings:
                continue
            for metric in _GATE_METRICS:
                current, reference = timings.get(metric), base_timings.get(metric)
                if current and reference:
                    ratios.append(current / reference)
                    break
        if not ratios:
            continue
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        geomeans[key] = geomean
        figure_tolerance = _GATE_TOLERANCES.get(key, tolerance)
        if geomean > figure_tolerance:
            failures.append(
                f"{key}: geomean current/baseline = {geomean:.3f} "
                f"(> {figure_tolerance:.2f} tolerance)"
            )
    return geomeans, failures


def _stage_breakdown(registry: "obs.Registry") -> Dict[str, Any]:
    """Compact per-stage summary of one figure's run: every ``*.seconds``
    histogram (where the time went) plus every counter (how much work)."""
    timings: Dict[str, Any] = {}
    distributions: Dict[str, Any] = {}
    counters: Dict[str, int] = {}
    for instrument in registry.instruments():
        key = instrument.name + instrument.label_suffix()
        if isinstance(instrument, Histogram):
            if not instrument.count:
                continue
            entry = {
                "count": instrument.count,
                "total": instrument.sum,
                "mean": instrument.mean,
                "p50": instrument.p50,
                "p95": instrument.p95,
                "p99": instrument.p99,
            }
            if instrument.name.endswith(".seconds"):
                timings[key] = {
                    "count": entry["count"],
                    "total_seconds": entry["total"],
                    "mean_seconds": entry["mean"],
                    "p50_seconds": entry["p50"],
                    "p95_seconds": entry["p95"],
                    "p99_seconds": entry["p99"],
                }
            else:
                distributions[key] = entry
        elif instrument.kind == "counter" and instrument.value:
            counters[key] = instrument.value
    return {"timings": timings, "distributions": distributions,
            "counters": counters}


def _print_stage_table(stages: Dict[str, Any]) -> None:
    timings = stages["timings"]
    if timings:
        print("\n-- stage breakdown (obs) --")
        print(
            format_table(
                ["stage", "count", "total(ms)", "mean(ms)", "p95(ms)"],
                [
                    (
                        name,
                        entry["count"],
                        format_ms(entry["total_seconds"]),
                        format_ms(entry["mean_seconds"]),
                        format_ms(entry["p95_seconds"]),
                    )
                    for name, entry in sorted(timings.items())
                ],
            )
        )


def main(argv: "Optional[List[str]]" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--quick" in args:
        sizes = {k: v for k, v in FIGURE_SIZES.items() if v <= 10_000}
        table_kb = [0.1, 1.0, 10.0]
    else:
        sizes = dict(FIGURE_SIZES)
        table_kb = [0.1, 1.0, 10.0, 100.0, 1000.0]
    json_path = None
    if "--json" in args:
        index = args.index("--json")
        if index + 1 >= len(args):
            print("error: --json requires a file path", file=sys.stderr)
            return 2
        json_path = args[index + 1]
    compare_path = None
    if "--compare" in args:
        index = args.index("--compare")
        if index + 1 >= len(args):
            print("error: --compare requires a baseline JSON path",
                  file=sys.stderr)
            return 2
        compare_path = args[index + 1]
    obs_mode = "--obs" in args
    registry: "Optional[obs.Registry]" = None
    if obs_mode:
        registry = obs.Registry()
        obs.enable(registry=registry)

    # Machine-speed yardstick, bracketing the whole run (best of the two
    # draws): a fixed wall-clocked codec loop the gate uses to normalize
    # wall-time ratios against the committed baseline's machine.
    wall_calibration = calibration_seconds(clock=time.perf_counter)

    payload: Dict[str, Any] = {
        "schema": "repro-bench/v1",
        "quick": "--quick" in args,
        "obs": obs_mode,
    }

    def comparison(key: str, figure: str, title: str, rows) -> None:
        print(f"\n== {title} ==")
        print(
            format_table(
                ["size", "unencoded(B)", "PBIO(ms)", "XML(ms)", "XML/PBIO"],
                [
                    (
                        r.label,
                        r.unencoded_bytes,
                        format_ms(r.pbio.best),
                        format_ms(r.xml.best),
                        f"{r.ratio:.1f}x",
                    )
                    for r in rows
                ],
            )
        )
        record = _rows_record(figure, rows)
        if obs_mode and registry is not None:
            record["stages"] = _stage_breakdown(registry)
            _print_stage_table(record["stages"])
        payload[key] = record

    figures = [
        ("BENCH_fig8", "fig8_encoding", "Figure 8: encoding cost",
         fig8_encoding),
        ("BENCH_fig9", "fig9_decoding", "Figure 9: decoding cost (no evolution)",
         fig9_decoding),
        ("BENCH_fig10", "fig10_morphing",
         "Figure 10: decoding cost with evolution (morphing vs XSLT)",
         fig10_morphing),
    ]
    for key, figure, title, fn in figures:
        if obs_mode and registry is not None:
            registry.reset()  # isolate each figure's stage numbers
            obs.get_tracer().clear()
        comparison(key, figure, title, fn(sizes))

    if obs_mode and registry is not None:
        registry.reset()
        obs.get_tracer().clear()
    ablation_rows = fig_fusion_ablation(sizes)
    print("\n== Fusion ablation: morphing latency, chain length 2 "
          "(v2.0 wire -> v0.0 reader) ==")
    print(
        format_table(
            ["size", "fused(ms)", "staged(ms)", "interp(ms)", "staged/fused"],
            [
                (
                    r.label,
                    format_ms(r.fused.best),
                    format_ms(r.staged.best),
                    format_ms(r.interpreted.best),
                    f"{r.speedup:.2f}x",
                )
                for r in ablation_rows
            ],
        )
    )
    ablation_record = _ablation_record(ablation_rows)
    if obs_mode and registry is not None:
        ablation_record["stages"] = _stage_breakdown(registry)
        _print_stage_table(ablation_record["stages"])
    payload["BENCH_fusion"] = ablation_record

    reliability_rows = fig_reliability(
        messages=60 if "--quick" in args else 200
    )
    print("\n== Reliability: goodput and p99 delivery latency vs link "
          "loss (virtual time) ==")
    print(
        format_table(
            ["loss", "goodput(rel)", "goodput(raw)", "p99(rel)",
             "p99(raw)", "retries"],
            [
                (
                    f"{r.loss_pct:g}%",
                    f"{r.reliable_goodput:.3f}",
                    f"{r.raw_goodput:.3f}",
                    format_ms(r.reliable_p99_seconds),
                    format_ms(r.raw_p99_seconds),
                    r.retries,
                )
                for r in reliability_rows
            ],
        )
    )
    # Deliberately a "metrics" payload, not "timings": these are virtual-
    # clock properties of the simulation, deterministic for a seed, and
    # must not participate in the wall-time regression gate.
    payload["BENCH_reliability"] = {
        "figure": "reliability",
        "workloads": [
            {
                "label": f"{r.loss_pct:g}%",
                "metrics": {
                    "messages": r.messages,
                    "reliable_goodput": r.reliable_goodput,
                    "raw_goodput": r.raw_goodput,
                    "reliable_p99_seconds": r.reliable_p99_seconds,
                    "raw_p99_seconds": r.raw_p99_seconds,
                    "retries": r.retries,
                },
            }
            for r in reliability_rows
        ],
    }

    fabric_counts = (1, 2, 4) if "--quick" in args else (1, 2, 4, 8)
    fabric_rows = bench_fabric_scaling(worker_counts=fabric_counts)
    # Speedups compare *calibrated* per-row costs — raw capacities from
    # different time windows would fold host-speed drift into the ratio.
    base_units = fabric_rows[0].cpu_units
    print("\n== Fabric scaling: aggregate morphing capacity vs worker "
          "processes (UDP loopback) ==")
    print(
        format_table(
            ["fleet", "delivered", "wall(ms)", "maxCPU(ms)", "cpu-units",
             "msg/cpu-s", "capacity vs 1w"],
            [
                (
                    r.label,
                    r.delivered,
                    format_ms(r.wall_seconds),
                    format_ms(r.max_cpu_seconds),
                    f"{r.cpu_units:.1f}",
                    f"{r.capacity:.0f}",
                    f"{base_units / r.cpu_units:.2f}x",
                )
                for r in fabric_rows
            ],
        )
    )
    # ``fabric_scaling_cost`` (this fleet's calibrated cost over the
    # same run's 1-worker cost — the inverse of the speedup column) is
    # the gated timing for every scaled row; the 1w row anchors the
    # ratio and carries no gate metric.  Absolute CPU seconds and units
    # ride along as metrics: worker CPU time mixes interpreter and
    # kernel work that drift differently with host speed, so absolute
    # values are not comparable across runs.
    payload["BENCH_fabric"] = {
        "figure": "fabric_scaling",
        "workloads": [
            {
                "label": r.label,
                "timings": {
                    **(
                        {"fabric_scaling_cost": r.cpu_units / base_units}
                        if r is not fabric_rows[0]
                        else {}
                    ),
                    "wall_seconds": r.wall_seconds,
                },
                "metrics": {
                    "messages": r.messages,
                    "delivered": r.delivered,
                    "max_cpu_seconds": r.max_cpu_seconds,
                    "cpu_units": r.cpu_units,
                    "calibration_seconds": r.calibration,
                    "capacity_per_cpu_second": r.capacity,
                    "speedup_vs_1w": base_units / r.cpu_units,
                    "worker_cpu_seconds": r.worker_cpu_seconds,
                    "worker_processed": r.worker_processed,
                },
            }
            for r in fabric_rows
        ],
    }

    churn = bench_fabric_churn()
    print("\n== Fabric churn: seeded join/leave under a 15%-lossy morph "
          "chain (virtual time) ==")
    print(
        format_table(
            ["published", "delivered", "dup", "handoffs", "forwarded",
             "epochs", "exactly-once"],
            [
                (
                    churn.published,
                    f"{churn.delivered_v1}+{churn.delivered_v0}",
                    churn.duplicates,
                    churn.handoffs,
                    churn.forwarded,
                    churn.epochs,
                    "yes" if churn.exactly_once else "NO",
                )
            ],
        )
    )
    # Deterministic virtual-clock scenario -> metrics only, no timings
    # (same reasoning as BENCH_reliability).
    payload["BENCH_fabric_churn"] = {
        "figure": "fabric_churn",
        "workloads": [
            {
                "label": f"seed{11}",
                "metrics": {
                    "published": churn.published,
                    "delivered_v1": churn.delivered_v1,
                    "delivered_v0": churn.delivered_v0,
                    "duplicates": churn.duplicates,
                    "handoffs": churn.handoffs,
                    "forwarded": churn.forwarded,
                    "redirects": churn.redirects,
                    "epochs": churn.epochs,
                    "exactly_once": churn.exactly_once,
                },
            }
        ],
    }

    recovery_rows = bench_fabric_recovery(
        messages=24 if "--quick" in args else 40
    )
    print("\n== Fabric recovery: unavailability window and events lost "
          "vs crash timing, journaled vs ablation (virtual time) ==")
    print(
        format_table(
            ["arm", "published", "delivered", "lost", "tail-dup",
             "replayed", "unavail(ms)", "exactly-once"],
            [
                (
                    r.label,
                    r.published,
                    r.delivered,
                    r.lost,
                    r.tail_duplicates,
                    r.replayed,
                    format_ms(r.unavailability_seconds),
                    "yes" if r.exactly_once else "NO",
                )
                for r in recovery_rows
            ],
        )
    )
    # Deterministic virtual-clock scenario -> metrics only, no timings
    # (same reasoning as BENCH_reliability): the unavailability window
    # is a property of the lease/recovery protocol, not of this host.
    payload["BENCH_recovery"] = {
        "figure": "fabric_recovery",
        "workloads": [
            {
                "label": r.label,
                "metrics": {
                    "crash_fraction": r.crash_fraction,
                    "journaled": r.journaled,
                    "published": r.published,
                    "delivered": r.delivered,
                    "lost": r.lost,
                    "tail_duplicates": r.tail_duplicates,
                    "replayed": r.replayed,
                    "unavailability_seconds": r.unavailability_seconds,
                    "exactly_once": r.exactly_once,
                },
            }
            for r in recovery_rows
        ],
    }

    telemetry_rows = bench_telemetry(
        steps=240 if "--quick" in args else 600,
        rounds=3 if "--quick" in args else 5,
    )
    print("\n== Telemetry plane: e2e fabric cost with the agent off / "
          "scraping at 1s / at 100ms (self-normalized) ==")
    print(
        format_table(
            ["arm", "scrape", "wall(ms)", "events", "deltas", "overhead"],
            [
                (
                    r.label,
                    "-" if r.scrape_interval is None
                    else f"{r.scrape_interval:g}s",
                    format_ms(r.wall_seconds),
                    r.events,
                    r.deltas,
                    f"{r.overhead_percent:+.1f}%",
                )
                for r in telemetry_rows
            ],
        )
    )
    # Metrics only, no gated timings: the overhead ratio divides two
    # in-process wall-clocked drains, too scheduler-noisy for the gate.
    # The acceptance target lives in the table — the 1s arm should sit
    # within a few percent of the off arm.
    payload["BENCH_telemetry"] = {
        "figure": "telemetry_overhead",
        "workloads": [
            {
                "label": r.label,
                "metrics": {
                    "scrape_interval": r.scrape_interval,
                    "wall_seconds": r.wall_seconds,
                    "events": r.events,
                    "deltas": r.deltas,
                    "overhead_ratio": r.overhead_ratio,
                },
            }
            for r in telemetry_rows
        ],
    }

    batch_rows = fig_batching(
        messages=1024 if "--quick" in args else 4096,
        rounds=2 if "--quick" in args else 3,
    )
    batch_base = batch_rows[0]
    print("\n== Wire batching: per-message cost, BATCH1 frames vs one "
          "datagram per message (reliable endpoints) ==")
    print(
        format_table(
            ["arm", "messages", "frames", "wall(ms)", "us/msg",
             "speedup vs single"],
            [
                (
                    r.label,
                    r.messages,
                    r.frames,
                    format_ms(r.wall.best),
                    f"{r.per_message_seconds * 1e6:.2f}",
                    f"{batch_base.per_message_seconds / r.per_message_seconds:.2f}x",
                )
                for r in batch_rows
            ],
        )
    )
    # ``batch_relative_cost`` (this arm's per-message time over the same
    # run's unbatched arm — the inverse of the speedup column) is the
    # gated timing for every batched row; the single arm anchors the
    # ratio and carries no gate metric.  Same self-normalization story
    # as ``fabric_scaling_cost``: both sides share one host regime, so
    # the gate tracks the batching win itself, not machine speed.
    payload["BENCH_batch"] = {
        "figure": "batching",
        "workloads": [
            {
                "label": r.label,
                "timings": {
                    **(
                        {
                            "batch_relative_cost": (
                                r.per_message_seconds
                                / batch_base.per_message_seconds
                            )
                        }
                        if r is not batch_base
                        else {}
                    ),
                    "wall_seconds": r.wall.best,
                    "wall_mean_seconds": r.wall.mean,
                },
                "metrics": {
                    "messages": r.messages,
                    "frames": r.frames,
                    "batch_size": r.batch_size,
                    "per_message_seconds": r.per_message_seconds,
                    "speedup_vs_single": (
                        batch_base.per_message_seconds / r.per_message_seconds
                    ),
                },
            }
            for r in batch_rows
        ],
    }

    projection_rows = fig_projection(
        messages=512 if "--quick" in args else 2048,
        rounds=2 if "--quick" in args else 3,
    )
    projection_base = projection_rows[0]
    print("\n== Projection push-down: narrow subscriber (2 of 8 fields "
          "live), full format vs negotiated projection ==")
    print(
        format_table(
            ["arm", "fields", "wire(B)", "wall(ms)", "us/msg",
             "bytes vs full", "speedup vs full"],
            [
                (
                    r.label,
                    r.fields_sent,
                    r.wire_bytes,
                    format_ms(r.wall.best),
                    f"{r.per_message_seconds * 1e6:.2f}",
                    f"{projection_base.wire_bytes / r.wire_bytes:.2f}x",
                    f"{projection_base.per_message_seconds / r.per_message_seconds:.2f}x",
                )
                for r in projection_rows
            ],
        )
    )
    # ``projection_relative_cost`` (the projected arm's per-message time
    # over the same run's full-format arm) is the gated timing; the full
    # arm anchors the ratio and carries no gate metric.  Wire sizes are
    # deterministic format properties, so they ride along as metrics.
    payload["BENCH_projection"] = {
        "figure": "projection",
        "workloads": [
            {
                "label": r.label,
                "timings": {
                    **(
                        {
                            "projection_relative_cost": (
                                r.per_message_seconds
                                / projection_base.per_message_seconds
                            )
                        }
                        if r is not projection_base
                        else {}
                    ),
                    "wall_seconds": r.wall.best,
                    "wall_mean_seconds": r.wall.mean,
                },
                "metrics": {
                    "messages": r.messages,
                    "fields_sent": r.fields_sent,
                    "wire_bytes_per_message": r.wire_bytes,
                    "bytes_reduction_vs_full": (
                        projection_base.wire_bytes / r.wire_bytes
                    ),
                    "per_message_seconds": r.per_message_seconds,
                    "speedup_vs_full": (
                        projection_base.per_message_seconds
                        / r.per_message_seconds
                    ),
                },
            }
            for r in projection_rows
        ],
    }

    print("\n== Table 1: ChannelOpenResponse message size (KB) ==")
    rows = table1_sizes(table_kb)
    payload["BENCH_table1"] = {
        "figure": "table1_sizes",
        "workloads": [
            {
                "label": f"{r.target_kb:g}KB",
                "sizes_bytes": {
                    "unencoded_v2": r.unencoded_v2,
                    "pbio_v2": r.pbio_v2,
                    "unencoded_v1": r.unencoded_v1,
                    "xml_v2": r.xml_v2,
                    "xml_v1": r.xml_v1,
                },
            }
            for r in rows
        ],
    }
    print(
        format_table(
            ["", *(format_kb(int(r.target_kb * 1000)) for r in rows)],
            [
                ["Unencoded v2.0", *(format_kb(r.unencoded_v2) for r in rows)],
                ["PBIO Encoded v2.0", *(format_kb(r.pbio_v2) for r in rows)],
                ["Unencoded v1.0", *(format_kb(r.unencoded_v1) for r in rows)],
                ["XML v2.0", *(format_kb(r.xml_v2) for r in rows)],
                ["XML v1.0", *(format_kb(r.xml_v1) for r in rows)],
            ],
        )
    )
    if obs_mode:
        obs.disable(reset=True)
    wall_calibration = min(
        wall_calibration, calibration_seconds(clock=time.perf_counter)
    )
    payload["calibration_seconds"] = wall_calibration
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote JSON results to {json_path}")
    if compare_path is not None:
        try:
            with open(compare_path, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {compare_path}: {exc}",
                  file=sys.stderr)
            return 2
        geomeans, failures = _compare_to_baseline(payload, baseline)
        print(f"\n== Regression gate vs {compare_path} ==")
        baseline_cal = baseline.get("calibration_seconds")
        if baseline_cal:
            # Diagnostic only: how fast this host is running relative to
            # the baseline machine (reading a FAIL below, check this
            # first — a factor far from 1.0 means host drift, so refresh
            # the baseline rather than hunting a phantom regression).
            print(
                "machine-speed factor (current/baseline calibration): "
                f"{wall_calibration / baseline_cal:.3f}"
            )
        print(
            format_table(
                ["figure", "geomean(current/baseline)", "status"],
                [
                    (
                        key,
                        f"{ratio:.3f}",
                        "FAIL"
                        if ratio > _GATE_TOLERANCES.get(
                            key, REGRESSION_TOLERANCE
                        )
                        else "ok",
                    )
                    for key, ratio in sorted(geomeans.items())
                ],
            )
        )
        if failures:
            for failure in failures:
                print(f"regression: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
