"""Print every evaluation artifact (Figures 8-10, Table 1) as text.

Usage::

    python -m repro.bench                  # figure sizes up to 1 MB
    python -m repro.bench --quick          # up to 10 KB (CI-friendly)
    python -m repro.bench --json out.json  # machine-readable results too
"""

from __future__ import annotations

import json
import sys

from repro.bench.figures import (
    fig8_encoding,
    fig9_decoding,
    fig10_morphing,
    table1_sizes,
)
from repro.bench.reporting import format_kb, format_ms, format_table
from repro.bench.workloads import FIGURE_SIZES


def main(argv: "list[str] | None" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--quick" in args:
        sizes = {k: v for k, v in FIGURE_SIZES.items() if v <= 10_000}
        table_kb = [0.1, 1.0, 10.0]
    else:
        sizes = dict(FIGURE_SIZES)
        table_kb = [0.1, 1.0, 10.0, 100.0, 1000.0]
    json_path = None
    if "--json" in args:
        index = args.index("--json")
        if index + 1 >= len(args):
            print("error: --json requires a file path", file=sys.stderr)
            return 2
        json_path = args[index + 1]
    collected: "dict[str, list]" = {}

    def comparison(title: str, rows) -> None:
        collected[title] = [
            {
                "label": r.label,
                "unencoded_bytes": r.unencoded_bytes,
                "pbio_seconds": r.pbio.best,
                "xml_seconds": r.xml.best,
                "ratio": r.ratio,
            }
            for r in rows
        ]
        print(f"\n== {title} ==")
        print(
            format_table(
                ["size", "unencoded(B)", "PBIO(ms)", "XML(ms)", "XML/PBIO"],
                [
                    (
                        r.label,
                        r.unencoded_bytes,
                        format_ms(r.pbio.best),
                        format_ms(r.xml.best),
                        f"{r.ratio:.1f}x",
                    )
                    for r in rows
                ],
            )
        )

    comparison("Figure 8: encoding cost", fig8_encoding(sizes))
    comparison("Figure 9: decoding cost (no evolution)", fig9_decoding(sizes))
    comparison(
        "Figure 10: decoding cost with evolution (morphing vs XSLT)",
        fig10_morphing(sizes),
    )

    print("\n== Table 1: ChannelOpenResponse message size (KB) ==")
    rows = table1_sizes(table_kb)
    collected["Table 1"] = [
        {
            "target_kb": r.target_kb,
            "unencoded_v2": r.unencoded_v2,
            "pbio_v2": r.pbio_v2,
            "unencoded_v1": r.unencoded_v1,
            "xml_v2": r.xml_v2,
            "xml_v1": r.xml_v1,
        }
        for r in rows
    ]
    print(
        format_table(
            ["", *(format_kb(int(r.target_kb * 1000)) for r in rows)],
            [
                ["Unencoded v2.0", *(format_kb(r.unencoded_v2) for r in rows)],
                ["PBIO Encoded v2.0", *(format_kb(r.pbio_v2) for r in rows)],
                ["Unencoded v1.0", *(format_kb(r.unencoded_v1) for r in rows)],
                ["XML v2.0", *(format_kb(r.xml_v2) for r in rows)],
                ["XML v1.0", *(format_kb(r.xml_v1) for r in rows)],
            ],
        )
    )
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2)
        print(f"\nwrote JSON results to {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
