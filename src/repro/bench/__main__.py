"""Print every evaluation artifact (Figures 8-10, Table 1) as text.

Usage::

    python -m repro.bench                  # figure sizes up to 1 MB
    python -m repro.bench --quick          # up to 10 KB (CI-friendly)
    python -m repro.bench --json out.json  # machine-readable BENCH_* results
    python -m repro.bench --obs            # attach the observability
                                           # registry: per-stage breakdown
                                           # (decode vs transform vs codegen)
                                           # per figure, printed and included
                                           # in the JSON

The ``--json`` document carries one ``BENCH_fig8`` / ``BENCH_fig9`` /
``BENCH_fig10`` record per figure — ``{figure, workloads: [{label,
unencoded_bytes, timings}], stages?}`` — so later perf PRs can diff
per-stage numbers instead of end-to-end wall time.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from repro import obs
from repro.bench.figures import (
    ComparisonRow,
    fig8_encoding,
    fig9_decoding,
    fig10_morphing,
    table1_sizes,
)
from repro.bench.reporting import format_kb, format_ms, format_table
from repro.bench.workloads import FIGURE_SIZES
from repro.obs.metrics import Histogram


def _rows_record(figure: str, rows: "List[ComparisonRow]") -> Dict[str, Any]:
    """One BENCH_fig* JSON record (sans stage breakdown)."""
    return {
        "figure": figure,
        "workloads": [
            {
                "label": row.label,
                "unencoded_bytes": row.unencoded_bytes,
                "timings": {
                    "pbio_seconds": row.pbio.best,
                    "pbio_mean_seconds": row.pbio.mean,
                    "xml_seconds": row.xml.best,
                    "xml_mean_seconds": row.xml.mean,
                    "ratio": row.ratio,
                },
            }
            for row in rows
        ],
    }


def _stage_breakdown(registry: "obs.Registry") -> Dict[str, Any]:
    """Compact per-stage summary of one figure's run: every ``*.seconds``
    histogram (where the time went) plus every counter (how much work)."""
    timings: Dict[str, Any] = {}
    distributions: Dict[str, Any] = {}
    counters: Dict[str, int] = {}
    for instrument in registry.instruments():
        key = instrument.name + instrument.label_suffix()
        if isinstance(instrument, Histogram):
            if not instrument.count:
                continue
            entry = {
                "count": instrument.count,
                "total": instrument.sum,
                "mean": instrument.mean,
                "p50": instrument.p50,
                "p95": instrument.p95,
                "p99": instrument.p99,
            }
            if instrument.name.endswith(".seconds"):
                timings[key] = {
                    "count": entry["count"],
                    "total_seconds": entry["total"],
                    "mean_seconds": entry["mean"],
                    "p50_seconds": entry["p50"],
                    "p95_seconds": entry["p95"],
                    "p99_seconds": entry["p99"],
                }
            else:
                distributions[key] = entry
        elif instrument.kind == "counter" and instrument.value:
            counters[key] = instrument.value
    return {"timings": timings, "distributions": distributions,
            "counters": counters}


def _print_stage_table(stages: Dict[str, Any]) -> None:
    timings = stages["timings"]
    if timings:
        print("\n-- stage breakdown (obs) --")
        print(
            format_table(
                ["stage", "count", "total(ms)", "mean(ms)", "p95(ms)"],
                [
                    (
                        name,
                        entry["count"],
                        format_ms(entry["total_seconds"]),
                        format_ms(entry["mean_seconds"]),
                        format_ms(entry["p95_seconds"]),
                    )
                    for name, entry in sorted(timings.items())
                ],
            )
        )


def main(argv: "Optional[List[str]]" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--quick" in args:
        sizes = {k: v for k, v in FIGURE_SIZES.items() if v <= 10_000}
        table_kb = [0.1, 1.0, 10.0]
    else:
        sizes = dict(FIGURE_SIZES)
        table_kb = [0.1, 1.0, 10.0, 100.0, 1000.0]
    json_path = None
    if "--json" in args:
        index = args.index("--json")
        if index + 1 >= len(args):
            print("error: --json requires a file path", file=sys.stderr)
            return 2
        json_path = args[index + 1]
    obs_mode = "--obs" in args
    registry: "Optional[obs.Registry]" = None
    if obs_mode:
        registry = obs.Registry()
        obs.enable(registry=registry)

    payload: Dict[str, Any] = {
        "schema": "repro-bench/v1",
        "quick": "--quick" in args,
        "obs": obs_mode,
    }

    def comparison(key: str, figure: str, title: str, rows) -> None:
        print(f"\n== {title} ==")
        print(
            format_table(
                ["size", "unencoded(B)", "PBIO(ms)", "XML(ms)", "XML/PBIO"],
                [
                    (
                        r.label,
                        r.unencoded_bytes,
                        format_ms(r.pbio.best),
                        format_ms(r.xml.best),
                        f"{r.ratio:.1f}x",
                    )
                    for r in rows
                ],
            )
        )
        record = _rows_record(figure, rows)
        if obs_mode and registry is not None:
            record["stages"] = _stage_breakdown(registry)
            _print_stage_table(record["stages"])
        payload[key] = record

    figures = [
        ("BENCH_fig8", "fig8_encoding", "Figure 8: encoding cost",
         fig8_encoding),
        ("BENCH_fig9", "fig9_decoding", "Figure 9: decoding cost (no evolution)",
         fig9_decoding),
        ("BENCH_fig10", "fig10_morphing",
         "Figure 10: decoding cost with evolution (morphing vs XSLT)",
         fig10_morphing),
    ]
    for key, figure, title, fn in figures:
        if obs_mode and registry is not None:
            registry.reset()  # isolate each figure's stage numbers
            obs.get_tracer().clear()
        comparison(key, figure, title, fn(sizes))

    print("\n== Table 1: ChannelOpenResponse message size (KB) ==")
    rows = table1_sizes(table_kb)
    payload["BENCH_table1"] = {
        "figure": "table1_sizes",
        "workloads": [
            {
                "label": f"{r.target_kb:g}KB",
                "sizes_bytes": {
                    "unencoded_v2": r.unencoded_v2,
                    "pbio_v2": r.pbio_v2,
                    "unencoded_v1": r.unencoded_v1,
                    "xml_v2": r.xml_v2,
                    "xml_v1": r.xml_v1,
                },
            }
            for r in rows
        ],
    }
    print(
        format_table(
            ["", *(format_kb(int(r.target_kb * 1000)) for r in rows)],
            [
                ["Unencoded v2.0", *(format_kb(r.unencoded_v2) for r in rows)],
                ["PBIO Encoded v2.0", *(format_kb(r.pbio_v2) for r in rows)],
                ["Unencoded v1.0", *(format_kb(r.unencoded_v1) for r in rows)],
                ["XML v2.0", *(format_kb(r.xml_v2) for r in rows)],
                ["XML v1.0", *(format_kb(r.xml_v1) for r in rows)],
            ],
        )
    )
    if obs_mode:
        obs.disable(reset=True)
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote JSON results to {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
