"""Fabric benches: multi-worker scaling over real sockets, plus a
deterministic churn/migration record on the simulated transport.

The scaling bench answers the subsystem's headline question — does
sharding the morph-at-owner work across N worker *processes* buy N
cores of aggregate morphing capacity?  Wall-clock throughput cannot
show that on a CI box where every process shares one or two cores, so
the bench measures **CPU capacity**: each worker process reports its
own busy time via :func:`time.process_time`, and

    aggregate capacity = delivered messages / max(worker CPU seconds)

The max (not the sum) is the honest denominator: with per-channel
morph work spread over N workers, the busiest worker's CPU seconds is
what one core must spend per wall second at saturation, so capacity
scales with the fleet exactly when the shard assignment balances.

Raw CPU seconds drift with host speed (frequency scaling, noisy
neighbors) — and not proportionally, since worker time mixes
interpreter work with kernel/socket work.  Each row is therefore
normalized into ``cpu_units`` (busiest-worker CPU seconds over a codec
calibration loop bracketing the row), and what the regression gate
tracks is the **intra-run scaling cost**: a fleet's ``cpu_units``
relative to the same run's 1-worker row.  Both sides share the host
regime, so machine drift cancels exactly while a genuine loss of
horizontal scaling still shows.  (Per-message morph-path regressions
are gated by figures 8-10 and the fusion ablation.)

The churn bench replays a seeded join/leave schedule on the simulated
transport while a lossy morph chain publishes — the same scenario the
churn tests assert on — and records migration metrics (handoffs,
forwarded messages, duplicates suppressed).  Virtual-clock
deterministic, so it ships under a ``metrics`` payload that the
wall-time gate ignores.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    register_protocol,
)
from repro.fabric.client import FabricClient
from repro.fabric.hashing import DEFAULT_NUM_SHARDS, HashRing, shard_of
from repro.fabric.membership import EventFabric, FabricDirectory, RemoteWorker
from repro.fabric.worker import FabricWorker
from repro.net.link import LinkSpec
from repro.net.socket import SocketNetwork
from repro.net.transport import Network
from repro.pbio.record import Record
from repro.pbio.registry import FormatRegistry


def _make_registry() -> FormatRegistry:
    registry = FormatRegistry()
    register_protocol(registry, "2.0")
    return registry


def _bench_record(channel_id: str, members: int = 8) -> Record:
    """A ChannelOpenResponse v2.0 with enough members that the
    V2 -> V0 morph chain does real per-message work."""
    return RESPONSE_V2.make_record(
        channel_id=channel_id,
        member_count=members,
        member_list=[
            {
                "info": f"member-{i}",
                "ID": i + 1,
                "is_Source": i == 0,
                "is_Sink": i != 0,
            }
            for i in range(members)
        ],
    )


def calibration_seconds(
    iterations: int = 400,
    attempts: int = 3,
    clock=time.process_time,
) -> float:
    """Best-of-*attempts* time of a fixed encode/decode workload — the
    machine-speed yardstick normalized timings divide by.  The default
    CPU clock pairs with ``fabric_cpu_units``; pass
    ``clock=time.perf_counter`` to calibrate wall-time figures."""
    from repro.pbio.context import PBIOContext

    registry = _make_registry()
    ctx = PBIOContext(registry)
    record = _bench_record("calibration")
    wire = ctx.encode(RESPONSE_V2, record)
    best = float("inf")
    for _attempt in range(attempts):
        start = clock()
        for _ in range(iterations):
            ctx.encode(RESPONSE_V2, record)
            ctx.decode_as(RESPONSE_V2, wire)
        best = min(best, clock() - start)
    return best


def balanced_channels(
    fleet: Sequence[str], per_worker: int,
    num_shards: int = DEFAULT_NUM_SHARDS,
) -> List[str]:
    """Pick channel ids such that every fleet member owns exactly
    *per_worker* of them under the rendezvous assignment — the bench
    controls its workload, so it removes channel-placement luck from
    the scaling measurement."""
    ring = HashRing()
    for address in fleet:
        ring.add(address)
    assignment = ring.assign(num_shards)
    wanted = {address: per_worker for address in fleet}
    channels: List[str] = []
    candidate = 0
    while any(wanted.values()):
        channel_id = f"bench/{candidate}"
        candidate += 1
        owner = assignment[shard_of(channel_id, num_shards)]
        if wanted[owner]:
            wanted[owner] -= 1
            channels.append(channel_id)
    return channels


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _fabric_worker_main(
    conn: Any, address: str, fleet: Sequence[str], num_shards: int
) -> None:
    """Child-process body: host one FabricWorker on its own UDP socket
    and its own directory replica (stubs for the rest of the fleet),
    serve until the parent says stop, report CPU busy seconds."""
    try:
        net = SocketNetwork()
        directory = FabricDirectory(num_shards=num_shards)
        worker = FabricWorker(
            directory, net, address, registry=_make_registry()
        )
        directory.bootstrap(
            [
                worker if member == address else RemoteWorker(member)
                for member in fleet
            ]
        )
        conn.send(("bind", address, net.node(address).port))
        peers: Dict[str, Tuple[str, int]] = conn.recv()
        for peer, (host, port) in peers.items():
            if peer != address:
                net.register_peer(peer, host, port)
        conn.send(("ready", address))
        cpu_start = time.process_time()
        while not conn.poll():
            net.run_for(0.02)
        conn.recv()  # consume the stop token
        cpu_seconds = time.process_time() - cpu_start
        conn.send(
            (
                "stats",
                {
                    "address": address,
                    "processed": worker.processed,
                    "deliveries": worker.deliveries,
                    "duplicates": worker.duplicates,
                    "errors": worker.errors,
                    "cpu_seconds": cpu_seconds,
                },
            )
        )
        net.close()
    except BaseException:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


def _recv_ok(conn: Any) -> Tuple[Any, ...]:
    message = conn.recv()
    if message[0] == "error":
        raise RuntimeError(f"fabric bench worker failed:\n{message[1]}")
    return message


# ----------------------------------------------------------------------
# Scaling bench (parent process)
# ----------------------------------------------------------------------


@dataclass
class FabricScalingRow:
    """One fleet size of the scaling bench."""

    workers: int
    messages: int
    delivered: int
    wall_seconds: float
    #: same-run calibration yardstick (see :func:`calibration_seconds`)
    calibration: float = 1.0
    worker_cpu_seconds: Dict[str, float] = field(default_factory=dict)
    worker_processed: Dict[str, int] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.workers}w"

    @property
    def max_cpu_seconds(self) -> float:
        return max(self.worker_cpu_seconds.values())

    @property
    def cpu_units(self) -> float:
        """Machine-speed-normalized cost: busiest worker's CPU seconds
        per calibration second — the gated timing."""
        return self.max_cpu_seconds / self.calibration

    @property
    def capacity(self) -> float:
        """Aggregate capacity: messages morphable per busiest-core
        CPU second."""
        return self.delivered / self.max_cpu_seconds


def _scaling_row(
    workers: int,
    messages: int,
    channels_per_worker: int,
    num_shards: int,
    window: int,
    drain_timeout: float,
) -> FabricScalingRow:
    fleet = [f"w{i}" for i in range(1, workers + 1)]
    channels = balanced_channels(fleet, channels_per_worker, num_shards)
    ctx = multiprocessing.get_context("fork")
    conns = []
    procs = []
    # Children fork before the parent creates its asyncio loop — each
    # process must own a fresh loop.
    for address in fleet:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_fabric_worker_main,
            args=(child_conn, address, fleet, num_shards),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)
    try:
        ports: Dict[str, int] = {}
        for conn in conns:
            _, address, port = _recv_ok(conn)
            ports[address] = port

        net = SocketNetwork()
        try:
            directory = FabricDirectory(num_shards=num_shards)
            directory.bootstrap([RemoteWorker(member) for member in fleet])
            registry = _make_registry()
            pub = FabricClient(directory, net, "pub", registry=registry)
            sub = FabricClient(directory, net, "sub", registry=registry)
            book = {
                address: (net.host, port) for address, port in ports.items()
            }
            book["pub"] = (net.host, net.node("pub").port)
            book["sub"] = (net.host, net.node("sub").port)
            for conn in conns:
                conn.send(book)
            for conn in conns:
                _recv_ok(conn)
            for address, (host, port) in book.items():
                if address in fleet:
                    net.register_peer(address, host, port)

            for channel_id in channels:
                sub.subscribe(
                    channel_id, RESPONSE_V0, lambda c, p, s, r: None
                )
            net.run_for(0.1)  # let subscriptions install fleet-wide

            event = _bench_record("bench")
            wall_start = time.perf_counter()
            for i in range(messages):
                pub.publish(channels[i % len(channels)], RESPONSE_V2, event)
                while pub.published - sub.delivered > window:
                    net.run_for(0.002)
            deadline = time.perf_counter() + drain_timeout
            while (
                sub.delivered < messages
                and time.perf_counter() < deadline
            ):
                net.run_for(0.02)
            wall_seconds = time.perf_counter() - wall_start

            row = FabricScalingRow(
                workers=workers,
                messages=messages,
                delivered=sub.delivered,
                wall_seconds=wall_seconds,
            )
            for conn in conns:
                conn.send("stop")
            for conn in conns:
                _, stats = _recv_ok(conn)
                row.worker_cpu_seconds[stats["address"]] = stats[
                    "cpu_seconds"
                ]
                row.worker_processed[stats["address"]] = stats["processed"]
            return row
        finally:
            net.close()
    finally:
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hang containment
                proc.terminate()
                proc.join(timeout=5)


def bench_fabric_scaling(
    worker_counts: Sequence[int] = (1, 2, 4),
    messages: int = 1920,
    channels_per_worker: int = 4,
    num_shards: int = DEFAULT_NUM_SHARDS,
    window: int = 64,
    drain_timeout: float = 30.0,
    repeats: int = 2,
) -> List[FabricScalingRow]:
    """Run the multiprocess socket-transport scaling bench: the same
    publish workload against 1, 2, ... worker processes; every row's
    messages are spread round-robin over ownership-balanced channels.

    Each worker count runs ``repeats`` times and keeps the best
    (lowest ``cpu_units``) row — the same best-of-K convention the
    single-process figures use.  The :func:`calibration_seconds`
    yardstick is re-measured immediately before and after every row
    (min of the two) so a host-speed shift mid-bench cannot skew the
    normalized cost.
    """
    rows: List[FabricScalingRow] = []
    calibration = calibration_seconds()
    for workers in worker_counts:
        best: FabricScalingRow | None = None
        for _repeat in range(max(1, repeats)):
            row = _scaling_row(
                workers, messages, channels_per_worker, num_shards,
                window, drain_timeout,
            )
            after = calibration_seconds()
            row.calibration = min(calibration, after)
            calibration = after
            if best is None or row.cpu_units < best.cpu_units:
                best = row
        rows.append(best)
    return rows


# ----------------------------------------------------------------------
# Churn / migration bench (simulated transport — deterministic)
# ----------------------------------------------------------------------


@dataclass
class FabricChurnResult:
    """Seeded churn scenario outcome (virtual-clock deterministic)."""

    published: int
    delivered_v1: int
    delivered_v0: int
    duplicates: int
    handoffs: int
    forwarded: int
    redirects: int
    epochs: int
    workers_joined: int
    workers_left: int

    @property
    def exactly_once(self) -> bool:
        return (
            self.delivered_v1 == self.published
            and self.delivered_v0 == self.published
            and self.duplicates == 0
        )


def bench_fabric_churn(
    rounds: int = 6, publishes_per_round: int = 5, seed: int = 11
) -> FabricChurnResult:
    """Seeded join/leave schedule under a 15%-lossy V2 -> V1/V0 morph
    chain on the simulated transport; reports what migration cost and
    proves the exactly-once invariant held."""
    import random

    net = Network(
        seed=seed,
        default_link=LinkSpec(latency=0.002, loss_rate=0.15, jitter=0.5),
    )
    fabric = EventFabric(net, registry=_make_registry(), reliable=True)
    fabric.add_worker("w1")
    fabric.add_worker("w2")
    workers = {
        "w1": fabric.directory.worker("w1"),
        "w2": fabric.directory.worker("w2"),
    }
    active = ["w1", "w2"]
    joined = 2
    left = 0
    pub = fabric.client("pub")
    sub1 = fabric.client("sub-v1")
    sub0 = fabric.client("sub-v0")
    channels = [f"churn/{i}" for i in range(4)]
    for channel_id in channels:
        sub1.subscribe(channel_id, RESPONSE_V1, lambda c, p, s, r: None)
        sub0.subscribe(channel_id, RESPONSE_V0, lambda c, p, s, r: None)
    net.run()

    rng = random.Random(seed * 1_000_003 + 17)
    next_worker = 3
    for _round in range(rounds):
        for _ in range(publishes_per_round):
            channel_id = rng.choice(channels)
            pub.publish(channel_id, RESPONSE_V2, _bench_record(channel_id))
        net.run(max_time=net.now + 0.05)
        if len(active) <= 2 or rng.random() < 0.5:
            address = f"w{next_worker}"
            next_worker += 1
            workers[address] = fabric.add_worker(address)
            active.append(address)
            joined += 1
        else:
            address = rng.choice(active)
            fabric.remove_worker(address)
            active.remove(address)
            left += 1
        net.run(max_time=net.now + 0.05)
    net.run()

    fleet = list(workers.values())
    return FabricChurnResult(
        published=pub.published,
        delivered_v1=sub1.delivered,
        delivered_v0=sub0.delivered,
        duplicates=sub1.duplicates + sub0.duplicates,
        handoffs=sum(w.handoffs_sent for w in fleet),
        forwarded=sum(w.forwarded for w in fleet),
        redirects=sum(w.redirects_sent for w in fleet),
        epochs=fabric.directory.epoch,
        workers_joined=joined,
        workers_left=left,
    )


# ----------------------------------------------------------------------
# Crash recovery bench (simulated transport — deterministic)
# ----------------------------------------------------------------------


@dataclass
class FabricRecoveryRow:
    """One (crash timing, journaling arm) outcome of the recovery bench.

    Virtual-clock deterministic for a seed; the row's two headline
    numbers are the **unavailability window** (virtual seconds from the
    kill until every shard is owned by a live worker again) and the
    **events lost** across the outage.  ``tail_duplicates`` counts
    journal-tail re-deliveries the subscriber's ledger suppressed — the
    explicitly-counted duplicate budget of the recovery contract."""

    crash_fraction: float
    journaled: bool
    published: int
    delivered: int
    lost: int
    tail_duplicates: int
    replayed: int
    unavailability_seconds: float

    @property
    def label(self) -> str:
        arm = "journal" if self.journaled else "no-journal"
        return f"crash@{int(self.crash_fraction * 100)}%/{arm}"

    @property
    def exactly_once(self) -> bool:
        return self.lost == 0 and self.delivered == self.published


def _recovery_noop() -> None:
    """Clock pacer for the recovery pump (see check_crash_chaos)."""


def _recovery_row(
    crash_fraction: float, journaled: bool, messages: int, seed: int
) -> FabricRecoveryRow:
    from repro.fabric.journal import JournalStore

    net = Network(
        seed=seed,
        # Jitter is absolute seconds and must stay well under the
        # reliable base timeout, or retransmissions race the first copy.
        default_link=LinkSpec(latency=0.002, loss_rate=0.05, jitter=0.005),
    )
    reliable_options = {"base_timeout": 0.02, "max_retries": 5}
    fabric = EventFabric(
        net,
        registry=_make_registry(),
        reliable=True,
        journal=JournalStore() if journaled else None,
        lease_timeout=0.6,
    )
    workers = {
        address: fabric.add_worker(
            address, reliable_options=dict(reliable_options)
        )
        for address in ("w1", "w2", "w3")
    }
    pub = fabric.client("pub", reliable_options=dict(reliable_options))
    sub = fabric.client("sub", reliable_options=dict(reliable_options))
    channels = [f"recovery/{i}" for i in range(4)]
    delivered_ids: List[str] = []
    for channel_id in channels:
        sub.subscribe(
            channel_id, RESPONSE_V0,
            lambda c, p, s, r: delivered_ids.append(r["channel_id"]),
        )

    def pump(steps: int, step: float = 0.05) -> None:
        # Heartbeats are driven here, not by recurring timers, so the
        # simulated network can still fully quiesce at the end.
        for _ in range(steps):
            for worker in workers.values():
                worker.heartbeat()
            fabric.directory.check_leases()
            net.call_later(step, _recovery_noop)
            net.run(max_time=net.now + step)

    sent = 0

    def publish(count: int) -> None:
        nonlocal sent
        for _ in range(count):
            channel_id = channels[sent % len(channels)]
            # The event id rides in the channel_id field, which every
            # version of the morph chain preserves — unique delivery is
            # countable at the V0 sink.
            pub.publish(channel_id, RESPONSE_V2,
                        _bench_record(f"evt-{sent}", members=4))
            sent += 1

    pump(4)  # let subscriptions install fleet-wide
    victim_address = fabric.directory.owner(channels[0])
    victim = workers[victim_address]
    crash_point = max(1, min(messages - 1, int(messages * crash_fraction)))

    publish(crash_point)             # pre-crash traffic
    pump(2)                          # partial drain: leave in-flight work
    crash_time = net.now
    fabric.crash_worker(victim_address)
    publish(messages - crash_point)  # outage traffic (client redrive path)

    recovered_at = None
    for _ in range(40):              # past the lease deadline + recovery
        pump(1)
        if victim_address in fabric.directory.workers:
            continue
        assignment = fabric.directory.assignment
        if all(
            owner != victim_address
            and shard in workers[owner].owned_shards()
            for shard, owner in assignment.items()
        ):
            recovered_at = net.now
            break
    unavailability = (
        (recovered_at if recovered_at is not None else net.now) - crash_time
    )

    pump(4)
    victim.restart()
    if victim_address not in fabric.directory.workers:
        fabric.directory.join(victim)
    pump(10)                         # rejoin handoffs + buffered redrives
    net.run()                        # full drain

    unique = len(set(delivered_ids))
    return FabricRecoveryRow(
        crash_fraction=crash_fraction,
        journaled=journaled,
        published=sent,
        delivered=unique,
        lost=sent - unique,
        tail_duplicates=sub.duplicates + (len(delivered_ids) - unique),
        replayed=sum(w.tail_replayed for w in workers.values()),
        unavailability_seconds=unavailability,
    )


def bench_fabric_recovery(
    messages: int = 40,
    crash_fractions: Sequence[float] = (0.25, 0.5, 0.75),
    seed: int = 7,
) -> List[FabricRecoveryRow]:
    """SIGKILL the owner of a hot shard partway through a seeded stream
    and measure what recovery costs, with journaling on (the tentpole
    path: lease expiry, fenced journal recovery at the successor,
    client-side redrive) versus off (the ablation control arm).

    One row per (crash timing, arm): the journaled arm must deliver the
    whole stream exactly once regardless of when the kill lands, while
    the ablation arm's loss grows as the crash moves earlier — that A/B
    difference *is* what the journal buys.  Virtual-clock deterministic,
    so it ships under a ``metrics`` payload the wall-time gate ignores.
    """
    rows: List[FabricRecoveryRow] = []
    for crash_fraction in crash_fractions:
        for journaled in (True, False):
            rows.append(
                _recovery_row(crash_fraction, journaled, messages, seed)
            )
    return rows
