"""Evaluation workloads.

Generators for the ``ChannelOpenResponse`` messages the paper's Section 5
measures: "five different sizes (obtained by varying the size of
member_list)" with the *unencoded* (packed C struct) size of the v2.0
record as the x-axis — 100 B, 1 KB, 10 KB, 100 KB and 1 MB for the
figures, up to 10 MB for Table 1.

Also hosts the XSL stylesheet implementing the v2.0 → v1.0 rollback used
by the XML/XSLT arm of Figure 10 (the exact counterpart of the ECode in
paper Figure 5).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2
from repro.pbio.encode import native_size
from repro.pbio.record import Record

#: Figure sizes: label -> target unencoded bytes of the v2.0 record.
FIGURE_SIZES: Dict[str, int] = {
    "100B": 100,
    "1KB": 1_000,
    "10KB": 10_000,
    "100KB": 100_000,
    "1MB": 1_000_000,
}

#: Table 1 columns (KB of unencoded v2.0 data).  The paper runs to 10 MB;
#: the 10 MB point sits behind the benchmarks' ``full`` profile.
TABLE1_SIZES_KB: Tuple[float, ...] = (0.1, 1.0, 10.0, 100.0, 1000.0)
TABLE1_SIZES_KB_FULL: Tuple[float, ...] = TABLE1_SIZES_KB + (10_000.0,)


def make_member(index: int) -> Record:
    """Deterministic v2.0 member entry.  Roughly 2/3 of members are
    sources and 1/2 are sinks, so the v1.0 rollback really does blow the
    message up by about 3x (Table 1's "increases by three times")."""
    return Record(
        info=f"host-{index:06d}.cc.gatech.edu:{9000 + index % 1000}",
        ID=index + 1,
        is_Source=index % 3 != 2,
        is_Sink=index % 2 == 0,
    )


#: Unencoded bytes of one member entry (strings NUL-terminated, ints 4,
#: booleans 1) — computed, not hardcoded, so format edits do not skew
#: the generator.
_MEMBER_BYTES = native_size(
    RESPONSE_V2,
    Record(channel_id="", member_count=1, member_list=[make_member(0)]),
) - native_size(RESPONSE_V2, Record(channel_id="", member_count=0, member_list=[]))

_CHANNEL_ID = "telemetry"


def response_v2(member_count: int) -> Record:
    """A v2.0 ChannelOpenResponse with *member_count* members."""
    return Record(
        channel_id=_CHANNEL_ID,
        member_count=member_count,
        member_list=[make_member(i) for i in range(member_count)],
    )


def members_for_size(target_bytes: int) -> int:
    """Member count whose v2.0 record has unencoded size closest to (and
    at least one member below) *target_bytes*."""
    base = native_size(
        RESPONSE_V2, Record(channel_id=_CHANNEL_ID, member_count=0, member_list=[])
    )
    return max(1, (target_bytes - base) // _MEMBER_BYTES)


def response_v2_of_size(target_bytes: int) -> Record:
    """A v2.0 response whose unencoded size approximates *target_bytes*."""
    return response_v2(members_for_size(target_bytes))


def response_v1_from_v2(record: Record) -> Record:
    """Reference (plain Python) rollback v2.0 -> v1.0; used to produce
    v1.0 workload records and to check transform outputs in tests."""
    members = record["member_list"]
    sources = [m for m in members if m["is_Source"]]
    sinks = [m for m in members if m["is_Sink"]]
    strip = lambda m: Record(info=m["info"], ID=m["ID"])  # noqa: E731
    return Record(
        channel_id=record["channel_id"],
        member_count=len(members),
        member_list=[strip(m) for m in members],
        src_count=len(sources),
        src_list=[strip(m) for m in sources],
        sink_count=len(sinks),
        sink_list=[strip(m) for m in sinks],
    )


def figure_workloads() -> List[Tuple[str, int, Record]]:
    """(label, unencoded_bytes, v2.0 record) for each figure size."""
    out = []
    for label, target in FIGURE_SIZES.items():
        record = response_v2_of_size(target)
        out.append((label, native_size(RESPONSE_V2, record), record))
    return out


# ---------------------------------------------------------------------------
# The XSLT arm of the comparison
# ---------------------------------------------------------------------------

#: XSL stylesheet rolling a v2.0 response back to v1.0 — the XML/XSLT
#: counterpart of the paper's Figure 5 ECode.
V2_TO_V1_STYLESHEET = """\
<?xml version="1.0"?>
<xsl:stylesheet version="1.0">
  <xsl:template match="ChannelOpenResponse">
    <ChannelOpenResponse version="1.0">
      <channel_id><xsl:value-of select="channel_id"/></channel_id>
      <member_count><xsl:value-of select="member_count"/></member_count>
      <xsl:for-each select="member_list">
        <member_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </member_list>
      </xsl:for-each>
      <src_count><xsl:value-of select="count(member_list[is_Source='1'])"/></src_count>
      <xsl:for-each select="member_list[is_Source='1']">
        <src_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </src_list>
      </xsl:for-each>
      <sink_count><xsl:value-of select="count(member_list[is_Sink='1'])"/></sink_count>
      <xsl:for-each select="member_list[is_Sink='1']">
        <sink_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </sink_list>
      </xsl:for-each>
    </ChannelOpenResponse>
  </xsl:template>
</xsl:stylesheet>
"""

__all__ = [
    "FIGURE_SIZES",
    "TABLE1_SIZES_KB",
    "TABLE1_SIZES_KB_FULL",
    "V2_TO_V1_STYLESHEET",
    "figure_workloads",
    "make_member",
    "members_for_size",
    "response_v1_from_v2",
    "response_v2",
    "response_v2_of_size",
    "RESPONSE_V1",
    "RESPONSE_V2",
]
