"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table (right-aligned numeric columns)."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_ms(seconds: float) -> str:
    """Milliseconds with sensible precision across 5 decades."""
    ms = seconds * 1e3
    if ms >= 100:
        return f"{ms:.0f}"
    if ms >= 1:
        return f"{ms:.2f}"
    return f"{ms:.4f}"


def format_kb(size_bytes: int) -> str:
    kb = size_bytes / 1000
    if kb >= 100:
        return f"{kb:.0f}"
    if kb >= 1:
        return f"{kb:.1f}"
    return f"{kb:.2f}"
