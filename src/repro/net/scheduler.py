"""Scheduler/clock abstraction shared by every transport.

The simulated :class:`~repro.net.transport.Network` and the real-socket
:class:`~repro.net.socket.SocketNetwork` expose the same timer contract
— ``now`` / ``call_at`` / ``call_later`` returning cancellable
:class:`Timer` handles — so everything layered above them (the reliable
endpoint's retransmission schedule, the format-resolver's request
timeouts, the fabric's handoff drains) runs unchanged on either
substrate.  This module holds that contract (:class:`Scheduler`) plus
the discrete-event implementation the simulated transport is built on
(:class:`VirtualScheduler`): one heap ordering both timer firings and
message deliveries by ``(time, sequence)``, so retries and timeouts
interleave deterministically with traffic.

The real-socket transport implements the same protocol on an asyncio
loop clock instead; see :mod:`repro.net.socket`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Tuple

from repro.errors import TransportError

try:  # pragma: no cover - Protocol is 3.8+; keep the import defensive
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class Timer:
    """A cancellable callback scheduled on a transport's event queue
    (the substrate retransmission and request timeouts are built on).
    ``when`` is in the owning scheduler's clock domain — virtual seconds
    on the simulated network, loop seconds on the socket transport."""

    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback: Callable[[], None]) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"Timer(when={self.when:.6f}, {state})"


class Scheduler(Protocol):
    """The clock/timer contract every transport satisfies.

    Implementations: :class:`~repro.net.transport.Network` (virtual
    time, discrete events), :class:`~repro.net.socket.SocketNetwork`
    (asyncio loop time).  Consumers — :class:`ReliableEndpoint`,
    :class:`CachingFormatResolver`, the fabric workers — only ever use
    these three members, which is what makes them transport-portable.
    """

    now: float

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Schedule *callback* at clock time *when* (clamped to now);
        returns a cancellable handle."""
        ...  # pragma: no cover - protocol stub

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule *callback* after *delay* seconds (>= 0)."""
        ...  # pragma: no cover - protocol stub


class VirtualScheduler:
    """Discrete-event queue + virtual clock.

    Entries are ``(when, sequence, payload)`` where *payload* is either
    a :class:`Timer` or an opaque item the owning transport scheduled
    (the simulated network's message deliveries).  One shared sequence
    counter keeps the interleaving of timers and messages total-ordered
    and reproducible — exactly the behavior the pre-extraction
    ``Network`` event queue had.
    """

    __slots__ = ("now", "_queue", "_sequence")

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list = []
        self._sequence = itertools.count()

    # -- scheduling ----------------------------------------------------

    def schedule(self, when: float, payload: Any) -> None:
        """Enqueue an opaque *payload* (a message delivery) at *when*."""
        heapq.heappush(self._queue, (when, next(self._sequence), payload))

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        timer = Timer(max(when, self.now), callback)
        heapq.heappush(self._queue, (timer.when, next(self._sequence), timer))
        return timer

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise TransportError("timer delay must be >= 0")
        return self.call_at(self.now + delay, callback)

    # -- draining ------------------------------------------------------

    def peek_when(self) -> Optional[float]:
        """Timestamp of the next due entry, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def pop(self) -> Tuple[float, Any]:
        """Pop the next ``(when, payload)`` entry and advance the clock
        to it (the clock never runs backwards)."""
        when, _seq, payload = heapq.heappop(self._queue)
        self.now = max(self.now, when)
        return when, payload

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
