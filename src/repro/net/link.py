"""Link model — latency + bandwidth for the simulated network.

The paper's Table 1 discussion points out that message size "impacts
network transmission time, a significant factor in overall message
latency"; the link model lets examples and benchmarks quantify exactly
that for PBIO-encoded vs XML-encoded traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransportError


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link.

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth:
        Bytes per second; ``0`` means infinite (no serialization delay).
    loss_rate:
        Probability in ``[0, 1]`` that a message sent over this link is
        lost in flight (fault injection; drawn from the network's seeded
        RNG so runs stay deterministic).
    jitter:
        Maximum extra random delay in seconds added per message.  A
        non-zero jitter lets later messages overtake earlier ones —
        deterministic, seeded reordering.
    """

    latency: float = 0.0001  # 100 us, a LAN-ish default
    bandwidth: float = 125_000_000.0  # 1 Gbit/s in bytes/s
    loss_rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise TransportError("link latency must be >= 0")
        if self.bandwidth < 0:
            raise TransportError("link bandwidth must be >= 0")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise TransportError("link loss_rate must be in [0, 1]")
        if self.jitter < 0:
            raise TransportError("link jitter must be >= 0")

    def transmission_time(self, size: int) -> float:
        """Seconds to deliver a *size*-byte message over this link."""
        if size < 0:
            raise TransportError("message size must be >= 0")
        serialization = size / self.bandwidth if self.bandwidth else 0.0
        return self.latency + serialization


#: Handy presets used by examples and benchmarks.
GIGABIT_LAN = LinkSpec(latency=0.0001, bandwidth=125_000_000.0)
FAST_ETHERNET = LinkSpec(latency=0.0005, bandwidth=12_500_000.0)
WIRELESS_11MBPS = LinkSpec(latency=0.002, bandwidth=1_375_000.0)
WAN = LinkSpec(latency=0.040, bandwidth=1_250_000.0)
