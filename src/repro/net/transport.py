"""In-memory simulated transport.

A deterministic discrete-event network: nodes register under string
addresses, messages are scheduled onto a virtual-time event queue with
per-link latency/serialization delays, and :meth:`Network.run` drains the
queue delivering messages in timestamp order.  Handlers may send further
messages during delivery; those are scheduled and processed in the same
run.

This substitutes for the paper's real sockets: it gives the middleware
layers (ECho, B2B broker) an honest asynchronous message-passing
substrate with measurable per-message transmission times, while keeping
every test fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.scheduler import Timer, VirtualScheduler
from repro.obs import OBS
from repro.obs.tracectx import activate

MessageHandler = Callable[[str, bytes], None]

#: Reliable-layer frame prefix (mirrors :data:`repro.net.reliable.MAGIC`
#: without importing it — reliable sits *above* this module): a traced
#: PBIO message inside a data frame starts after the 13-byte RLP1 header.
_RELIABLE_MAGIC = b"RLP1"
_RELIABLE_HEADER_SIZE = 13


def _sniff_trace(data: bytes):
    """Best-effort trace-context sniff for a raw frame: a bare PBIO
    message, a BATCH1 frame (whose trace block covers every contained
    message), or either wrapped in a reliable-layer data frame."""
    from repro.net.batch import peek_batch_trace  # late: avoid init cycle
    from repro.pbio.buffer import peek_trace  # late: keep net below pbio

    offset = 0
    if bytes(data[:4]) == _RELIABLE_MAGIC:
        offset = _RELIABLE_HEADER_SIZE
    ctx = peek_batch_trace(data, offset)
    if ctx is not None:
        return ctx
    return peek_trace(data, offset)


@dataclass(frozen=True)
class Delivery:
    """One message outcome, as recorded in the network trace.  Messages
    arriving at a closed node are recorded with ``dropped=True`` instead
    of vanishing silently; deliveries whose handler raised are recorded
    with ``handler_error=True`` (the exception never unwinds out of
    :meth:`Network.run` — handler failures are an endpoint property, not
    a fabric property)."""

    time: float
    source: str
    destination: str
    size: int
    dropped: bool = False
    handler_error: bool = False


class Node:
    """One endpoint of the simulated network."""

    def __init__(self, network: "Network", address: str) -> None:
        self.network = network
        self.address = address
        self._handler: Optional[MessageHandler] = None
        self.received: List[Tuple[str, bytes]] = []
        self.closed = False
        #: messages this node dropped because it was closed
        self.drops = 0
        #: deliveries whose handler raised (contained by Network.run)
        self.handler_errors = 0

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the receive callback ``handler(source, data)``.  Without
        one, messages accumulate in :attr:`received` for polling."""
        self._handler = handler

    def send(self, destination: str, data: bytes) -> float:
        """Send *data* to *destination*; returns the scheduled delivery
        time (virtual seconds)."""
        return self.network.send(self.address, destination, data)

    def close(self) -> None:
        """Closed nodes drop incoming messages (failure injection).  Every
        drop is counted per node (:attr:`drops`), tallied on the network
        (:attr:`Network.dropped`), and recorded in the trace."""
        self.closed = True

    def reopen(self) -> None:
        """Undo :meth:`close` — the node receives again (recovery
        scenarios: a format server coming back after a crash)."""
        self.closed = False

    def _deliver(self, source: str, data: bytes) -> bool:
        """Deliver one message; returns False when it was dropped."""
        if self.closed:
            self.drops += 1
            self.network.dropped += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "net.transport.dropped", node=self.address
                ).inc()
            return False
        if self._handler is not None:
            self._handler(source, data)
        else:
            self.received.append((source, data))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.address!r})"


class Network:
    """The simulated network fabric.

    Parameters
    ----------
    default_link:
        Link used between node pairs with no explicit link configured.
    seed:
        Seed for the fault-injection RNG.  Links with non-zero
        ``loss_rate`` or ``jitter`` draw from this generator, so the same
        seed reproduces the same losses and reorderings exactly.
    """

    def __init__(
        self, default_link: Optional[LinkSpec] = None, seed: int = 0
    ) -> None:
        self.default_link = default_link if default_link is not None else LinkSpec()
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._scheduler = VirtualScheduler()
        self._rng = random.Random(seed)
        self.bytes_sent = 0
        self.messages_sent = 0
        self.dropped = 0
        #: messages lost in flight by link ``loss_rate`` fault injection
        self.lost = 0
        #: deliveries whose handler raised (contained, never re-raised)
        self.handler_errors = 0
        #: the most recent contained handler failure, for debugging:
        #: ``(destination, exception)`` or None
        self.last_handler_error: Optional[Tuple[str, BaseException]] = None
        self.trace: List[Delivery] = []

    @property
    def now(self) -> float:
        """Current virtual time (seconds) — the scheduler's clock."""
        return self._scheduler.now

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_node(self, address: str) -> Node:
        if address in self._nodes:
            raise TransportError(f"address {address!r} already in use")
        node = Node(self, address)
        self._nodes[address] = node
        return node

    def node(self, address: str) -> Node:
        try:
            return self._nodes[address]
        except KeyError:
            raise TransportError(f"no node at address {address!r}") from None

    def set_link(self, a: str, b: str, link: LinkSpec) -> None:
        """Configure the link between *a* and *b* (both directions)."""
        self._links[(a, b)] = link
        self._links[(b, a)] = link

    def link_between(self, a: str, b: str) -> LinkSpec:
        return self._links.get((a, b), self.default_link)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(self, source: str, destination: str, data: bytes) -> float:
        if destination not in self._nodes:
            raise TransportError(f"no node at address {destination!r}")
        link = self.link_between(source, destination)
        arrival = self.now + link.transmission_time(len(data))
        if link.jitter:
            arrival += self._rng.uniform(0.0, link.jitter)
        self.bytes_sent += len(data)
        self.messages_sent += 1
        if link.loss_rate and self._rng.random() < link.loss_rate:
            # Lost in flight: never enqueued, but counted and traced so
            # fault-injection harnesses can reconcile sends vs deliveries.
            self.lost += 1
            self.trace.append(
                Delivery(time=arrival, source=source, destination=destination,
                         size=len(data), dropped=True)
            )
            if OBS.enabled:
                OBS.metrics.counter(
                    "net.transport.lost", source=source, destination=destination
                ).inc()
            return arrival
        self._scheduler.schedule(arrival, (source, destination, data))
        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter(
                "net.transport.messages", source=source, destination=destination
            ).inc()
            metrics.counter(
                "net.transport.bytes", source=source, destination=destination
            ).inc(len(data))
            metrics.gauge("net.transport.queue_depth").set(len(self._scheduler))
        return arrival

    # ------------------------------------------------------------------
    # Timers (virtual-time callbacks on the same event queue)
    # ------------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Schedule *callback* to fire at virtual time *when* (clamped to
        now).  Timers share the event queue with messages, so retries and
        timeouts interleave deterministically with deliveries.  Returns a
        cancellable :class:`Timer` handle."""
        return self._scheduler.call_at(when, callback)

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule *callback* after *delay* virtual seconds."""
        return self._scheduler.call_later(delay, callback)

    def run(self, max_time: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Deliver queued messages (and fire due timers) in timestamp
        order until the queue is empty (or *max_time* / *max_events* is
        hit).  Returns the number of message deliveries performed.

        Handler-failure semantics: an exception escaping a node's handler
        is **contained** — counted on the node and the network, recorded
        in the trace as ``handler_error=True``, surfaced to ``repro.obs``
        as ``net.transport.handler_errors`` — and never propagates out of
        ``run``.  A crashing receiver is an endpoint failure, not a
        fabric failure; subsequent traffic keeps flowing.
        """
        delivered = 0
        events = 0
        while self._scheduler:
            arrival = self._scheduler.peek_when()
            if max_time is not None and arrival > max_time:
                break
            if events >= max_events:
                raise TransportError(
                    f"network did not quiesce within {max_events} events "
                    "(possible message loop)"
                )
            _when, payload = self._scheduler.pop()
            events += 1
            if isinstance(payload, Timer):
                if not payload.cancelled:
                    payload.callback()
                continue
            source, destination, data = payload
            node = self._nodes[destination]
            dropped = node.closed
            handler_error = False
            try:
                if OBS.enabled:
                    # every physical delivery of a traced message becomes
                    # a child span of that message's trace — including
                    # each retransmission of the same payload
                    with activate(_sniff_trace(data)), OBS.tracer.span(
                        "net.deliver",
                        source=source,
                        destination=destination,
                        process=destination,
                        size=len(data),
                        vtime=self.now,
                    ):
                        node._deliver(source, data)
                else:
                    node._deliver(source, data)
            except Exception as exc:  # noqa: BLE001 - defined containment
                handler_error = True
                node.handler_errors += 1
                self.handler_errors += 1
                self.last_handler_error = (destination, exc)
                if OBS.enabled:
                    OBS.metrics.counter(
                        "net.transport.handler_errors", node=destination
                    ).inc()
            self.trace.append(
                Delivery(time=self.now, source=source, destination=destination,
                         size=len(data), dropped=dropped,
                         handler_error=handler_error)
            )
            delivered += 1
            if OBS.enabled:
                OBS.metrics.gauge("net.transport.queue_depth").set(
                    len(self._scheduler)
                )
        return delivered

    @property
    def pending(self) -> int:
        return len(self._scheduler)

    def drops_by_node(self) -> Dict[str, int]:
        """Per-node drop counts (only nodes that dropped something)."""
        return {
            address: node.drops
            for address, node in self._nodes.items()
            if node.drops
        }
