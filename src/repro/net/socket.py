"""Real-socket transport: asyncio UDP datagrams on loopback.

:class:`SocketNetwork` implements the same contract as the simulated
:class:`~repro.net.transport.Network` — ``add_node`` returning objects
with ``send``/``set_handler``/``close``, plus the
:class:`~repro.net.scheduler.Scheduler` timer protocol (``now`` /
``call_at`` / ``call_later``) — so every layer written against the
simulated fabric (reliable endpoints, format resolvers, ECho processes,
fabric workers) runs unchanged over real UDP sockets.  The differences
are the clock (the asyncio loop's monotonic clock instead of virtual
time) and :meth:`run` semantics (drive the loop until traffic and
timers quiesce, instead of draining a deterministic queue).

Fault injection carries over: ``LinkSpec.loss_rate``/``jitter`` are
applied *in user space* from a seeded RNG before the datagram reaches
the kernel, so the chaos scenarios the fuzz harness runs against the
simulated transport exercise the socket path with the same (seeded)
loss decisions.  ``latency``/``bandwidth`` are honored as real delays
on top of whatever the kernel adds; the default link applies none.

Each datagram is framed with the sender's string address (the simulated
transport passes the source out-of-band; a UDP socket cannot), so
handlers keep their ``(source, payload)`` signature.  Addresses resolve
through the local node table or through :meth:`register_peer` — the
static address book a multi-process deployment distributes at startup.
"""

from __future__ import annotations

import asyncio
import random
import socket as _socketmod
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.scheduler import Timer
from repro.net.transport import Delivery, MessageHandler, _sniff_trace
from repro.obs import OBS
from repro.obs.tracectx import activate

#: Source-address frame prefix: u16 length + utf-8 address bytes.
_SRC_LEN = struct.Struct(">H")

#: Default receive-buffer request per node socket; loopback bursts from
#: a fast sender overflow the kernel default long before the application
#: is slow (the bench's flow-control window assumes roughly this much).
RECV_BUFFER = 1 << 20


class SocketTimer(Timer):
    """A :class:`Timer` backed by an asyncio ``call_later`` handle."""

    __slots__ = ("_handle", "_network")

    def __init__(self, when: float, callback: Callable[[], None],
                 network: "SocketNetwork") -> None:
        super().__init__(when, callback)
        self._network = network
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        super().cancel()
        if self._handle is not None:
            self._handle.cancel()
        self._network._armed.discard(self)


class SocketNode:
    """One UDP endpoint; mirrors :class:`~repro.net.transport.Node`."""

    def __init__(self, network: "SocketNetwork", address: str) -> None:
        self.network = network
        self.address = address
        self._handler: Optional[MessageHandler] = None
        self.received: List[Tuple[str, bytes]] = []
        self.closed = False
        self.drops = 0
        self.handler_errors = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        #: the bound UDP port (loopback); the address book entry peers
        #: in other processes need to reach this node
        self.port: int = 0

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the receive callback ``handler(source, data)``.
        Without one, messages accumulate in :attr:`received`."""
        self._handler = handler

    def send(self, destination: str, data: bytes) -> float:
        return self.network.send(self.address, destination, data)

    def close(self) -> None:
        """Drop (and count) incoming datagrams — failure injection with
        the same semantics as the simulated node; the socket stays
        bound so :meth:`reopen` recovers without re-binding."""
        self.closed = True

    def reopen(self) -> None:
        self.closed = False

    def _deliver(self, source: str, data: bytes) -> bool:
        if self.closed:
            self.drops += 1
            self.network.dropped += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "net.transport.dropped", node=self.address
                ).inc()
            return False
        if self._handler is not None:
            self._handler(source, data)
        else:
            self.received.append((source, data))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SocketNode({self.address!r}, port={self.port})"


class _NodeProtocol(asyncio.DatagramProtocol):
    def __init__(self, network: "SocketNetwork", node: SocketNode) -> None:
        self.network = network
        self.node = node

    def datagram_received(self, frame: bytes, addr) -> None:
        self.network._on_datagram(self.node, frame)

    def error_received(self, exc) -> None:  # pragma: no cover - kernel path
        self.network.socket_errors += 1


class SocketNetwork:
    """UDP-on-loopback fabric with the simulated network's interface.

    Parameters
    ----------
    default_link:
        Fault model between node pairs with no explicit link: loss and
        jitter are injected in user space from the seeded RNG;
        latency/bandwidth become real scheduled delays.  The default
        LinkSpec-free link adds nothing — datagrams go straight to the
        kernel.
    seed:
        Fault-injection RNG seed, as on the simulated network.
    host:
        Interface to bind (loopback by default; binding a real
        interface is possible but none of the shipped tooling does).
    """

    def __init__(
        self,
        default_link: Optional[LinkSpec] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        record_trace: bool = True,
    ) -> None:
        # Distinct from the sim default: no modeled latency on top of a
        # real wire unless the caller asks for one.
        self.default_link = (
            default_link if default_link is not None
            else LinkSpec(latency=0.0, bandwidth=0.0)
        )
        self.host = host
        self.record_trace = record_trace
        self._rng = random.Random(seed)
        self._loop = asyncio.new_event_loop()
        self._t0 = self._loop.time()
        self._nodes: Dict[str, SocketNode] = {}
        self._peers: Dict[str, Tuple[str, int]] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._armed: set = set()
        self._activity = 0
        self._closed = False
        self.bytes_sent = 0
        self.messages_sent = 0
        self.dropped = 0
        self.lost = 0
        self.delivered_total = 0
        self.handler_errors = 0
        self.socket_errors = 0
        self.last_handler_error: Optional[Tuple[str, BaseException]] = None
        self.trace: List[Delivery] = []

    # ------------------------------------------------------------------
    # Clock / timers (the Scheduler protocol)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since this network was created (loop clock).  Real
        time, unlike the simulated transport's virtual clock — but the
        same monotonic-seconds contract for everything layered above."""
        return self._loop.time() - self._t0

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Schedule *callback* at network time *when* (clamped to now)."""
        timer = SocketTimer(max(when, self.now), callback, self)

        def fire() -> None:
            self._armed.discard(timer)
            self._activity += 1
            if not timer.cancelled:
                timer.callback()

        timer._handle = self._loop.call_at(timer.when + self._t0, fire)
        self._armed.add(timer)
        return timer

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise TransportError("timer delay must be >= 0")
        return self.call_at(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_node(self, address: str, port: int = 0) -> SocketNode:
        """Bind a UDP socket for *address* (ephemeral port by default)
        and return its node.  The chosen port is on ``node.port`` — ship
        it to other processes via :meth:`register_peer` over whatever
        bootstrap channel the deployment has."""
        if self._closed:
            raise TransportError("network is closed")
        if address in self._nodes:
            raise TransportError(f"address {address!r} already in use")
        node = SocketNode(self, address)
        transport, _proto = self._loop.run_until_complete(
            self._loop.create_datagram_endpoint(
                lambda: _NodeProtocol(self, node),
                local_addr=(self.host, port),
            )
        )
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(
                    _socketmod.SOL_SOCKET, _socketmod.SO_RCVBUF, RECV_BUFFER
                )
            except OSError:  # pragma: no cover - kernel limits
                pass
        node._transport = transport
        node.port = transport.get_extra_info("sockname")[1]
        self._nodes[address] = node
        return node

    def node(self, address: str) -> SocketNode:
        try:
            return self._nodes[address]
        except KeyError:
            raise TransportError(f"no node at address {address!r}") from None

    def register_peer(self, address: str, host: str, port: int) -> None:
        """Teach this process where a remote node lives — the static
        address book a multi-process deployment distributes after every
        worker has bound its socket."""
        self._peers[address] = (host, port)

    def set_link(self, a: str, b: str, link: LinkSpec) -> None:
        """Configure the fault model between *a* and *b* (both ways)."""
        self._links[(a, b)] = link
        self._links[(b, a)] = link

    def link_between(self, a: str, b: str) -> LinkSpec:
        return self._links.get((a, b), self.default_link)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _resolve(self, destination: str) -> Tuple[str, int]:
        node = self._nodes.get(destination)
        if node is not None:
            return (self.host, node.port)
        peer = self._peers.get(destination)
        if peer is None:
            raise TransportError(f"no node at address {destination!r}")
        return peer

    def send(self, source: str, destination: str, data: bytes) -> float:
        """Send *data* to *destination*; returns the network time at
        which the datagram (or its delayed injection) leaves this
        process.  Loss/jitter/latency come from the link fault model;
        the kernel and wire add whatever they add on top."""
        target = self._resolve(destination)
        link = self.link_between(source, destination)
        delay = 0.0
        if link.latency or link.bandwidth:
            delay += link.transmission_time(len(data))
        if link.jitter:
            delay += self._rng.uniform(0.0, link.jitter)
        self.bytes_sent += len(data)
        self.messages_sent += 1
        if link.loss_rate and self._rng.random() < link.loss_rate:
            self.lost += 1
            if self.record_trace:
                self.trace.append(
                    Delivery(time=self.now + delay, source=source,
                             destination=destination, size=len(data),
                             dropped=True)
                )
            if OBS.enabled:
                OBS.metrics.counter(
                    "net.transport.lost", source=source,
                    destination=destination,
                ).inc()
            return self.now + delay
        frame = _SRC_LEN.pack(len(source)) + source.encode("utf-8") + data
        if delay > 0:
            self.call_later(delay, lambda: self._transmit(source, frame, target))
        else:
            self._transmit(source, frame, target)
        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter(
                "net.transport.messages", source=source,
                destination=destination,
            ).inc()
            metrics.counter(
                "net.transport.bytes", source=source, destination=destination
            ).inc(len(data))
        return self.now + delay

    def _transmit(self, source: str, frame: bytes,
                  target: Tuple[str, int]) -> None:
        node = self._nodes.get(source)
        transport = node._transport if node is not None else None
        if transport is None:
            # A source without a local socket (or after close()): borrow
            # any bound node — UDP does not care which socket sends.
            for other in self._nodes.values():
                if other._transport is not None:
                    transport = other._transport
                    break
        if transport is None:
            raise TransportError("no bound socket to send from")
        transport.sendto(frame, target)

    def _on_datagram(self, node: SocketNode, frame: bytes) -> None:
        self._activity += 1
        if len(frame) < _SRC_LEN.size:
            self.socket_errors += 1
            return
        (src_len,) = _SRC_LEN.unpack_from(frame)
        if len(frame) < _SRC_LEN.size + src_len:
            self.socket_errors += 1
            return
        source = frame[_SRC_LEN.size:_SRC_LEN.size + src_len].decode(
            "utf-8", "replace"
        )
        data = frame[_SRC_LEN.size + src_len:]
        dropped = node.closed
        handler_error = False
        try:
            if OBS.enabled:
                with activate(_sniff_trace(data)), OBS.tracer.span(
                    "net.deliver",
                    source=source,
                    destination=node.address,
                    process=node.address,
                    size=len(data),
                    vtime=self.now,
                ):
                    node._deliver(source, data)
            else:
                node._deliver(source, data)
        except Exception as exc:  # noqa: BLE001 - defined containment
            handler_error = True
            node.handler_errors += 1
            self.handler_errors += 1
            self.last_handler_error = (node.address, exc)
            if OBS.enabled:
                OBS.metrics.counter(
                    "net.transport.handler_errors", node=node.address
                ).inc()
        self.delivered_total += 1
        if self.record_trace:
            self.trace.append(
                Delivery(time=self.now, source=source,
                         destination=node.address, size=len(data),
                         dropped=dropped, handler_error=handler_error)
            )

    # ------------------------------------------------------------------
    # Loop driving
    # ------------------------------------------------------------------

    def run(
        self,
        max_time: Optional[float] = None,
        idle: float = 0.05,
        max_events: int = 1_000_000,
    ) -> int:
        """Drive the asyncio loop until the network **quiesces**: no
        datagram arrived and no timer fired for *idle* seconds, with no
        timer still armed.  Armed timers (retransmission schedules,
        jitter-delayed sends) keep the run alive, so reliable traffic
        completes its retry schedule just like under the simulated
        transport's queue drain.  *max_time* bounds the call in real
        seconds; *max_events* bounds deliveries+firings (loop
        protection).  Returns deliveries performed during this call."""
        if self._closed:
            raise TransportError("network is closed")
        start_delivered = self.delivered_total
        start_activity = self._activity
        deadline = None if max_time is None else self._loop.time() + max_time
        step = min(0.005, idle if idle > 0 else 0.005)
        quiet = 0.0
        while True:
            if self._activity - start_activity > max_events:
                raise TransportError(
                    f"network did not quiesce within {max_events} events "
                    "(possible message loop)"
                )
            before = self._activity
            self._loop.run_until_complete(asyncio.sleep(step))
            if self._activity != before:
                quiet = 0.0
            elif not self._armed:
                quiet += step
                if quiet >= idle:
                    break
            if deadline is not None and self._loop.time() >= deadline:
                break
        return self.delivered_total - start_delivered

    def run_for(self, duration: float) -> int:
        """Drive the loop for exactly *duration* real seconds (no
        quiesce detection) — the bench's inner loop."""
        start = self.delivered_total
        self._loop.run_until_complete(asyncio.sleep(duration))
        return self.delivered_total - start

    @property
    def pending(self) -> int:
        """Armed timers (in-flight datagrams are invisible to user
        space; quiesce detection in :meth:`run` covers them)."""
        return len(self._armed)

    def drops_by_node(self) -> Dict[str, int]:
        return {
            address: node.drops
            for address, node in self._nodes.items()
            if node.drops
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear down every socket and the loop.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for timer in list(self._armed):
            timer.cancel()
        for node in self._nodes.values():
            if node._transport is not None:
                node._transport.close()
                node._transport = None
        # let the transports flush their close callbacks
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def __enter__(self) -> "SocketNetwork":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC path
        try:
            if not self._closed and not self._loop.is_closed():
                self.close()
        except Exception:
            pass
